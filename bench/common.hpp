// Shared infrastructure for the reproduction benches: one medium-scale
// scenario reused by every registered benchmark in a binary, plus the
// customary main() that first runs the google-benchmark timers and then
// prints the table/figure the binary reproduces.
#pragma once

#include <benchmark/benchmark.h>

#include <ctime>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>

#include "classify/batch_kernels.hpp"
#include "scenario/scenario.hpp"

namespace spoofscope::bench {

/// How the code under test was compiled. The system libbenchmark.so bakes
/// its own (debug) build type into the JSON context, which is useless —
/// and actively misleading — as provenance for OUR numbers: what matters
/// is whether the spoofscope translation units were optimized.
/// tools/run_benches.sh refuses to record BENCH JSON that does not say
/// "release" here.
inline const char* spoofscope_build_type() {
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  return "release";
#else
  return "debug";
#endif
}

/// Comma-separated kernels the differentials/benches can run here.
inline std::string simd_kernels_string() {
  std::string out;
  for (const auto k : classify::usable_simd_kernels()) {
    if (!out.empty()) out += ",";
    out += classify::simd_kernel_name(k);
  }
  return out;
}

/// JSON file reporter that emits a truthful context block. The stock
/// JSONReporter's "library_build_type" reports how libbenchmark.so was
/// compiled (the distro ships a debug build), not how this binary was;
/// recording it once mislabelled BENCH_perf_core.json as a debug run.
/// Only ReportContext is overridden — it must end with the opening of
/// the "benchmarks" array exactly as the base class does, because the
/// inherited ReportRuns/Finalize complete that JSON structure.
class ProvenanceJsonReporter : public ::benchmark::JSONReporter {
 public:
  bool ReportContext(const Context& context) override {
    std::ostream& out = GetOutputStream();
    char when[64] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm{}; localtime_r(&now, &tm) != nullptr) {
      std::strftime(when, sizeof when, "%Y-%m-%dT%H:%M:%S%z", &tm);
    }
    out << "{\n";
    out << "  \"context\": {\n";
    out << "    \"date\": \"" << when << "\",\n";
    out << "    \"host_name\": \"" << context.sys_info.name << "\",\n";
    out << "    \"executable\": \"" << Context::executable_name << "\",\n";
    out << "    \"num_cpus\": " << context.cpu_info.num_cpus << ",\n";
    out << "    \"mhz_per_cpu\": "
        << static_cast<long>(context.cpu_info.cycles_per_second / 1e6)
        << ",\n";
    out << "    \"cpu_scaling_enabled\": "
        << (context.cpu_info.scaling == ::benchmark::CPUInfo::ENABLED
                ? "true"
                : "false")
        << ",\n";
    out << "    \"library_build_type\": \"" << spoofscope_build_type()
        << "\",\n";
    out << "    \"spoofscope_build_type\": \"" << spoofscope_build_type()
        << "\",\n";
    out << "    \"spoofscope_simd_kernels\": \"" << simd_kernels_string()
        << "\"\n";
    out << "  },\n";
    out << "  \"benchmarks\": [\n";
    return true;
  }
};

/// True when --benchmark_out is among the args (before Initialize eats
/// them): the file reporter may only be passed to RunSpecifiedBenchmarks
/// when an output file is configured.
inline bool wants_file_report(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      return true;
    }
  }
  return false;
}

/// The bench-scale configuration: large enough for the paper's shapes to
/// be visible, small enough that the whole bench suite runs in minutes.
inline scenario::ScenarioParams bench_params() {
  scenario::ScenarioParams p;
  p.seed = 20170205;  // first day of the paper's measurement window
  p.topology.num_tier1 = 5;
  p.topology.num_transit = 30;
  p.topology.num_isp = 130;
  p.topology.num_hosting = 85;
  p.topology.num_content = 40;
  p.topology.num_other = 130;
  p.ixp.member_count = 250;
  p.num_collectors = 9;
  p.feeders_per_collector = 14;
  p.ark.num_traces = 20000;
  p.workload.regular_flows = 300'000;
  p.workload.nat_leak_flows = 2'000;
  p.workload.background_noise_flows = 2'400;
  p.workload.random_spoof_events = 30;
  p.workload.flood_flows_mean = 150;
  p.workload.flood_flows_cap = 2'000;
  p.workload.ntp_campaigns = 14;
  p.workload.ntp_flows_mean = 350;
  p.workload.ntp_flows_cap = 3'000;
  p.workload.ntp_server_pool = 1'200;
  p.workload.steam_flood_events = 4;
  p.workload.steam_flows_cap = 1'000;
  p.workload.router_stray_flows = 2'600;
  p.workload.uncommon_setup_flows_per_member = 250;
  return p;
}

/// The shared world, built once per binary.
inline const scenario::Scenario& world() {
  static const std::unique_ptr<scenario::Scenario> w =
      scenario::build_scenario(bench_params());
  return *w;
}

/// Section header for the reproduction output.
inline void print_header(const char* artifact, const char* paper_summary) {
  std::cout << "\n================================================================\n"
            << "Reproduction of " << artifact << "\n"
            << "Paper reports: " << paper_summary << "\n"
            << "Scenario: " << world().topology().as_count() << " ASes, "
            << world().ixp().member_count() << " members, "
            << world().trace().flows.size() << " sampled flows, seed "
            << world().params().seed << "\n"
            << "================================================================\n";
}

}  // namespace spoofscope::bench

/// Standard bench main: timers first, reproduction output second. When
/// --benchmark_out is given, the JSON goes through ProvenanceJsonReporter
/// so the recorded context describes this binary's build, not the
/// system libbenchmark's.
#define SPOOFSCOPE_BENCH_MAIN(print_fn)                                 \
  int main(int argc, char** argv) {                                     \
    const bool to_file = ::spoofscope::bench::wants_file_report(argc,   \
                                                                argv);  \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))           \
      return 1;                                                         \
    if (to_file) {                                                      \
      ::spoofscope::bench::ProvenanceJsonReporter file_reporter;        \
      ::benchmark::RunSpecifiedBenchmarks(nullptr, &file_reporter);     \
    } else {                                                            \
      ::benchmark::RunSpecifiedBenchmarks();                            \
    }                                                                   \
    print_fn();                                                         \
    return 0;                                                           \
  }
