// The Sec 2.2 operator survey aggregates (84 networks, early 2017) as a
// data table, plus a formatter reproducing the section's numbers.
#pragma once

#include <string>

namespace spoofscope::data {

/// Aggregated answers from the paper's operator survey.
struct SurveyStats {
  int respondents = 84;
  int mailing_lists = 12;

  // --- spoofing impact ---
  double suffered_spoofing_attacks = 0.70;  ///< >70% hit by preventable attacks
  double complained_to_peers = 0.50;        ///< actively complain to non-filtering peers
  double no_source_validation = 0.24;       ///< do not check source validity at all

  // --- ingress filtering ---
  double ingress_wellknown_ranges = 0.70;  ///< filter RFC1918 & reserved space
  double ingress_customer_specific = 0.20; ///< per-customer ingress filters
  double ingress_none = 0.07;              ///< no ingress filtering at all

  // --- egress filtering ---
  double egress_customer_specific = 0.50;  ///< customer-AS-specific egress filters
  double egress_none = 0.24;               ///< no egress filters
  double egress_nonroutable_only = 0.26;   ///< only non-routable space
  double own_traffic_filtered = 0.65;      ///< own traffic filtered before egress
};

/// The published survey results.
SurveyStats survey_results();

/// Renders the survey as a small aligned text table (for bench output).
std::string format_survey(const SurveyStats& s);

}  // namespace spoofscope::data
