// Compiled-plane snapshot cache: persists a FlatClassifier's DIR-24-8
// tables (PayloadKind::kPlane on the snapshot container) so a cold
// start mmaps a digest-validated plane instead of paying the full
// compile.
//
// Keying: a plane is a pure function of its compile inputs — the
// routing table's prefixes, each valid space's per-member interval
// sets, and the bogon list baked into the binary — so cache entries
// are named by classifier_digest(source), an FNV-1a-64 over exactly
// those inputs, plus the payload format version. A routing-table or
// valid-space change therefore misses (and recompiles) instead of
// serving a stale plane.
//
// Trust: the filename digest gates staleness, the container checksums
// gate bit damage, and after wiring the loaded plane the cache
// recomputes FlatClassifier::plane_digest() over the mapped bytes and
// compares it to the digest stored at compile time — a served plane is
// never silently different from a fresh compile.
//
// The loaded plane's hot-path views point into the mapping (kept alive
// by the FlatClassifier itself), so the 64 MiB base table is paged in
// on demand rather than copied. Snapshots store host-native (little-
// endian) lanes; on a big-endian host the cache degrades to
// compile-always rather than byte-swapping 64 MiB.
#pragma once

#include <cstdint>
#include <string>

#include "classify/flat_classifier.hpp"
#include "util/error_policy.hpp"

namespace spoofscope::state {

/// FNV-1a-64 identity of a Classifier's compile inputs (prefixes in
/// PrefixId order, per-space methods and sorted per-member interval
/// sets). Equal digests imply bit-identical compiled planes.
std::uint64_t classifier_digest(const classify::Classifier& source);

class PlaneCache {
 public:
  /// `dir` is created on first use (mkdir -p semantics).
  explicit PlaneCache(std::string dir) : dir_(std::move(dir)) {}

  struct LoadResult {
    classify::FlatClassifier plane;
    bool hit = false;     ///< served from the cache
    bool stored = false;  ///< compiled fresh and written back
  };

  /// The cache's one entry point. Hit: the entry for `source`'s digest
  /// mmaps, validates and loads. Miss (no entry): compile and write
  /// the entry back. Damaged or stale entry: strict throws
  /// (SnapshotError), skip accounts the ErrorKind in `stats` (when
  /// given), recompiles and overwrites the entry. `pool` (optional)
  /// parallelizes the compile; the result is engine-identical either
  /// way.
  LoadResult load_or_compile(const classify::Classifier& source,
                             util::ThreadPool* pool,
                             util::ErrorPolicy policy = util::ErrorPolicy::kStrict,
                             util::IngestStats* stats = nullptr);

  /// Where the entry for `source_digest` lives (exists or not).
  std::string entry_path(std::uint64_t source_digest) const;

  const std::string& dir() const { return dir_; }

 private:
  classify::FlatClassifier load_entry(const std::string& path,
                                      const classify::Classifier& source,
                                      std::uint64_t source_digest) const;
  void store(const classify::FlatClassifier& plane,
             std::uint64_t source_digest) const;

  std::string dir_;
};

}  // namespace spoofscope::state
