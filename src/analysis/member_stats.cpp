#include "analysis/member_stats.hpp"

#include <map>

namespace spoofscope::analysis {

std::vector<MemberClassCounts> per_member_counts(
    std::span<const net::FlowRecord> flows, std::span<const Label> labels,
    std::size_t space_idx, const ixp::Ixp& ixp) {
  std::map<Asn, MemberClassCounts> by_member;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    auto& mc = by_member[f.member_in];
    if (mc.member == net::kNoAsn) {
      mc.member = f.member_in;
      if (const auto* m = ixp.find(f.member_in)) mc.type = m->type;
    }
    const auto c = static_cast<int>(classify::Classifier::unpack(labels[i], space_idx));
    mc.packets[c] += f.packets;
    mc.bytes[c] += static_cast<double>(f.bytes);
    mc.flows[c] += 1;
  }
  std::vector<MemberClassCounts> out;
  out.reserve(by_member.size());
  for (const auto& [asn, mc] : by_member) out.push_back(mc);
  return out;
}

std::vector<util::DistPoint> class_share_ccdf(
    std::span<const MemberClassCounts> counts, TrafficClass cls) {
  std::vector<double> shares;
  shares.reserve(counts.size());
  for (const auto& mc : counts) shares.push_back(mc.packet_share(cls));
  return util::empirical_ccdf(shares);
}

}  // namespace spoofscope::analysis
