# Empty dependencies file for traffic_context_test.
# This may be replaced when dependencies are built.
