// Fig 7 / Sec 5.2: router interface addresses among Invalid packets —
// many members sit on the diagonal (their Invalid is stray router
// traffic) and are excluded from the spoofing analyses.
#include "bench/common.hpp"

#include "classify/pipeline.hpp"
#include "classify/router_tagger.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_RouterIpStats(benchmark::State& state) {
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  for (auto _ : state) {
    auto stats =
        classify::router_ip_stats(w.trace().flows, w.labels(), idx, w.ark());
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_RouterIpStats)->Unit(benchmark::kMillisecond);

void BM_ArkCampaign(benchmark::State& state) {
  for (auto _ : state) {
    auto ark = data::run_ark_campaign(world().topology(),
                                      world().params().ark, 99);
    benchmark::DoNotOptimize(ark);
  }
}
BENCHMARK(BM_ArkCampaign)->Unit(benchmark::kMillisecond);

void print_reproduction() {
  bench::print_header(
      "Fig 7 + Sec 5.2 (router IPs among Invalid packets)",
      "many members on the diagonal; exclusion drops Invalid members from "
      "57.68% to 39.59%; router traffic: 83% ICMP, 14.4% UDP (76.3% to "
      "NTP), 2.3% TCP");
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  const auto stats =
      classify::router_ip_stats(w.trace().flows, w.labels(), idx, w.ark());

  std::size_t on_diagonal = 0;
  for (const auto& s : stats) on_diagonal += s.router_fraction() >= 0.5;
  std::cout << "members with Invalid traffic: " << stats.size() << "; >=50% "
            << "router-sourced: " << on_diagonal << "\n";

  const auto excluded = classify::members_to_exclude(stats);
  const auto before = classify::aggregate_classes(w.classifier(),
                                                  w.trace().flows, w.labels());
  const auto after = classify::aggregate_classes(
      w.classifier(), w.trace().flows, w.labels(), excluded);
  const auto mem = [&](const classify::Aggregate& a) {
    return static_cast<double>(
               a.totals[idx][static_cast<int>(classify::TrafficClass::kInvalid)]
                   .members) /
           w.ixp().member_count();
  };
  std::cout << "Invalid-contributing members before exclusion: "
            << util::percent(mem(before)) << " (paper 57.68%), after: "
            << util::percent(mem(after)) << " (paper 39.59%)\n";

  const auto b = classify::router_protocol_breakdown(w.trace().flows, w.ark());
  std::cout << "router-IP traffic mix: ICMP " << util::percent(b.icmp)
            << " (paper 83%), UDP " << util::percent(b.udp)
            << " (paper 14.4%; to NTP " << util::percent(b.udp_to_ntp)
            << ", paper 76.3%), TCP " << util::percent(b.tcp)
            << " (paper 2.3%)\n";
  std::cout << "Ark dataset: " << w.ark().router_ip_count()
            << " router interface addresses from " << w.ark().traces_run()
            << " traceroutes\n";

  // The scatter itself (top rows).
  std::cout << "\nper-member (Invalid pkts, router-sourced pkts), top 8:\n";
  auto sorted = stats;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return a.invalid_packets > b.invalid_packets;
            });
  for (std::size_t i = 0; i < std::min<std::size_t>(8, sorted.size()); ++i) {
    std::cout << "  AS" << sorted[i].member << ": "
              << sorted[i].invalid_packets << " invalid, "
              << sorted[i].router_invalid_packets << " router ("
              << util::percent(sorted[i].router_fraction()) << ")\n";
  }
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
