#include "traffic/stray.hpp"

#include <algorithm>
#include <cmath>

#include "data/ark.hpp"
#include "net/bogon.hpp"
#include "net/protocols.hpp"

namespace spoofscope::traffic {

namespace {

using net::Proto;
namespace ports = net::ports;

std::uint16_t ephemeral(util::Rng& rng) {
  return static_cast<std::uint16_t>(rng.uniform_u32(1024, 65535));
}

/// A NAT-leak source: RFC1918-heavy, as seen behind broken CPE.
net::Ipv4Addr nat_leak_src(util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.6) {
    return net::Ipv4Addr(net::Ipv4Addr::from_octets(10, 0, 0, 0).value() +
                         rng.uniform_u32(0, (1u << 24) - 1));
  }
  if (u < 0.9) {
    return net::Ipv4Addr(net::Ipv4Addr::from_octets(192, 168, 0, 0).value() +
                         rng.uniform_u32(0, (1u << 16) - 1));
  }
  return net::Ipv4Addr(net::Ipv4Addr::from_octets(172, 16, 0, 0).value() +
                       rng.uniform_u32(0, (1u << 20) - 1));
}

}  // namespace

void generate_nat_leaks(const TrafficContext& ctx, util::Rng& rng,
                        std::vector<net::FlowRecord>& out,
                        std::vector<Component>& components,
                        WorkloadSummary& summary) {
  // Distribute the budget over members proportionally to their NAT-leak
  // density and traffic weight; every eligible member leaks a little.
  std::vector<const ixp::Member*> eligible;
  std::vector<double> weights;
  for (const auto& m : ctx.ixp().members()) {
    const auto* info = ctx.topo().find(m.asn);
    if (info->filter.blocks_bogon) continue;
    if (info->nat_leak_density <= 0.0) continue;
    eligible.push_back(&m);
    weights.push_back(info->nat_leak_density * std::sqrt(m.traffic_weight));
  }
  if (eligible.empty()) return;
  double wsum = 0.0;
  for (const double w : weights) wsum += w;

  for (std::size_t i = 0; i < eligible.size(); ++i) {
    const auto& m = *eligible[i];
    const auto flows = static_cast<std::size_t>(
        1 + ctx.params().nat_leak_flows * weights[i] / wsum);
    for (std::size_t k = 0; k < flows; ++k) {
      const net::Ipv4Addr src = nat_leak_src(rng);
      const auto& m_out = ctx.uniform_member(rng);
      const net::Ipv4Addr dst = ctx.dst_behind(m_out.asn, rng);
      // Unsuccessful TCP connection attempts from user devices.
      const std::uint16_t dport = rng.chance(0.7)
                                      ? (rng.chance(0.5) ? ports::kHttp : ports::kHttps)
                                      : ephemeral(rng);
      out.push_back(make_flow(ctx.diurnal_ts(rng), src, dst, Proto::kTcp,
                              ephemeral(rng), dport, 1,
                              40 + rng.uniform_u32(0, 20), m.asn, m_out.asn));
      components.push_back(Component::kNatLeak);
      ++summary.nat_leak;
    }
  }
}

void generate_background_noise(const TrafficContext& ctx, util::Rng& rng,
                               std::vector<net::FlowRecord>& out,
                               std::vector<Component>& components,
                               WorkloadSummary& summary) {
  // Only some members host noise sources at all; the rest stay quiet.
  std::vector<const ixp::Member*> active;
  for (const auto& m : ctx.ixp().members()) {
    if (rng.chance(ctx.params().background_noise_member_prob)) active.push_back(&m);
  }
  if (active.empty()) return;
  for (std::size_t i = 0; i < ctx.params().background_noise_flows; ++i) {
    const auto& m = *active[rng.index(active.size())];
    const auto* info = ctx.topo().find(m.asn);
    const net::Ipv4Addr src(rng.next_u32());
    if (!ctx.egress_allows(*info, src)) continue;
    const auto& m_out = ctx.uniform_member(rng);
    const net::Ipv4Addr dst = ctx.dst_behind(m_out.asn, rng);
    const bool tcp = rng.chance(0.75);
    out.push_back(make_flow(ctx.uniform_ts(rng), src, dst,
                            tcp ? Proto::kTcp : Proto::kUdp, ephemeral(rng),
                            rng.chance(0.4)
                                ? (rng.chance(0.5) ? ports::kHttp : ports::kHttps)
                                : ephemeral(rng),
                            1, 40 + rng.uniform_u32(0, 30), m.asn, m_out.asn));
    components.push_back(Component::kBackgroundNoise);
    ++summary.background_noise;
  }
}

void generate_router_strays(const TrafficContext& ctx, util::Rng& rng,
                            std::vector<net::FlowRecord>& out,
                            std::vector<Component>& components,
                            WorkloadSummary& summary) {
  // Links adjacent to a member produce IXP-visible router traffic.
  std::vector<std::pair<const topo::AsLink*, Asn>> member_links;
  for (const auto& l : ctx.topo().links()) {
    if (l.type != topo::RelType::kCustomerToProvider || l.infra.length() == 0) {
      continue;
    }
    // Only some routers are misconfigured enough to emit strays.
    if (ctx.ixp().is_member(l.from) &&
        rng.chance(ctx.params().router_stray_link_prob)) {
      member_links.emplace_back(&l, l.from);
    }
    if (ctx.ixp().is_member(l.to) &&
        rng.chance(ctx.params().router_stray_link_prob)) {
      member_links.emplace_back(&l, l.to);
    }
  }
  if (member_links.empty()) return;

  const std::size_t budget = ctx.params().router_stray_flows;
  for (std::size_t i = 0; i < budget; ++i) {
    const auto& [link, member] = member_links[rng.index(member_links.size())];
    const net::Ipv4Addr router =
        data::link_interface_address(link->infra, rng.chance(0.5) ? 0 : 1);
    const auto& m_out = ctx.uniform_member(rng);
    const net::Ipv4Addr dst = ctx.dst_behind(m_out.asn, rng);

    const double u = rng.uniform();
    if (u < 0.83) {
      // TTL exceeded / ping replies.
      out.push_back(make_flow(ctx.uniform_ts(rng), router, dst, Proto::kIcmp, 0,
                              0, 1, 56 + rng.uniform_u32(0, 72), member,
                              m_out.asn));
      components.push_back(Component::kRouterStray);
      ++summary.router_stray;
    } else if (u < 0.853) {
      // A little TCP (2.3% in the paper).
      out.push_back(make_flow(ctx.uniform_ts(rng), router, dst, Proto::kTcp,
                              ephemeral(rng), ephemeral(rng), 1,
                              40 + rng.uniform_u32(0, 20), member, m_out.asn));
      components.push_back(Component::kRouterStray);
      ++summary.router_stray;
    } else {
      // UDP from router sources; 76.3% of it towards NTP servers —
      // reflection triggers spoofing the router's address as victim.
      const bool to_ntp = rng.chance(0.763);
      if (to_ntp && !ctx.ntp_servers().empty()) {
        const auto& [amp, amp_asn] =
            ctx.ntp_servers()[rng.index(ctx.ntp_servers().size())];
        out.push_back(make_flow(ctx.uniform_ts(rng), router, amp, Proto::kUdp,
                                ephemeral(rng), ports::kNtp, 1,
                                40 + rng.uniform_u32(0, 40), member,
                                ctx.exit_member_for(amp, rng)));
        components.push_back(Component::kReflectionOnRouter);
        ++summary.reflection_on_router;
      } else {
        out.push_back(make_flow(ctx.uniform_ts(rng), router, dst, Proto::kUdp,
                                ephemeral(rng), ephemeral(rng), 1,
                                40 + rng.uniform_u32(0, 40), member, m_out.asn));
        components.push_back(Component::kRouterStray);
        ++summary.router_stray;
      }
    }
  }
}

void generate_uncommon_setups(const TrafficContext& ctx,
                              const data::WhoisRegistry& whois, util::Rng& rng,
                              std::vector<net::FlowRecord>& out,
                              std::vector<Component>& components,
                              WorkloadSummary& summary) {
  // Provider-assigned ranges used via other paths: regular-looking
  // traffic whose source sits in another AS's announced space.
  for (const auto& pa : whois.provider_assigned()) {
    if (!ctx.ixp().is_member(pa.customer)) continue;
    for (std::size_t i = 0; i < ctx.params().uncommon_setup_flows_per_member; ++i) {
      const net::Ipv4Addr src = TrafficContext::addr_in(pa.range, rng);
      const auto& m_out = ctx.uniform_member(rng);
      const net::Ipv4Addr dst = ctx.dst_behind(m_out.asn, rng);
      const std::uint16_t port = rng.chance(0.5) ? ports::kHttp : ports::kHttps;
      const auto pkts =
          static_cast<std::uint32_t>(std::min(2000.0, rng.pareto(1.0, 1.3)));
      out.push_back(make_flow(ctx.diurnal_ts(rng), src, dst, Proto::kTcp,
                              ephemeral(rng), port, pkts,
                              std::uint64_t(pkts) * (60 + rng.uniform_u32(0, 700)),
                              pa.customer, m_out.asn));
      components.push_back(Component::kUncommonSetup);
      ++summary.uncommon_setup;
    }
  }

  // Traffic across BGP-invisible links: one side sources the other's
  // space through the IXP (shared-infrastructure organizations, tunnels).
  for (const auto& l : ctx.topo().links()) {
    if (l.visible_in_bgp) continue;
    for (const auto& [member, partner] :
         {std::pair{l.from, l.to}, std::pair{l.to, l.from}}) {
      if (!ctx.ixp().is_member(member)) continue;
      const std::size_t flows = ctx.params().uncommon_setup_flows_per_member / 2;
      for (std::size_t i = 0; i < flows; ++i) {
        const net::Ipv4Addr src = ctx.announced_addr(partner, rng);
        const auto& m_out = ctx.uniform_member(rng);
        const net::Ipv4Addr dst = ctx.dst_behind(m_out.asn, rng);
        const auto pkts =
            static_cast<std::uint32_t>(std::min(2000.0, rng.pareto(1.0, 1.3)));
        out.push_back(make_flow(
            ctx.diurnal_ts(rng), src, dst, Proto::kTcp, ephemeral(rng),
            rng.chance(0.5) ? ports::kHttp : ports::kHttps, pkts,
            std::uint64_t(pkts) * (60 + rng.uniform_u32(0, 700)), member,
            m_out.asn));
        components.push_back(Component::kUncommonSetup);
        ++summary.uncommon_setup;
      }
    }
  }
}

}  // namespace spoofscope::traffic
