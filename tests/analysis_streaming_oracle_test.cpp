// Differential harness for the streaming analysis plane (DESIGN.md §12):
// with unbounded limits, every incremental report builder must reproduce
// the retained in-memory oracle functions bit-identically — across seeds,
// classification engines, thread counts, batch sizes and arbitrary
// batch-boundary cuts — and the sketched packet-size quantiles must stay
// within their pinned rank-error bound. Also pins the chunk-order merge
// reduction to the sequential pass, skip-mode streaming over corrupted
// traces to the clean-survivor-restricted oracle, determinism under
// finite caps, and the BoundedTable LRU eviction discipline itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "analysis/filtering_strategy.hpp"
#include "analysis/streaming.hpp"
#include "analysis/table1.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/pipeline.hpp"
#include "corruption.hpp"
#include "net/flow_batch.hpp"
#include "net/mapped_trace.hpp"
#include "net/trace.hpp"
#include "net/trace_format.hpp"
#include "scenario/scenario.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::analysis {
namespace {

using classify::Label;

/// Scenario builds dominate the suite's runtime; the differential seeds
/// reuse one world per seed (tests only read from it).
scenario::Scenario& world(std::uint64_t seed) {
  static std::map<std::uint64_t, std::unique_ptr<scenario::Scenario>> cache;
  auto& slot = cache[seed];
  if (!slot) {
    auto params = scenario::ScenarioParams::small();
    params.seed = seed;
    slot = scenario::build_scenario(params);
  }
  return *slot;
}

/// Feeds `flows` through the report in batches of `batch_size`, so batch
/// boundaries land at every multiple of it — the boundary-cut sweep runs
/// this with sizes from 1 to the whole trace.
void feed(StreamingReport& report, std::span<const net::FlowRecord> flows,
          std::span<const Label> labels, std::size_t batch_size) {
  net::FlowBatch batch;
  std::size_t i = 0;
  while (i < flows.size()) {
    const std::size_t n = std::min(batch_size, flows.size() - i);
    batch.clear();
    for (std::size_t k = 0; k < n; ++k) batch.push_back(flows[i + k]);
    report.add(batch, labels.subspan(i, n));
    i += n;
  }
}

ReportOptions base_options(scenario::Scenario& w, std::size_t space_idx,
                           std::uint32_t window_seconds) {
  ReportOptions opts;
  opts.space_idx = space_idx;
  opts.window_seconds = window_seconds;
  opts.ixp = &w.ixp();
  return opts;
}

// ----------------------------------------------------- oracle computation

/// The retained in-memory reference: every analysis computed by the
/// original whole-trace functions.
struct OracleReport {
  classify::Aggregate aggregate;
  std::vector<MemberClassCounts> member_counts;
  VennCounts venn;
  std::array<std::size_t, kNumStrategies> strategy_counts{};
  PortMix ports;
  ClassTimeSeries series;
  std::array<double, kNumClasses> small_fraction{};
  SrcRatioHistogram src_ratio;
  NtpAnalysis ntp;
  AmplificationTimeseries amplification;
  std::vector<Incident> incidents;
};

OracleReport oracle_report(std::span<const net::FlowRecord> flows,
                           std::span<const Label> labels,
                           std::size_t space_count, std::size_t space_idx,
                           const ixp::Ixp& ixp, std::uint32_t window_seconds) {
  OracleReport o;
  o.aggregate = classify::aggregate_classes(space_count, flows, labels);
  o.member_counts = per_member_counts(flows, labels, space_idx, ixp);
  o.venn = venn_membership(o.member_counts);
  for (const auto& mc : o.member_counts) {
    ++o.strategy_counts[static_cast<int>(deduce_strategy(mc))];
  }
  o.ports = port_mix(flows, labels, space_idx);
  o.series = class_time_series(flows, labels, space_idx, window_seconds);
  for (int c = 0; c < kNumClasses; ++c) {
    o.small_fraction[c] = small_packet_fraction(
        flows, labels, space_idx, static_cast<TrafficClass>(c));
  }
  o.src_ratio = src_per_dst_ratio(flows, labels, space_idx);
  o.ntp = analyze_ntp(flows, labels, space_idx);
  o.amplification =
      amplification_effect(flows, labels, space_idx, window_seconds);
  o.incidents = extract_incidents(flows, labels, space_idx);
  return o;
}

/// Ground-truth weighted packet-size samples per class — the exact input
/// packet_size_cdfs() materializes, against which the sketch is judged.
struct RankOracle {
  std::vector<double> values;       ///< sorted distinct sample values
  std::vector<std::uint64_t> cum;   ///< cumulative weight up to values[i]

  void build(std::vector<std::pair<double, std::uint64_t>> samples) {
    std::sort(samples.begin(), samples.end());
    for (const auto& [v, w] : samples) {
      if (!values.empty() && values.back() == v) {
        cum.back() += w;
      } else {
        values.push_back(v);
        cum.push_back((cum.empty() ? 0 : cum.back()) + w);
      }
    }
  }
  std::uint64_t rank(double x) const {
    const auto it = std::upper_bound(values.begin(), values.end(), x);
    return it == values.begin() ? 0
                                : cum[static_cast<std::size_t>(
                                      it - values.begin() - 1)];
  }
  std::uint64_t total() const { return cum.empty() ? 0 : cum.back(); }
};

std::array<RankOracle, kNumClasses> size_rank_oracles(
    std::span<const net::FlowRecord> flows, std::span<const Label> labels,
    std::size_t space_idx) {
  std::array<std::vector<std::pair<double, std::uint64_t>>, kNumClasses> raw;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].packets == 0) continue;  // same skip as packet_size_cdfs
    const auto c =
        static_cast<int>(classify::Classifier::unpack(labels[i], space_idx));
    const double mean =
        static_cast<double>(flows[i].bytes) / flows[i].packets;
    raw[c].emplace_back(mean, std::min<std::uint64_t>(flows[i].packets, 16));
  }
  std::array<RankOracle, kNumClasses> out;
  for (int c = 0; c < kNumClasses; ++c) out[c].build(std::move(raw[c]));
  return out;
}

// ------------------------------------------------------------ comparators

void expect_same_aggregate(const classify::Aggregate& a,
                           const classify::Aggregate& b, const char* what) {
  EXPECT_EQ(a.total_flows, b.total_flows) << what;
  EXPECT_EQ(a.total_packets, b.total_packets) << what;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << what;
  ASSERT_EQ(a.totals.size(), b.totals.size()) << what;
  for (std::size_t s = 0; s < a.totals.size(); ++s) {
    for (int c = 0; c < kNumClasses; ++c) {
      EXPECT_EQ(a.totals[s][c].flows, b.totals[s][c].flows)
          << what << " space=" << s << " class=" << c;
      EXPECT_EQ(a.totals[s][c].packets, b.totals[s][c].packets)
          << what << " space=" << s << " class=" << c;
      EXPECT_EQ(a.totals[s][c].bytes, b.totals[s][c].bytes)
          << what << " space=" << s << " class=" << c;
      EXPECT_EQ(a.totals[s][c].members, b.totals[s][c].members)
          << what << " space=" << s << " class=" << c;
    }
  }
}

void expect_same_member_counts(std::span<const MemberClassCounts> a,
                               std::span<const MemberClassCounts> b,
                               const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].member, b[i].member) << what << " i=" << i;
    EXPECT_EQ(a[i].type, b[i].type) << what << " i=" << i;
    for (int c = 0; c < kNumClasses; ++c) {
      EXPECT_EQ(a[i].packets[c], b[i].packets[c])
          << what << " member=" << a[i].member << " class=" << c;
      EXPECT_EQ(a[i].bytes[c], b[i].bytes[c])
          << what << " member=" << a[i].member << " class=" << c;
      EXPECT_EQ(a[i].flows[c], b[i].flows[c])
          << what << " member=" << a[i].member << " class=" << c;
    }
  }
}

void expect_same_venn(const VennCounts& a, const VennCounts& b,
                      const char* what) {
  EXPECT_EQ(a.member_count, b.member_count) << what;
  EXPECT_EQ(a.clean, b.clean) << what;
  EXPECT_EQ(a.only_bogon, b.only_bogon) << what;
  EXPECT_EQ(a.only_unrouted, b.only_unrouted) << what;
  EXPECT_EQ(a.only_invalid, b.only_invalid) << what;
  EXPECT_EQ(a.bogon_unrouted, b.bogon_unrouted) << what;
  EXPECT_EQ(a.bogon_invalid, b.bogon_invalid) << what;
  EXPECT_EQ(a.unrouted_invalid, b.unrouted_invalid) << what;
  EXPECT_EQ(a.all_three, b.all_three) << what;
  EXPECT_EQ(a.unrouted_also_other, b.unrouted_also_other) << what;
}

void expect_same_port_mix(const PortMix& a, const PortMix& b,
                          const char* what) {
  for (int c = 0; c < kNumClasses; ++c) {
    for (int t = 0; t < 2; ++t) {
      for (int d = 0; d < 2; ++d) {
        const auto& xa = a.shares[c][t][d];
        const auto& xb = b.shares[c][t][d];
        ASSERT_EQ(xa.size(), xb.size())
            << what << " c=" << c << " t=" << t << " d=" << d;
        for (std::size_t i = 0; i < xa.size(); ++i) {
          EXPECT_EQ(xa[i].port, xb[i].port)
              << what << " c=" << c << " t=" << t << " d=" << d << " i=" << i;
          EXPECT_EQ(xa[i].fraction, xb[i].fraction)
              << what << " c=" << c << " t=" << t << " d=" << d << " i=" << i;
        }
      }
    }
  }
}

void expect_same_series(const ClassTimeSeries& a, const ClassTimeSeries& b,
                        const char* what) {
  EXPECT_EQ(a.bin_seconds, b.bin_seconds) << what;
  for (int c = 0; c < kNumClasses; ++c) {
    EXPECT_EQ(a.series[c], b.series[c]) << what << " class=" << c;
  }
}

void expect_same_ratio(const SrcRatioHistogram& a, const SrcRatioHistogram& b,
                       const char* what) {
  EXPECT_EQ(a.bins, b.bins) << what;
  for (int c = 0; c < kNumClasses; ++c) {
    EXPECT_EQ(a.destinations[c], b.destinations[c]) << what << " class=" << c;
    EXPECT_EQ(a.fractions[c], b.fractions[c]) << what << " class=" << c;
  }
}

void expect_same_ntp(const NtpAnalysis& a, const NtpAnalysis& b,
                     const char* what) {
  EXPECT_EQ(a.trigger_packets, b.trigger_packets) << what;
  EXPECT_EQ(a.distinct_victims, b.distinct_victims) << what;
  EXPECT_EQ(a.contributing_members, b.contributing_members) << what;
  EXPECT_EQ(a.amplifiers_contacted, b.amplifiers_contacted) << what;
  EXPECT_EQ(a.top_member_share, b.top_member_share) << what;
  EXPECT_EQ(a.top5_member_share, b.top5_member_share) << what;
  EXPECT_EQ(a.invalid_udp_ntp_share, b.invalid_udp_ntp_share) << what;
  ASSERT_EQ(a.top_victims.size(), b.top_victims.size()) << what;
  for (std::size_t i = 0; i < a.top_victims.size(); ++i) {
    const auto& va = a.top_victims[i];
    const auto& vb = b.top_victims[i];
    EXPECT_EQ(va.victim, vb.victim) << what << " victim=" << i;
    EXPECT_EQ(va.trigger_packets, vb.trigger_packets) << what << " victim=" << i;
    EXPECT_EQ(va.amplifiers, vb.amplifiers) << what << " victim=" << i;
    EXPECT_EQ(va.packets_per_amplifier, vb.packets_per_amplifier)
        << what << " victim=" << i;
    EXPECT_EQ(va.concentration, vb.concentration) << what << " victim=" << i;
  }
}

void expect_same_amplification(const AmplificationTimeseries& a,
                               const AmplificationTimeseries& b,
                               const char* what) {
  EXPECT_EQ(a.bin_seconds, b.bin_seconds) << what;
  EXPECT_EQ(a.packets_to_amplifier, b.packets_to_amplifier) << what;
  EXPECT_EQ(a.packets_from_amplifier, b.packets_from_amplifier) << what;
  EXPECT_EQ(a.bytes_to_amplifier, b.bytes_to_amplifier) << what;
  EXPECT_EQ(a.bytes_from_amplifier, b.bytes_from_amplifier) << what;
}

void expect_same_incidents(std::span<const Incident> a,
                           std::span<const Incident> b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << what << " i=" << i;
    EXPECT_EQ(a[i].victim, b[i].victim) << what << " i=" << i;
    EXPECT_EQ(a[i].start_ts, b[i].start_ts) << what << " i=" << i;
    EXPECT_EQ(a[i].end_ts, b[i].end_ts) << what << " i=" << i;
    EXPECT_EQ(a[i].packets, b[i].packets) << what << " i=" << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << what << " i=" << i;
    EXPECT_EQ(a[i].distinct_sources, b[i].distinct_sources) << what << " i=" << i;
    EXPECT_EQ(a[i].distinct_destinations, b[i].distinct_destinations)
        << what << " i=" << i;
    EXPECT_EQ(a[i].members, b[i].members) << what << " i=" << i;
  }
}

/// Streaming result vs the retained oracle — everything but the sketches
/// (handled separately, they have no oracle counterpart to be equal to).
void expect_matches_oracle(const ReportResult& r, const OracleReport& o,
                           const char* what) {
  expect_same_aggregate(r.aggregate, o.aggregate, what);
  expect_same_member_counts(r.member_counts, o.member_counts, what);
  expect_same_venn(r.venn, o.venn, what);
  EXPECT_EQ(r.strategy_counts, o.strategy_counts) << what;
  expect_same_port_mix(r.ports, o.ports, what);
  expect_same_series(r.traffic.series, o.series, what);
  for (int c = 0; c < kNumClasses; ++c) {
    EXPECT_EQ(r.traffic.small_packet_fraction[c], o.small_fraction[c])
        << what << " class=" << c;
  }
  expect_same_ratio(r.src_ratio, o.src_ratio, what);
  expect_same_ntp(r.ntp, o.ntp, what);
  expect_same_amplification(r.amplification, o.amplification, what);
  expect_same_incidents(r.incidents, o.incidents, what);
}

constexpr double kSketchProbes[] = {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0};

/// Streaming result vs another streaming result. `exact_sketches` demands
/// bit-identical sketch quantiles (true whenever both sides saw the same
/// per-record insertion sequence, regardless of batch boundaries).
void expect_same_report(const ReportResult& a, const ReportResult& b,
                        bool exact_sketches, const char* what) {
  EXPECT_EQ(a.flows, b.flows) << what;
  EXPECT_EQ(a.evictions, b.evictions) << what;
  expect_same_aggregate(a.aggregate, b.aggregate, what);
  expect_same_member_counts(a.member_counts, b.member_counts, what);
  expect_same_venn(a.venn, b.venn, what);
  EXPECT_EQ(a.strategy_counts, b.strategy_counts) << what;
  expect_same_port_mix(a.ports, b.ports, what);
  expect_same_series(a.traffic.series, b.traffic.series, what);
  for (int c = 0; c < kNumClasses; ++c) {
    EXPECT_EQ(a.traffic.small_packet_fraction[c],
              b.traffic.small_packet_fraction[c])
        << what << " class=" << c;
    EXPECT_EQ(a.traffic.size_sketch[c].count(),
              b.traffic.size_sketch[c].count())
        << what << " class=" << c;
    if (exact_sketches) {
      for (const double q : kSketchProbes) {
        EXPECT_EQ(a.traffic.size_sketch[c].quantile(q),
                  b.traffic.size_sketch[c].quantile(q))
            << what << " class=" << c << " q=" << q;
      }
    }
  }
  expect_same_ratio(a.src_ratio, b.src_ratio, what);
  expect_same_ntp(a.ntp, b.ntp, what);
  expect_same_amplification(a.amplification, b.amplification, what);
  expect_same_incidents(a.incidents, b.incidents, what);
}

/// Every rank estimate of the sketch must be within its self-reported
/// error bound of the ground truth, and the bound itself must be a small
/// fraction of the stream.
void expect_sketch_within_bound(const util::QuantileSketch& sketch,
                                const RankOracle& truth, const char* what) {
  ASSERT_EQ(sketch.count(), truth.total()) << what;
  if (truth.total() == 0) return;
  // Probe every distinct sample value (strided down for very long lists).
  const std::size_t stride = std::max<std::size_t>(1, truth.values.size() / 2000);
  for (std::size_t i = 0; i < truth.values.size(); i += stride) {
    const double x = truth.values[i];
    const std::uint64_t est = sketch.rank(x);
    const std::uint64_t exact = truth.rank(x);
    const std::uint64_t diff = est > exact ? est - exact : exact - est;
    EXPECT_LE(diff, sketch.rank_error_bound()) << what << " value=" << x;
  }
  if (truth.total() >= 4096) {
    EXPECT_LT(static_cast<double>(sketch.rank_error_bound()) /
                  static_cast<double>(truth.total()),
              0.10)
        << what;
  }
}

// ------------------------------------------------------------------ tests

class StreamingOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

// Tentpole claim: for every inference space, the streaming report equals
// the retained oracle bit-for-bit, no matter where batch boundaries fall
// — including degenerate one-record batches and a single whole-trace
// batch. The sketched quantiles are additionally batch-cut independent
// (identical insertion sequence => identical sketch) and within their
// rank-error bound of the ground truth.
TEST_P(StreamingOracleTest, MatchesOracleAcrossBatchCutsAndSpaces) {
  auto& w = world(GetParam());
  const auto& flows = w.trace().flows;
  const auto& labels = w.labels();
  const std::size_t space_count = w.classifier().space_count();
  const std::uint32_t window = w.params().workload.window_seconds;

  const std::size_t batch_sizes[] = {1, 7, 64, 4096, flows.size()};
  for (const std::size_t space : {std::size_t{0}, space_count - 1}) {
    const auto oracle =
        oracle_report(flows, labels, space_count, space, w.ixp(), window);
    const auto truth = size_rank_oracles(flows, labels, space);

    ReportResult reference;
    bool have_reference = false;
    for (const std::size_t bs : batch_sizes) {
      StreamingReport report(space_count, base_options(w, space, window));
      feed(report, flows, labels, bs);
      const auto result = report.finish();
      const std::string what =
          "space=" + std::to_string(space) + " batch=" + std::to_string(bs);

      EXPECT_EQ(result.flows, flows.size()) << what;
      EXPECT_EQ(result.evictions, 0u) << what;
      expect_matches_oracle(result, oracle, what.c_str());
      for (int c = 0; c < kNumClasses; ++c) {
        expect_sketch_within_bound(result.traffic.size_sketch[c], truth[c],
                                   what.c_str());
      }
      if (!have_reference) {
        reference = result;
        have_reference = true;
      } else {
        expect_same_report(result, reference, /*exact_sketches=*/true,
                           what.c_str());
      }
    }
  }
}

// Table 1 is a pure function of the aggregate, so the streaming pass must
// feed it the exact same columns the retained path would.
TEST_P(StreamingOracleTest, Table1FromStreamingAggregateMatchesOracle) {
  auto& w = world(GetParam());
  const auto& flows = w.trace().flows;
  const auto& labels = w.labels();
  const std::size_t space_count = w.classifier().space_count();
  ASSERT_GE(space_count, 5u);  // table1 wants all five method spaces

  StreamingReport report(
      space_count, base_options(w, 0, w.params().workload.window_seconds));
  feed(report, flows, labels, 1024);
  const auto result = report.finish();

  const auto oracle_agg = classify::aggregate_classes(space_count, flows, labels);
  const double scale = 1000.0;
  const std::size_t members = w.ixp().member_asns().size();
  const auto got = table1_columns(result.aggregate, scale, members);
  const auto want = table1_columns(oracle_agg, scale, members);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, want[i].name) << "col=" << i;
    EXPECT_EQ(got[i].members, want[i].members) << "col=" << i;
    EXPECT_EQ(got[i].member_fraction, want[i].member_fraction) << "col=" << i;
    EXPECT_EQ(got[i].bytes, want[i].bytes) << "col=" << i;
    EXPECT_EQ(got[i].bytes_fraction, want[i].bytes_fraction) << "col=" << i;
    EXPECT_EQ(got[i].packets, want[i].packets) << "col=" << i;
    EXPECT_EQ(got[i].packets_fraction, want[i].packets_fraction) << "col=" << i;
  }
}

// With window_seconds == 0 the time series grows with the observed
// timestamps; sized to what it grew to, the oracle must agree exactly.
// The amplification ratios are binning-independent totals, so they must
// match the fixed-window oracle too.
TEST_P(StreamingOracleTest, DynamicWindowSeriesMatchesSizedOracle) {
  auto& w = world(GetParam());
  const auto& flows = w.trace().flows;
  const auto& labels = w.labels();
  const std::size_t space_count = w.classifier().space_count();

  StreamingReport report(space_count, base_options(w, 0, /*window=*/0));
  feed(report, flows, labels, 512);
  const auto result = report.finish();

  std::uint32_t max_ts = 0;
  for (const auto& f : flows) max_ts = std::max(max_ts, f.ts);
  const std::uint32_t grown_bins = max_ts / 3600 + 1;
  ASSERT_EQ(result.traffic.series.series[0].size(), grown_bins);
  const auto oracle_series =
      class_time_series(flows, labels, 0, grown_bins * 3600);
  expect_same_series(result.traffic.series, oracle_series, "dynamic window");

  const auto oracle_amp = amplification_effect(
      flows, labels, 0, w.params().workload.window_seconds);
  EXPECT_EQ(result.amplification.amplification_factor(),
            oracle_amp.amplification_factor());
  EXPECT_EQ(result.amplification.packet_ratio(), oracle_amp.packet_ratio());
}

// finish() is a snapshot: flushing mid-stream (and mid-time-bin) must
// yield exactly the oracle over the prefix, and the builder must keep
// accumulating afterwards as if the flush never happened.
TEST_P(StreamingOracleTest, MidStreamFlushIsPrefixOracleAndNonDestructive) {
  auto& w = world(GetParam());
  const std::span<const net::FlowRecord> flows = w.trace().flows;
  const std::span<const Label> labels = w.labels();
  const std::size_t space_count = w.classifier().space_count();
  const std::uint32_t window = w.params().workload.window_seconds;
  const std::size_t half = flows.size() / 2;

  StreamingReport report(space_count, base_options(w, 0, window));
  feed(report, flows.first(half), labels.first(half), 7);
  const auto mid = report.finish();
  const auto prefix_oracle = oracle_report(
      flows.first(half), labels.first(half), space_count, 0, w.ixp(), window);
  EXPECT_EQ(mid.flows, half);
  expect_matches_oracle(mid, prefix_oracle, "mid-stream flush");

  feed(report, flows.subspan(half), labels.subspan(half), 7);
  StreamingReport sequential(space_count, base_options(w, 0, window));
  feed(sequential, flows, labels, 4096);
  expect_same_report(report.finish(), sequential.finish(),
                     /*exact_sketches=*/true, "after flush");
}

// Labels produced by either engine on any thread count must drive the
// report to the same result as the scenario's own labels.
TEST_P(StreamingOracleTest, EnginesAndThreadCountsProduceIdenticalReports) {
  auto& w = world(GetParam());
  const auto& flows = w.trace().flows;
  const std::size_t space_count = w.classifier().space_count();
  const auto opts = base_options(w, 0, w.params().workload.window_seconds);
  const auto flat = classify::FlatClassifier::compile(w.classifier());

  StreamingReport reference(space_count, opts);
  feed(reference, flows, w.labels(), 1024);
  const auto want = reference.finish();

  constexpr std::size_t kThreadCounts[] = {1, 2, 0};
  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    for (const bool use_flat : {false, true}) {
      StreamingReport report(space_count, opts);
      net::FlowBatch batch;
      std::vector<Label> labels;
      std::size_t i = 0;
      while (i < flows.size()) {
        const std::size_t n = std::min<std::size_t>(1024, flows.size() - i);
        batch.clear();
        for (std::size_t k = 0; k < n; ++k) batch.push_back(flows[i + k]);
        labels.resize(batch.size());
        if (use_flat) {
          flat.classify_batch(batch, labels, pool);
        } else {
          w.classifier().classify_batch(batch, labels, pool);
        }
        report.add(batch, labels);
        i += n;
      }
      const std::string what = std::string(use_flat ? "flat" : "trie") +
                               " threads=" + std::to_string(threads);
      expect_same_report(report.finish(), want, /*exact_sketches=*/true,
                         what.c_str());
    }
  }
}

// The pool-shard reduction: batches dealt round-robin onto N shard
// reports, folded back in shard order, must equal the sequential pass
// bit-identically for every exact analysis; the merged sketch keeps its
// (combined) rank-error bound against the ground truth.
TEST_P(StreamingOracleTest, ChunkOrderMergeReductionMatchesSequential) {
  auto& w = world(GetParam());
  const std::span<const net::FlowRecord> flows = w.trace().flows;
  const std::span<const Label> labels = w.labels();
  const std::size_t space_count = w.classifier().space_count();
  const auto opts = base_options(w, 0, w.params().workload.window_seconds);
  const auto truth = size_rank_oracles(flows, labels, 0);

  StreamingReport sequential(space_count, opts);
  feed(sequential, flows, labels, 64);
  const auto want = sequential.finish();

  for (const std::size_t shards : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    std::vector<std::unique_ptr<StreamingReport>> parts;
    for (std::size_t s = 0; s < shards; ++s) {
      parts.push_back(std::make_unique<StreamingReport>(space_count, opts));
    }
    net::FlowBatch batch;
    std::size_t i = 0, chunk = 0;
    while (i < flows.size()) {
      const std::size_t n = std::min<std::size_t>(64, flows.size() - i);
      batch.clear();
      for (std::size_t k = 0; k < n; ++k) batch.push_back(flows[i + k]);
      parts[chunk % shards]->add(batch, labels.subspan(i, n));
      i += n;
      ++chunk;
    }
    StreamingReport merged(space_count, opts);
    for (const auto& part : parts) merged.merge(*part);
    const auto got = merged.finish();
    const std::string what = "shards=" + std::to_string(shards);

    expect_same_report(got, want, /*exact_sketches=*/false, what.c_str());
    for (int c = 0; c < kNumClasses; ++c) {
      expect_sketch_within_bound(got.traffic.size_sketch[c], truth[c],
                                 what.c_str());
    }
  }
}

// Corruption differential: a skip-mode streaming report over a damaged
// trace must equal the oracle restricted to the records a per-record
// skip-mode reader survives; strict mode must refuse the stream.
TEST_P(StreamingOracleTest, CorruptedSkipModeMatchesSurvivorOracle) {
  auto& w = world(GetParam());
  const std::size_t space_count = w.classifier().space_count();
  const std::uint32_t window = w.params().workload.window_seconds;
  const auto flat = classify::FlatClassifier::compile(w.classifier());

  std::stringstream ss;
  net::write_trace(ss, w.trace());
  const std::string clean = ss.str();

  util::Rng flip_rng(GetParam() ^ 0x5eedau);
  util::Rng splice_rng(GetParam() ^ 0x9a11u);
  const std::string corrupted[] = {
      testing::flip_bits(clean, flip_rng, 3, net::format::kHeaderSizeV2),
      testing::splice_garbage(clean, splice_rng, net::format::kHeaderSizeV2),
  };
  for (const auto& bytes : corrupted) {
    // Reference: per-record skip-mode survivors through the oracle.
    std::istringstream in(bytes, std::ios::binary);
    util::IngestStats ref_stats;
    net::TraceReader reader(in, util::ErrorPolicy::kSkip, &ref_stats);
    std::vector<net::FlowRecord> survivors;
    while (const auto f = reader.next()) survivors.push_back(*f);
    ASSERT_LT(survivors.size(), w.trace().flows.size());  // damage landed
    const auto labels = classify::classify_trace(flat, survivors);
    const auto oracle = oracle_report(survivors, labels, space_count, 0,
                                      w.ixp(), window);

    // Streaming: mmap-style skip-mode batches straight into the report.
    const net::MappedTrace trace = net::MappedTrace::from_buffer(
        std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
    util::IngestStats stream_stats;
    net::MappedTraceReader mapped(trace, util::ErrorPolicy::kSkip,
                                  &stream_stats);
    util::ThreadPool pool(2);
    StreamingReport report(space_count, base_options(w, 0, window));
    net::FlowBatch batch;
    std::vector<Label> batch_labels;
    while (mapped.next_batch(batch, 512) > 0) {
      batch_labels.resize(batch.size());
      flat.classify_batch(batch, batch_labels, pool);
      report.add(batch, batch_labels);
    }

    EXPECT_EQ(stream_stats, ref_stats);
    const auto result = report.finish();
    EXPECT_EQ(result.flows, survivors.size());
    expect_matches_oracle(result, oracle, "corrupted/skip");

    // Strict mode refuses the same bytes.
    net::MappedTraceReader strict(trace, util::ErrorPolicy::kStrict);
    EXPECT_THROW(
        {
          net::FlowBatch b;
          while (strict.next_batch(b, 512) > 0) {
          }
        },
        std::exception);
  }
}

// Under finite caps the results degrade but stay a pure function of the
// record sequence: identical across batch cuts, evictions visible, and
// tables bounded. Production limits are far above the small-world sizes,
// so they must reproduce the unbounded result exactly.
TEST_P(StreamingOracleTest, BoundedCapsAreDeterministicAcrossBatchCuts) {
  auto& w = world(GetParam());
  const auto& flows = w.trace().flows;
  const auto& labels = w.labels();
  const std::size_t space_count = w.classifier().space_count();
  const std::uint32_t window = w.params().workload.window_seconds;

  auto opts = base_options(w, 0, window);
  opts.limits.max_members = 8;
  opts.limits.max_destinations = 16;
  opts.limits.max_sources_per_destination = 8;
  opts.limits.max_victims = 8;
  opts.limits.max_amplifiers_per_victim = 8;
  opts.limits.max_amplifiers = 16;
  opts.limits.max_pairs = 16;
  opts.limits.max_clusters = 8;
  opts.limits.max_counterparts_per_cluster = 8;
  opts.limits.sketch_k = 64;

  ReportResult reference;
  bool have_reference = false;
  for (const std::size_t bs : {std::size_t{1}, std::size_t{64}, flows.size()}) {
    StreamingReport report(space_count, opts);
    feed(report, flows, labels, bs);
    const auto result = report.finish();
    const std::string what = "capped batch=" + std::to_string(bs);
    EXPECT_GT(result.evictions, 0u) << what;
    EXPECT_LE(result.member_counts.size(), opts.limits.max_members) << what;
    if (!have_reference) {
      reference = result;
      have_reference = true;
    } else {
      expect_same_report(result, reference, /*exact_sketches=*/true,
                         what.c_str());
    }
  }

  // Production caps dwarf the small world: no evictions, oracle-exact.
  auto prod = base_options(w, 0, window);
  prod.limits = ReportLimits::production();
  StreamingReport bounded(space_count, prod);
  feed(bounded, flows, labels, 4096);
  StreamingReport unbounded(space_count, base_options(w, 0, window));
  feed(unbounded, flows, labels, 4096);
  const auto bounded_result = bounded.finish();
  EXPECT_EQ(bounded_result.evictions, 0u);
  expect_same_report(bounded_result, unbounded.finish(),
                     /*exact_sketches=*/true, "production limits");
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingOracleTest,
                         ::testing::Values(1, 7, 20170205));

// The LRU discipline itself: least-recently-touched eviction, refresh on
// touch, visible eviction counts, live re-capping and fold-merge.
TEST(BoundedTableTest, LruEvictionDiscipline) {
  BoundedTable<int, int> table(2);
  table.touch(1) = 10;
  table.touch(2) = 20;
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.evictions(), 0u);

  table.touch(1);     // refresh: 2 becomes least-recently-touched
  table.touch(3) = 30;  // evicts 2
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.evictions(), 1u);
  ASSERT_NE(table.find(1), nullptr);
  EXPECT_EQ(*table.find(1), 10);
  EXPECT_EQ(table.find(2), nullptr);
  ASSERT_NE(table.find(3), nullptr);
  EXPECT_EQ(table.sorted_keys(), (std::vector<int>{1, 3}));

  // A re-inserted key counts as fresh — its old recency is gone.
  table.touch(2) = 21;  // evicts 1: touch order is now 1 (refresh), 3, 2
  EXPECT_EQ(table.evictions(), 2u);
  EXPECT_EQ(table.find(1), nullptr);

  // Shrinking the cap evicts down immediately, oldest first.
  table.set_cap(1);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.evictions(), 3u);
  ASSERT_NE(table.find(2), nullptr);  // 2 was touched last

  // Cap 0 = unbounded.
  table.set_cap(0);
  for (int k = 10; k < 20; ++k) table.touch(k) = k;
  EXPECT_EQ(table.size(), 11u);
  EXPECT_EQ(table.evictions(), 3u);
}

TEST(BoundedTableTest, MergeFoldsValuesAndAccumulatesEvictions) {
  BoundedTable<int, int> a(0);
  a.touch(1) = 1;
  a.touch(2) = 2;

  BoundedTable<int, int> b(1);
  b.touch(2) = 20;
  b.touch(3) = 30;  // evicts 2 in b
  EXPECT_EQ(b.evictions(), 1u);

  a.merge(b, [](int& ours, const int& theirs) { ours += theirs; });
  EXPECT_EQ(a.sorted_keys(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(*a.find(1), 1);
  EXPECT_EQ(*a.find(2), 2);   // 2 was evicted from b before the merge
  EXPECT_EQ(*a.find(3), 30);
  EXPECT_EQ(a.evictions(), 1u);  // b's evictions carried over
}

}  // namespace
}  // namespace spoofscope::analysis
