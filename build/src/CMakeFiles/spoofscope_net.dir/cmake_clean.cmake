file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_net.dir/net/bogon.cpp.o"
  "CMakeFiles/spoofscope_net.dir/net/bogon.cpp.o.d"
  "CMakeFiles/spoofscope_net.dir/net/flow.cpp.o"
  "CMakeFiles/spoofscope_net.dir/net/flow.cpp.o.d"
  "CMakeFiles/spoofscope_net.dir/net/ipv4.cpp.o"
  "CMakeFiles/spoofscope_net.dir/net/ipv4.cpp.o.d"
  "CMakeFiles/spoofscope_net.dir/net/prefix.cpp.o"
  "CMakeFiles/spoofscope_net.dir/net/prefix.cpp.o.d"
  "CMakeFiles/spoofscope_net.dir/net/protocols.cpp.o"
  "CMakeFiles/spoofscope_net.dir/net/protocols.cpp.o.d"
  "CMakeFiles/spoofscope_net.dir/net/trace.cpp.o"
  "CMakeFiles/spoofscope_net.dir/net/trace.cpp.o.d"
  "libspoofscope_net.a"
  "libspoofscope_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
