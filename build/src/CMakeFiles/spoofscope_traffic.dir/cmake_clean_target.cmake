file(REMOVE_RECURSE
  "libspoofscope_traffic.a"
)
