#include "asgraph/graph.hpp"

#include <algorithm>

namespace spoofscope::asgraph {

AsGraph::AsGraph(std::vector<Asn> nodes, std::vector<std::pair<Asn, Asn>> edges) {
  nodes_ = std::move(nodes);
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  for (const auto& [a, b] : edges) {
    if (std::find(nodes_.begin(), nodes_.end(), a) == nodes_.end()) nodes_.push_back(a);
    if (std::find(nodes_.begin(), nodes_.end(), b) == nodes_.end()) nodes_.push_back(b);
  }
  index_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) index_.emplace(nodes_[i], i);

  succ_.resize(nodes_.size());
  pred_.resize(nodes_.size());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (const auto& [a, b] : edges) {
    if (a == b) continue;
    const auto i = static_cast<std::uint32_t>(index_.at(a));
    const auto j = static_cast<std::uint32_t>(index_.at(b));
    succ_[i].push_back(j);
    pred_[j].push_back(i);
    ++edge_count_;
  }
}

AsGraph AsGraph::from_routing_table(const bgp::RoutingTable& table) {
  return AsGraph(table.ases(), table.edges());
}

AsGraph AsGraph::with_extra_edges(
    std::span<const std::pair<Asn, Asn>> extra) const {
  auto all = edges();
  all.insert(all.end(), extra.begin(), extra.end());
  return AsGraph(nodes_, std::move(all));
}

std::optional<std::size_t> AsGraph::index_of(Asn asn) const {
  const auto it = index_.find(asn);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<Asn, Asn>> AsGraph::edges() const {
  std::vector<std::pair<Asn, Asn>> out;
  out.reserve(edge_count_);
  for (std::size_t i = 0; i < succ_.size(); ++i) {
    for (const auto j : succ_[i]) out.emplace_back(nodes_[i], nodes_[j]);
  }
  return out;
}

}  // namespace spoofscope::asgraph
