# Empty dependencies file for topo_serialize_test.
# This may be replaced when dependencies are built.
