# Empty compiler generated dependencies file for trie_interval_set_test.
# This may be replaced when dependencies are built.
