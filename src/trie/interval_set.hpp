// Disjoint set of inclusive uint32 ranges.
//
// Per-AS valid address space can reach millions of /24s; representing it as
// merged intervals gives O(log n) membership (binary search) and exact
// address counting, with far less memory than a trie per AS. This is the
// workhorse behind inference::ValidSpace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace spoofscope::trie {

/// An inclusive address range [lo, hi].
struct Interval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A normalized (sorted, disjoint, non-adjacent) set of address intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Builds from arbitrary (possibly overlapping, unsorted) intervals in
  /// one normalization pass — preferred for bulk construction.
  static IntervalSet from_intervals(std::vector<Interval> ivs);

  /// Builds from prefixes.
  static IntervalSet from_prefixes(std::span<const net::Prefix> ps);

  /// Inserts one range, merging as needed. O(n) worst case; use
  /// from_intervals for bulk loads.
  void add(std::uint32_t lo, std::uint32_t hi);

  /// Inserts all addresses of a prefix.
  void add(const net::Prefix& p) { add(p.first(), p.last()); }

  /// True if `a` is in the set. O(log n).
  bool contains(net::Ipv4Addr a) const;

  /// True if the whole range [lo, hi] is covered.
  bool contains_range(std::uint32_t lo, std::uint32_t hi) const;

  /// True if any address in [lo, hi] is in the set. O(log n).
  bool intersects_range(std::uint32_t lo, std::uint32_t hi) const;

  /// Number of addresses covered (up to 2^32, hence uint64).
  std::uint64_t address_count() const;

  /// Covered space expressed in /24-equivalents (paper's unit).
  double slash24_equivalents() const {
    return static_cast<double>(address_count()) / 256.0;
  }

  /// Set union.
  IntervalSet unite(const IntervalSet& other) const;

  /// Set intersection.
  IntervalSet intersect(const IntervalSet& other) const;

  /// Set difference (*this minus other).
  IntervalSet subtract(const IntervalSet& other) const;

  /// Decomposes into the minimal list of CIDR prefixes covering exactly
  /// this set.
  std::vector<net::Prefix> to_prefixes() const;

  const std::vector<Interval>& intervals() const { return ivs_; }
  bool empty() const { return ivs_.empty(); }
  std::size_t size() const { return ivs_.size(); }

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  std::vector<Interval> ivs_;  // invariant: sorted, disjoint, gaps >= 1
};

}  // namespace spoofscope::trie
