# Empty dependencies file for scenario_multiseed_test.
# This may be replaced when dependencies are built.
