# Empty dependencies file for spoofscope_cli.
# This may be replaced when dependencies are built.
