#include "asgraph/relationship.hpp"

#include <gtest/gtest.h>

#include "bgp/collector.hpp"
#include "bgp/simulator.hpp"
#include "net/prefix.hpp"
#include "topo/generator.hpp"

namespace spoofscope::asgraph {
namespace {

using net::pfx;

/// Finds the inferred classification of an (unordered) link.
const InferredLink* find_link(const std::vector<InferredLink>& links, Asn x, Asn y) {
  for (const auto& l : links) {
    if ((l.a == x && l.b == y) || (l.a == y && l.b == x)) return &l;
  }
  return nullptr;
}

bgp::RoutingTable hierarchy_table() {
  // Hierarchy: 1 and 2 are the big transit core (peers); 10,11 customers
  // of 1; 20 customer of 2; 100 customer of 10.
  bgp::RoutingTableBuilder b;
  // Routes originated at 100, seen at several vantage points:
  b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{11, 1, 10, 100});
  b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{20, 2, 1, 10, 100});
  // Routes originated at 20:
  b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{100, 10, 1, 2, 20});
  b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{11, 1, 2, 20});
  // Routes originated at 11:
  b.ingest_route(pfx("70.0.0.0/16"), bgp::AsPath{100, 10, 1, 11});
  b.ingest_route(pfx("70.0.0.0/16"), bgp::AsPath{20, 2, 1, 11});
  // Routes originated at 10:
  b.ingest_route(pfx("80.0.0.0/16"), bgp::AsPath{20, 2, 1, 10});
  return b.build();
}

TEST(Relationship, CliqueIsHighDegreeCore) {
  const auto table = hierarchy_table();
  const auto clique = infer_clique(table, 2);
  EXPECT_EQ(clique, (std::vector<Asn>{1, 2}));
}

TEST(Relationship, CorePeeringInferred) {
  const auto table = hierarchy_table();
  const auto links = infer_relationships(table);
  const auto* l = find_link(links, 1, 2);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->rel, InferredRel::kP2P);
}

TEST(Relationship, CustomerEdgesPointUp) {
  const auto table = hierarchy_table();
  const auto links = infer_relationships(table);

  const auto* c100 = find_link(links, 100, 10);
  ASSERT_NE(c100, nullptr);
  EXPECT_EQ(c100->rel, InferredRel::kC2P);
  EXPECT_EQ(c100->a, 100u);  // 100 is the customer
  EXPECT_EQ(c100->b, 10u);

  const auto* c10 = find_link(links, 10, 1);
  ASSERT_NE(c10, nullptr);
  EXPECT_EQ(c10->rel, InferredRel::kC2P);
  EXPECT_EQ(c10->a, 10u);

  const auto* c20 = find_link(links, 20, 2);
  ASSERT_NE(c20, nullptr);
  EXPECT_EQ(c20->rel, InferredRel::kC2P);
  EXPECT_EQ(c20->a, 20u);
}

TEST(Relationship, EveryObservedLinkClassifiedOnce) {
  const auto table = hierarchy_table();
  const auto links = infer_relationships(table);
  std::set<std::pair<Asn, Asn>> seen;
  for (const auto& l : links) {
    const auto key = std::make_pair(std::min(l.a, l.b), std::max(l.a, l.b));
    EXPECT_TRUE(seen.insert(key).second) << "link classified twice";
  }
  // Distinct links observed: 1-11, 1-10, 10-100, 2-20, 1-2.
  EXPECT_EQ(links.size(), 5u);
}

TEST(Relationship, Deterministic) {
  const auto table = hierarchy_table();
  const auto a = infer_relationships(table);
  const auto b = infer_relationships(table);
  EXPECT_EQ(a, b);
}

TEST(Relationship, InferenceOnGeneratedTopologyIsMostlyCorrect) {
  // End-to-end: generate a topology, run BGP, infer relationships from
  // the observed table, and check accuracy against ground truth for the
  // links that were observed.
  topo::TopologyParams params;
  params.num_tier1 = 3;
  params.num_transit = 10;
  params.num_isp = 30;
  params.num_hosting = 15;
  params.num_content = 8;
  params.num_other = 14;
  const auto topo = generate_topology(params, 21);
  const bgp::Simulator sim(topo);
  bgp::PlanParams pp;
  pp.selective_prob = 0.0;
  pp.transient_prob = 0.0;
  const auto plan = make_announcement_plan(topo, pp, 22);
  const bgp::RouteFabric fabric(sim, plan);

  // A handful of full-feed collectors at diverse ASes.
  bgp::RoutingTableBuilder builder;
  bgp::CollectorSpec spec;
  spec.feeders = {topo.asn_at(0), topo.asn_at(5), topo.asn_at(20), topo.asn_at(50)};
  builder.ingest(collect_records(fabric, spec));
  const auto table = builder.build();

  const auto links = infer_relationships(table);
  ASSERT_FALSE(links.empty());

  std::size_t checked = 0, correct = 0;
  for (const auto& l : links) {
    // Find ground truth for this pair.
    for (const auto& gt : topo.links()) {
      const bool same_pair = (gt.from == l.a && gt.to == l.b) ||
                             (gt.from == l.b && gt.to == l.a);
      if (!same_pair) continue;
      ++checked;
      if (gt.type == topo::RelType::kCustomerToProvider) {
        correct += l.rel == InferredRel::kC2P && l.a == gt.from;
      } else {
        correct += l.rel == InferredRel::kP2P;
      }
      break;
    }
  }
  ASSERT_GT(checked, 20u);
  // The heuristic is intentionally imperfect, but should get the bulk of
  // c2p directions right.
  EXPECT_GT(static_cast<double>(correct) / checked, 0.7)
      << correct << "/" << checked;
}

}  // namespace
}  // namespace spoofscope::asgraph
