// The SIMD kernel layer: dispatch semantics (name/parse round-trips,
// kAuto resolution, the SPOOFSCOPE_SIMD override, loud failure on
// unusable kernels) and kernel-vs-scalar differentials over exactly the
// inputs the vector fast path must hand to the slow lane — the overflow
// lane (>/24 prefixes), the interval-set fallback lane (unaligned
// ValidSpace::extend), PlaneCache-served planes (mapped records where
// the trailing gather guard forces scalar record loads), and skip-mode
// corrupted traces whose surviving batches are ragged.
#include "classify/batch_kernels.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "classify/flat_classifier.hpp"
#include "classify/pipeline.hpp"
#include "corruption.hpp"
#include "net/flow_batch.hpp"
#include "net/mapped_trace.hpp"
#include "net/trace.hpp"
#include "net/trace_format.hpp"
#include "scenario/scenario.hpp"
#include "state/plane_cache.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::classify {
namespace {

namespace fs = std::filesystem;
using net::pfx;

TEST(SimdKernel, NamesAndParseRoundTrip) {
  for (const SimdKernel k : {SimdKernel::kAuto, SimdKernel::kScalar,
                             SimdKernel::kAvx2, SimdKernel::kNeon}) {
    EXPECT_EQ(parse_simd_kernel(simd_kernel_name(k)), k);
  }
  EXPECT_EQ(parse_simd_kernel("sse2"), std::nullopt);
  EXPECT_EQ(parse_simd_kernel(""), std::nullopt);
  EXPECT_EQ(parse_simd_kernel("AVX2"), std::nullopt);  // case-sensitive
}

TEST(SimdKernel, UsabilityAndResolutionAreConsistent) {
  EXPECT_TRUE(simd_kernel_compiled(SimdKernel::kScalar));
  EXPECT_TRUE(simd_kernel_usable(SimdKernel::kScalar));
  EXPECT_EQ(resolve_simd_kernel(SimdKernel::kScalar), SimdKernel::kScalar);

  const auto usable = usable_simd_kernels();
  ASSERT_FALSE(usable.empty());
  EXPECT_EQ(usable.front(), SimdKernel::kScalar);
  for (const SimdKernel k : usable) {
    EXPECT_TRUE(simd_kernel_compiled(k)) << simd_kernel_name(k);
    EXPECT_TRUE(simd_kernel_usable(k)) << simd_kernel_name(k);
    EXPECT_EQ(resolve_simd_kernel(k), k) << simd_kernel_name(k);
  }

  // kAuto resolves to a concrete usable kernel (whatever SPOOFSCOPE_SIMD
  // or the CPU picks), never back to kAuto.
  const SimdKernel resolved = resolve_simd_kernel(SimdKernel::kAuto);
  EXPECT_NE(resolved, SimdKernel::kAuto);
  EXPECT_TRUE(simd_kernel_usable(resolved));

  // An explicit request for an unusable kernel throws instead of
  // silently falling back — a pinned differential must not lie.
  for (const SimdKernel k : {SimdKernel::kAvx2, SimdKernel::kNeon}) {
    if (!simd_kernel_usable(k)) {
      EXPECT_THROW(resolve_simd_kernel(k), std::runtime_error)
          << simd_kernel_name(k);
    }
  }
}

/// Saves/restores SPOOFSCOPE_SIMD around the override tests so they
/// compose with tools/check.sh pinning the variable for the whole
/// binary.
class ScopedSimdEnv {
 public:
  ScopedSimdEnv() {
    if (const char* v = std::getenv("SPOOFSCOPE_SIMD")) saved_ = v;
  }
  ~ScopedSimdEnv() {
    if (saved_) {
      ::setenv("SPOOFSCOPE_SIMD", saved_->c_str(), 1);
    } else {
      ::unsetenv("SPOOFSCOPE_SIMD");
    }
  }

 private:
  std::optional<std::string> saved_;
};

TEST(SimdKernel, EnvVarOverridesAutoButNotExplicitRequests) {
  ScopedSimdEnv guard;

  ::setenv("SPOOFSCOPE_SIMD", "scalar", 1);
  EXPECT_EQ(resolve_simd_kernel(SimdKernel::kAuto), SimdKernel::kScalar);

  // "auto" and empty defer to CPU detection.
  ::setenv("SPOOFSCOPE_SIMD", "auto", 1);
  EXPECT_NE(resolve_simd_kernel(SimdKernel::kAuto), SimdKernel::kAuto);
  ::setenv("SPOOFSCOPE_SIMD", "", 1);
  EXPECT_NE(resolve_simd_kernel(SimdKernel::kAuto), SimdKernel::kAuto);

  // Garbage is a loud error, not a silent scalar run.
  ::setenv("SPOOFSCOPE_SIMD", "avx512", 1);
  EXPECT_THROW(resolve_simd_kernel(SimdKernel::kAuto), std::runtime_error);

  // The override only affects kAuto: explicit kernels ignore it.
  ::setenv("SPOOFSCOPE_SIMD", "scalar", 1);
  for (const SimdKernel k : usable_simd_kernels()) {
    EXPECT_EQ(resolve_simd_kernel(k), k) << simd_kernel_name(k);
  }
}

/// Small but structurally complete source covering both escape hatches:
/// the /26 and /30 break /24 homogeneity (overflow lane) and member 2's
/// space covers only half of its routed /16 (interval-set fallback).
struct EdgeLaneFixture {
  EdgeLaneFixture() {
    bgp::RoutingTableBuilder b({.min_length = 8, .max_length = 32});
    b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
    b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{2});
    b.ingest_route(pfx("70.0.0.64/26"), bgp::AsPath{2, 1});
    b.ingest_route(pfx("70.0.0.0/24"), bgp::AsPath{1});
    b.ingest_route(pfx("80.0.0.128/30"), bgp::AsPath{2});
    table = b.build();

    trie::IntervalSet s1;
    s1.add(pfx("50.0.0.0/16"));
    s1.add(pfx("70.0.0.0/24"));
    trie::IntervalSet s2;
    s2.add(pfx("60.0.0.0/17"));  // half of routed 60/16: fallback lane
    s2.add(pfx("70.0.0.64/26"));
    s2.add(pfx("80.0.0.128/30"));
    std::unordered_map<net::Asn, trie::IntervalSet> spaces;
    spaces.emplace(1, std::move(s1));
    spaces.emplace(2, std::move(s2));
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }

  /// Every address of the affected /24 blocks plus routed, unrouted and
  /// bogon probes, cycled over members {1, 2, non-member} — sized so the
  /// vector kernels run full tiles with ragged tails.
  net::FlowBatch probe_batch() const {
    net::FlowBatch batch;
    const net::Asn members[] = {1, 2, 99};
    std::size_t i = 0;
    const auto add = [&](std::uint32_t addr) {
      net::FlowRecord f;
      f.src = net::Ipv4Addr(addr);
      f.member_in = members[i++ % 3];
      f.packets = 1;
      f.bytes = 40;
      batch.push_back(f);
    };
    for (std::uint32_t a = pfx("70.0.0.0/24").first();
         a <= pfx("70.0.0.0/24").last(); ++a) {
      add(a);
    }
    for (std::uint32_t a = pfx("80.0.0.0/24").first();
         a <= pfx("80.0.0.0/24").last(); ++a) {
      add(a);
    }
    for (std::uint32_t a = pfx("60.0.0.0/17").first() - 300;
         a < pfx("60.0.0.0/17").first() + 300; ++a) {
      add(a);  // straddles the fallback boundary inside routed 60/16
    }
    add(pfx("50.0.0.0/16").first() + 17);            // plain routed
    add(net::Ipv4Addr::from_octets(99, 9, 9, 9).value());   // unrouted
    add(net::Ipv4Addr::from_octets(192, 168, 1, 1).value());  // bogon
    return batch;
  }

  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

TEST(SimdKernel, OverflowAndFallbackLanesIdenticalAcrossKernels) {
  const EdgeLaneFixture fx;
  const auto flat = FlatClassifier::compile(*fx.classifier);
  ASSERT_GT(flat.stats().overflow_slots, 0u);
  ASSERT_GT(flat.stats().partial_rows, 0u);

  const auto batch = fx.probe_batch();
  std::vector<Label> oracle(batch.size());
  flat.classify_batch(batch, oracle, SimdKernel::kScalar);
  // Scalar kernel == trie engine, element by element.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto f = batch.record(i);
    ASSERT_EQ(oracle[i], fx.classifier->classify_all(f.src, f.member_in))
        << f.src.str() << " member " << f.member_in;
  }

  for (const SimdKernel kernel : usable_simd_kernels()) {
    std::vector<Label> got(batch.size());
    flat.classify_batch(batch, got, kernel);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto f = batch.record(i);
      ASSERT_EQ(got[i], oracle[i])
          << simd_kernel_name(kernel) << " " << f.src.str() << " member "
          << f.member_in;
    }
  }
}

TEST(SimdKernel, UnalignedExtendFallbackIdenticalAcrossKernels) {
  auto params = scenario::ScenarioParams::small();
  params.seed = 20170205;
  const auto w = scenario::build_scenario(params);
  auto& classifier = w->classifier();
  const auto& prefixes = w->table().prefixes();
  ASSERT_FALSE(prefixes.empty());
  const auto members = w->ixp().member_asns();

  // Unaligned extends: strict sub-ranges and straddles of routed
  // prefixes, so the compile produces partial rows.
  for (std::size_t m = 0; m < 5 && m < members.size(); ++m) {
    const auto& p = prefixes[(m * 13) % prefixes.size()];
    trie::IntervalSet extra;
    if (p.last() - p.first() >= 8) {
      extra.add(p.first() + 1, p.first() + (p.last() - p.first()) / 2);
    }
    const auto& q = prefixes[(m * 29 + 7) % prefixes.size()];
    extra.add(q.first() + 3 > q.last() ? q.first() : q.first() + 3,
              q.last() + (q.last() < 0xFFFFFFFFu - 700 ? 700 : 0));
    classifier.mutable_space(4).extend(members[m], extra);
  }
  const auto flat = FlatClassifier::compile(classifier);
  ASSERT_GT(flat.stats().partial_rows, 0u);

  // Probes concentrated in the extended members and ranges.
  util::Rng rng(0xfa11);
  net::FlowBatch batch;
  for (int i = 0; i < 30000; ++i) {
    const auto& p = prefixes[rng.next_u32() % prefixes.size()];
    net::FlowRecord f;
    f.src = net::Ipv4Addr(p.first() +
                          rng.next_u32() % (p.last() - p.first() + 1));
    f.member_in = members[rng.next_u32() % (i % 2 == 0 ? 5 : members.size())];
    f.packets = 1;
    f.bytes = 40;
    batch.push_back(f);
  }

  std::vector<Label> oracle(batch.size());
  flat.classify_batch(batch, oracle, SimdKernel::kScalar);
  for (const SimdKernel kernel : usable_simd_kernels()) {
    std::vector<Label> got(batch.size());
    flat.classify_batch(batch, got, kernel);
    ASSERT_EQ(got, oracle) << simd_kernel_name(kernel);
  }
}

class ScratchDir {
 public:
  explicit ScratchDir(const char* name)
      : path_(fs::temp_directory_path() /
              (std::string(name) + "." + std::to_string(::getpid()))) {
    fs::remove_all(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(SimdKernel, PlaneCacheServedPlaneIdenticalAcrossKernels) {
  if (std::endian::native != std::endian::little) {
    GTEST_SKIP() << "plane cache degrades to compile-always on big-endian";
  }
  const EdgeLaneFixture fx;
  const ScratchDir dir("spoofscope-simd-plane-cache");
  state::PlaneCache cache(dir.str());
  const auto stored = cache.load_or_compile(*fx.classifier, nullptr,
                                            util::ErrorPolicy::kStrict);
  ASSERT_FALSE(stored.hit);
  const auto served = cache.load_or_compile(*fx.classifier, nullptr,
                                            util::ErrorPolicy::kStrict);
  ASSERT_TRUE(served.hit);

  // The mapped plane's records view typically ends flush against the
  // file, so the AVX2 record gather is disabled and pass C degrades to
  // scalar record loads — the labels must not care.
  const auto batch = fx.probe_batch();
  std::vector<Label> oracle(batch.size());
  stored.plane.classify_batch(batch, oracle, SimdKernel::kScalar);
  for (const SimdKernel kernel : usable_simd_kernels()) {
    std::vector<Label> owned(batch.size());
    std::vector<Label> mapped(batch.size());
    stored.plane.classify_batch(batch, owned, kernel);
    served.plane.classify_batch(batch, mapped, kernel);
    EXPECT_EQ(owned, oracle) << "owned " << simd_kernel_name(kernel);
    EXPECT_EQ(mapped, oracle) << "mapped " << simd_kernel_name(kernel);
  }
}

TEST(SimdKernel, SkipModeCorruptedTraceIdenticalAcrossKernels) {
  auto params = scenario::ScenarioParams::small();
  params.seed = 7;
  const auto w = scenario::build_scenario(params);
  const auto flat = FlatClassifier::compile(w->classifier());

  std::stringstream ss;
  net::write_trace(ss, w->trace());
  util::Rng rng(0xc0ff);
  const std::string corrupted = testing::flip_bits(
      ss.str(), rng, 5, net::format::kHeaderSizeV2);
  const net::MappedTrace trace = net::MappedTrace::from_buffer(
      std::vector<std::uint8_t>(corrupted.begin(), corrupted.end()));

  // Survivor batches under skip are ragged in both size and content;
  // every kernel must label them exactly like the forced-scalar pass.
  const auto labels_with = [&](SimdKernel kernel) {
    net::MappedTraceReader reader(trace, util::ErrorPolicy::kSkip);
    net::FlowBatch batch;
    std::vector<Label> out;
    std::vector<Label> all;
    while (reader.next_batch(batch, 4096) > 0) {
      out.resize(batch.size());
      flat.classify_batch(batch, out, kernel);
      all.insert(all.end(), out.begin(), out.end());
      batch.clear();
      reader.drop_consumed();
    }
    return all;
  };
  const auto oracle = labels_with(SimdKernel::kScalar);
  ASSERT_FALSE(oracle.empty());
  for (const SimdKernel kernel : usable_simd_kernels()) {
    EXPECT_EQ(labels_with(kernel), oracle) << simd_kernel_name(kernel);
  }
}

}  // namespace
}  // namespace spoofscope::classify
