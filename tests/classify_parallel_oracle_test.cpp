// Differential harness for the parallel execution layer: for several
// scenario seeds and thread counts, the parallel classify_trace must
// produce element-wise identical labels, parallel aggregate_classes must
// reproduce every (space, class) cell exactly, and the parallel
// valid-space build must equal the sequential factory output. The
// sequential single-thread code path is the oracle (cf. the Eumann et
// al. reproducibility study: classification results are sensitive to
// implementation details, so parallelism must be proven bit-identical).
#include <gtest/gtest.h>

#include <unordered_set>

#include "classify/pipeline.hpp"
#include "scenario/scenario.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::classify {
namespace {

/// Thread counts under test; 0 resolves to the hardware concurrency.
constexpr std::size_t kThreadCounts[] = {1, 2, 3, 7, 0};

void expect_same_cells(const Aggregate& seq, const Aggregate& par,
                       std::size_t threads) {
  EXPECT_EQ(seq.total_flows, par.total_flows) << "threads=" << threads;
  EXPECT_EQ(seq.total_packets, par.total_packets) << "threads=" << threads;
  EXPECT_EQ(seq.total_bytes, par.total_bytes) << "threads=" << threads;
  ASSERT_EQ(seq.totals.size(), par.totals.size());
  for (std::size_t s = 0; s < seq.totals.size(); ++s) {
    for (int c = 0; c < kNumClasses; ++c) {
      const auto& a = seq.totals[s][c];
      const auto& b = par.totals[s][c];
      EXPECT_EQ(a.flows, b.flows) << "threads=" << threads << " space=" << s
                                  << " class=" << c;
      EXPECT_EQ(a.packets, b.packets) << "threads=" << threads << " space=" << s
                                      << " class=" << c;
      EXPECT_EQ(a.bytes, b.bytes) << "threads=" << threads << " space=" << s
                                  << " class=" << c;
      EXPECT_EQ(a.members, b.members) << "threads=" << threads << " space=" << s
                                      << " class=" << c;
    }
  }
}

class ParallelOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelOracleTest, LabelsIdenticalToSequentialOracle) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;

  const auto oracle = classify_trace(w->classifier(), flows);
  // The scenario itself classifies through its pool (threads=1 here), so
  // its stored labels must equal the oracle too.
  EXPECT_EQ(w->labels(), oracle);

  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    const auto labels = classify_trace(w->classifier(), flows, pool);
    ASSERT_EQ(labels.size(), oracle.size()) << "threads=" << threads;
    // Element-wise comparison with a pinpointed first mismatch.
    for (std::size_t i = 0; i < labels.size(); ++i) {
      ASSERT_EQ(labels[i], oracle[i])
          << "first mismatch at flow " << i << " of " << labels.size()
          << " with threads=" << threads << " (" << flows[i].str() << ")";
    }
  }
}

TEST_P(ParallelOracleTest, AggregateTotalsMatchSequentialExactly) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam() ^ 0xa99;
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;
  const auto& labels = w->labels();

  const auto seq = aggregate_classes(w->classifier(), flows, labels);
  // Exercise the Sec 5.2 exclusion path as well: drop two members.
  std::unordered_set<Asn> exclude{w->ixp().members().front().asn,
                                  w->ixp().members().back().asn};
  const auto seq_excl =
      aggregate_classes(w->classifier(), flows, labels, exclude);

  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    expect_same_cells(
        seq, aggregate_classes(w->classifier(), flows, labels, {}, pool),
        threads);
    expect_same_cells(
        seq_excl,
        aggregate_classes(w->classifier(), flows, labels, exclude, pool),
        threads);
  }
}

TEST_P(ParallelOracleTest, ParallelValidSpaceBuildMatchesSequential) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam() ^ 0xf00;
  const auto w = scenario::build_scenario(params);
  const auto members = w->ixp().member_asns();

  for (int m = 0; m < inference::kNumMethods; ++m) {
    const auto method = static_cast<inference::Method>(m);
    const auto seq = w->factory().build(method, members);
    for (const std::size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      const auto par = w->factory().build(method, members, pool);
      ASSERT_EQ(par.size(), seq.size());
      for (const Asn asn : members) {
        const auto* a = seq.space_of(asn);
        const auto* b = par.space_of(asn);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(*a, *b) << "method=" << inference::method_name(method)
                          << " member=" << asn << " threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelOracleTest,
                         ::testing::Values(1, 7, 42, 4711, 20170205));

}  // namespace
}  // namespace spoofscope::classify
