# Empty compiler generated dependencies file for spoofscope_util.
# This may be replaced when dependencies are built.
