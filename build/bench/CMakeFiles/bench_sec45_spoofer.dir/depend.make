# Empty dependencies file for bench_sec45_spoofer.
# This may be replaced when dependencies are built.
