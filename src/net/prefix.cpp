#include "net/prefix.hpp"

#include <cassert>
#include <stdexcept>

#include "util/strings.hpp"

namespace spoofscope::net {

std::optional<Prefix> Prefix::parse(std::string_view s) {
  const std::size_t slash = s.find('/');
  if (slash == std::string_view::npos) {
    const auto addr = Ipv4Addr::parse(s);
    if (!addr) return std::nullopt;
    return Prefix(*addr, 32);
  }
  const auto addr = Ipv4Addr::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  std::uint32_t len;
  if (!util::parse_u32(s.substr(slash + 1), len) || len > 32) return std::nullopt;
  return Prefix(*addr, static_cast<std::uint8_t>(len));
}

Prefix Prefix::parent() const {
  assert(len_ > 0 && "prefix /0 has no parent");
  return Prefix(Ipv4Addr(addr_), static_cast<std::uint8_t>(len_ - 1));
}

Prefix Prefix::child(int bit) const {
  assert(len_ < 32 && "prefix /32 has no children");
  std::uint32_t a = addr_;
  if (bit) a |= std::uint32_t(1) << (31 - len_);
  return Prefix(Ipv4Addr(a), static_cast<std::uint8_t>(len_ + 1));
}

std::string Prefix::str() const {
  return Ipv4Addr(addr_).str() + "/" + std::to_string(len_);
}

Prefix pfx(std::string_view s) {
  const auto p = Prefix::parse(s);
  if (!p) throw std::invalid_argument("bad prefix: " + std::string(s));
  return *p;
}

}  // namespace spoofscope::net
