#include "classify/urpf.hpp"

#include <algorithm>

#include "net/bogon.hpp"

namespace spoofscope::classify {

std::string urpf_mode_name(UrpfMode mode) {
  switch (mode) {
    case UrpfMode::kLoose: return "uRPF loose";
    case UrpfMode::kFeasible: return "uRPF feasible";
    case UrpfMode::kStrict: return "uRPF strict";
  }
  return "?";
}

UrpfFilter::UrpfFilter(const bgp::RoutingTable& table, UrpfMode mode)
    : table_(&table), mode_(mode) {
  if (mode_ == UrpfMode::kStrict) {
    first_hops_.resize(table.prefixes().size());
    for (bgp::RoutingTable::PrefixId pid = 0; pid < table.prefixes().size();
         ++pid) {
      auto& hops = first_hops_[pid];
      for (const auto path_id : table.paths_of(pid)) {
        hops.push_back(table.paths()[path_id].first());
      }
      std::sort(hops.begin(), hops.end());
      hops.erase(std::unique(hops.begin(), hops.end()), hops.end());
    }
  }
}

bool UrpfFilter::accepts(net::Ipv4Addr src, net::Asn peer) const {
  if (net::is_bogon(src)) return false;
  const auto pid = table_->covering_prefix(src);
  if (!pid) return false;  // unrouted sources never pass uRPF
  switch (mode_) {
    case UrpfMode::kLoose:
      return true;
    case UrpfMode::kFeasible: {
      const auto pids = table_->prefixes_on_paths_of(peer);
      return std::binary_search(pids.begin(), pids.end(), *pid);
    }
    case UrpfMode::kStrict:
      return std::binary_search(first_hops_[*pid].begin(),
                                first_hops_[*pid].end(), peer);
  }
  return false;
}

}  // namespace spoofscope::classify
