// Per-AS valid source address space — the product of the paper's Sec 3.2
// inference methods, consumed by the classification pipeline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"
#include "trie/interval_set.hpp"

namespace spoofscope::inference {

using net::Asn;

/// The five inference variants evaluated in the paper (Fig 2 / Table 1).
enum class Method : std::uint8_t {
  kNaive = 0,            ///< AS on an observed path of the prefix
  kCustomerCone = 1,     ///< CAIDA-style customer cone
  kCustomerConeOrg = 2,  ///< customer cone + multi-AS org mesh
  kFullCone = 3,         ///< transitive closure on the directed AS graph
  kFullConeOrg = 4,      ///< full cone + multi-AS org mesh
};

inline constexpr int kNumMethods = 5;

/// Display name matching the paper's terminology.
std::string method_name(Method m);

/// Maps a member AS to the address space it may legitimately source.
///
/// ASes that never appeared in the routing data have an empty valid space
/// (only their traffic with routed sources would all be Invalid); in
/// practice every IXP member peers with the route server and is observed.
class ValidSpace {
 public:
  ValidSpace() = default;
  ValidSpace(Method method, std::unordered_map<Asn, trie::IntervalSet> spaces)
      : method_(method), spaces_(std::move(spaces)) {}

  Method method() const { return method_; }

  /// True if `member` may source packets with source address `a`.
  bool valid(Asn member, net::Ipv4Addr a) const;

  /// The member's valid space; nullptr when the AS is unknown.
  const trie::IntervalSet* space_of(Asn member) const;

  /// Valid space size in /24 equivalents (0 for unknown members).
  double slash24_of(Asn member) const;

  /// All ASes with a (possibly empty) computed space.
  std::vector<Asn> members() const;

  std::size_t size() const { return spaces_.size(); }

  /// Adds `extra` to a member's valid space — the Sec 4.4 workflow of
  /// whitelisting address ranges recovered from WHOIS / looking glasses.
  void extend(Asn member, const trie::IntervalSet& extra);

 private:
  Method method_ = Method::kFullCone;
  std::unordered_map<Asn, trie::IntervalSet> spaces_;
};

}  // namespace spoofscope::inference
