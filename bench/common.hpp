// Shared infrastructure for the reproduction benches: one medium-scale
// scenario reused by every registered benchmark in a binary, plus the
// customary main() that first runs the google-benchmark timers and then
// prints the table/figure the binary reproduces.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "scenario/scenario.hpp"

namespace spoofscope::bench {

/// The bench-scale configuration: large enough for the paper's shapes to
/// be visible, small enough that the whole bench suite runs in minutes.
inline scenario::ScenarioParams bench_params() {
  scenario::ScenarioParams p;
  p.seed = 20170205;  // first day of the paper's measurement window
  p.topology.num_tier1 = 5;
  p.topology.num_transit = 30;
  p.topology.num_isp = 130;
  p.topology.num_hosting = 85;
  p.topology.num_content = 40;
  p.topology.num_other = 130;
  p.ixp.member_count = 250;
  p.num_collectors = 9;
  p.feeders_per_collector = 14;
  p.ark.num_traces = 20000;
  p.workload.regular_flows = 300'000;
  p.workload.nat_leak_flows = 2'000;
  p.workload.background_noise_flows = 2'400;
  p.workload.random_spoof_events = 30;
  p.workload.flood_flows_mean = 150;
  p.workload.flood_flows_cap = 2'000;
  p.workload.ntp_campaigns = 14;
  p.workload.ntp_flows_mean = 350;
  p.workload.ntp_flows_cap = 3'000;
  p.workload.ntp_server_pool = 1'200;
  p.workload.steam_flood_events = 4;
  p.workload.steam_flows_cap = 1'000;
  p.workload.router_stray_flows = 2'600;
  p.workload.uncommon_setup_flows_per_member = 250;
  return p;
}

/// The shared world, built once per binary.
inline const scenario::Scenario& world() {
  static const std::unique_ptr<scenario::Scenario> w =
      scenario::build_scenario(bench_params());
  return *w;
}

/// Section header for the reproduction output.
inline void print_header(const char* artifact, const char* paper_summary) {
  std::cout << "\n================================================================\n"
            << "Reproduction of " << artifact << "\n"
            << "Paper reports: " << paper_summary << "\n"
            << "Scenario: " << world().topology().as_count() << " ASes, "
            << world().ixp().member_count() << " members, "
            << world().trace().flows.size() << " sampled flows, seed "
            << world().params().seed << "\n"
            << "================================================================\n";
}

}  // namespace spoofscope::bench

/// Standard bench main: timers first, reproduction output second.
#define SPOOFSCOPE_BENCH_MAIN(print_fn)                       \
  int main(int argc, char** argv) {                           \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    print_fn();                                               \
    return 0;                                                 \
  }
