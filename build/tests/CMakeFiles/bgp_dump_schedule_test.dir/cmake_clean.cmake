file(REMOVE_RECURSE
  "CMakeFiles/bgp_dump_schedule_test.dir/bgp_dump_schedule_test.cpp.o"
  "CMakeFiles/bgp_dump_schedule_test.dir/bgp_dump_schedule_test.cpp.o.d"
  "bgp_dump_schedule_test"
  "bgp_dump_schedule_test.pdb"
  "bgp_dump_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_dump_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
