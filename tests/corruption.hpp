// Deterministic corruption injectors for the robustness suites: every
// corruptor is a pure function of (input bytes, Rng state), so a given
// seed always damages the same artifact the same way and failures
// reproduce exactly.
//
// Byte-level corruptors serve the binary trace format; line-level ones
// serve the text formats (MRT-lite, RPSL), where the record boundary is
// the line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace spoofscope::testing {

// ---------------------------------------------------------------- bytes

/// Cuts the tail at a position in [min_keep, size-1]: always removes at
/// least one byte so strict readers must notice.
inline std::string truncate_bytes(const std::string& data, util::Rng& rng,
                                  std::size_t min_keep = 0) {
  if (data.size() <= min_keep) return data;
  const std::size_t keep = min_keep + rng.index(data.size() - min_keep);
  return data.substr(0, keep);
}

/// Flips `flips` random bits at offsets >= lo (use lo to confine damage
/// to the record region).
inline std::string flip_bits(const std::string& data, util::Rng& rng,
                             int flips, std::size_t lo = 0) {
  std::string out = data;
  if (out.size() <= lo) return out;
  for (int i = 0; i < flips; ++i) {
    const std::size_t pos = lo + rng.index(out.size() - lo);
    out[pos] = static_cast<char>(out[pos] ^ (1u << rng.index(8)));
  }
  return out;
}

/// Removes one whole record from a fixed-size-record stream.
inline std::string drop_fixed_record(const std::string& data, util::Rng& rng,
                                     std::size_t header_size,
                                     std::size_t record_size) {
  if (data.size() < header_size + record_size) return data;
  const std::size_t n = (data.size() - header_size) / record_size;
  const std::size_t i = rng.index(n);
  std::string out = data;
  out.erase(header_size + i * record_size, record_size);
  return out;
}

/// Duplicates one whole record in place.
inline std::string duplicate_fixed_record(const std::string& data,
                                          util::Rng& rng,
                                          std::size_t header_size,
                                          std::size_t record_size) {
  if (data.size() < header_size + record_size) return data;
  const std::size_t n = (data.size() - header_size) / record_size;
  const std::size_t i = rng.index(n);
  const std::size_t at = header_size + i * record_size;
  std::string out = data;
  out.insert(at, data.substr(at, record_size));
  return out;
}

/// Inserts 1..max_len random bytes at an offset in [lo, size-1] — i.e.
/// strictly inside the stream, so readers must cope with the misalignment
/// (a splice appended after the last record would be invisible).
inline std::string splice_garbage(const std::string& data, util::Rng& rng,
                                  std::size_t lo, std::size_t max_len = 64) {
  if (data.size() <= lo) return data;
  const std::size_t pos = lo + rng.index(data.size() - lo);
  const std::size_t len = 1 + rng.index(max_len);
  std::string garbage;
  garbage.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    garbage.push_back(static_cast<char>(rng.uniform_u32(0, 255)));
  }
  std::string out = data;
  out.insert(pos, garbage);
  return out;
}

// ---------------------------------------------------------------- lines

inline std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < text.size()) lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

inline std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Deletes one random line.
inline std::string drop_line(const std::string& text, util::Rng& rng) {
  auto lines = split_lines(text);
  if (lines.empty()) return text;
  lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(rng.index(lines.size())));
  return join_lines(lines);
}

/// Duplicates one random line in place.
inline std::string duplicate_line(const std::string& text, util::Rng& rng) {
  auto lines = split_lines(text);
  if (lines.empty()) return text;
  const std::size_t i = rng.index(lines.size());
  lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
  return join_lines(lines);
}

/// Applies `edits` random printable-character overwrites/inserts/erases
/// inside one random line (newlines are never touched, so the line
/// structure is preserved and damage stays within one record).
inline std::string mutate_line(const std::string& text, util::Rng& rng,
                               int edits = 3) {
  auto lines = split_lines(text);
  if (lines.empty()) return text;
  std::string& line = lines[rng.index(lines.size())];
  for (int e = 0; e < edits; ++e) {
    if (line.empty()) {
      line.push_back(static_cast<char>(rng.uniform_u32(33, 126)));
      continue;
    }
    const std::size_t pos = rng.index(line.size());
    switch (rng.index(3)) {
      case 0:
        line[pos] = static_cast<char>(rng.uniform_u32(32, 126));
        break;
      case 1:
        line.erase(pos, 1);
        break;
      default:
        line.insert(pos, 1, static_cast<char>(rng.uniform_u32(32, 126)));
    }
  }
  return join_lines(lines);
}

/// Cuts the text at a random byte (possibly mid-line).
inline std::string truncate_text(const std::string& text, util::Rng& rng) {
  return truncate_bytes(text, rng, 0);
}

/// Splices a line of random printable garbage between two records.
inline std::string splice_garbage_line(const std::string& text,
                                       util::Rng& rng,
                                       std::size_t max_len = 40) {
  auto lines = split_lines(text);
  std::string garbage;
  const std::size_t len = 1 + rng.index(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    garbage.push_back(static_cast<char>(rng.uniform_u32(33, 126)));
  }
  const std::size_t at = lines.empty() ? 0 : rng.index(lines.size() + 1);
  lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at), garbage);
  return join_lines(lines);
}

}  // namespace spoofscope::testing
