file(REMOVE_RECURSE
  "CMakeFiles/bench_sec22_survey.dir/bench_sec22_survey.cpp.o"
  "CMakeFiles/bench_sec22_survey.dir/bench_sec22_survey.cpp.o.d"
  "bench_sec22_survey"
  "bench_sec22_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec22_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
