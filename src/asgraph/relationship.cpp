#include "asgraph/relationship.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace spoofscope::asgraph {

namespace {

using DegreeMap = std::unordered_map<Asn, std::size_t>;

DegreeMap undirected_degrees(const bgp::RoutingTable& table) {
  std::set<std::pair<Asn, Asn>> und;
  for (const auto& [l, r] : table.edges()) {
    und.emplace(std::min(l, r), std::max(l, r));
  }
  DegreeMap deg;
  for (const auto& [a, b] : und) {
    ++deg[a];
    ++deg[b];
  }
  return deg;
}

std::set<std::pair<Asn, Asn>> undirected_edges(const bgp::RoutingTable& table) {
  std::set<std::pair<Asn, Asn>> und;
  for (const auto& [l, r] : table.edges()) {
    und.emplace(std::min(l, r), std::max(l, r));
  }
  return und;
}

std::vector<Asn> clique_from(const DegreeMap& deg,
                             const std::set<std::pair<Asn, Asn>>& edges,
                             std::size_t max_size) {
  std::vector<std::pair<std::size_t, Asn>> ranked;
  ranked.reserve(deg.size());
  for (const auto& [asn, d] : deg) ranked.emplace_back(d, asn);
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;  // deterministic tiebreak
  });

  const auto connected = [&](Asn a, Asn b) {
    return edges.count({std::min(a, b), std::max(a, b)}) > 0;
  };

  std::vector<Asn> clique;
  for (const auto& [d, asn] : ranked) {
    if (clique.size() >= max_size) break;
    bool ok = true;
    for (const Asn m : clique) {
      if (!connected(asn, m)) {
        ok = false;
        break;
      }
    }
    if (ok) clique.push_back(asn);
  }
  std::sort(clique.begin(), clique.end());
  return clique;
}

}  // namespace

std::vector<Asn> infer_clique(const bgp::RoutingTable& table, std::size_t max_size) {
  const auto deg = undirected_degrees(table);
  const auto und = undirected_edges(table);
  return clique_from(deg, und, max_size);
}

std::vector<InferredLink> infer_relationships(const bgp::RoutingTable& table,
                                              const RelationshipOptions& options) {
  const DegreeMap deg = undirected_degrees(table);
  const auto und = undirected_edges(table);
  const auto clique = clique_from(deg, und, options.clique_size);
  const auto in_clique = [&](Asn a) {
    return std::binary_search(clique.begin(), clique.end(), a);
  };

  // Rank used to find the "top" of each path: clique members dominate,
  // then degree, then (deterministically) the ASN.
  const auto rank = [&](Asn a) {
    const auto it = deg.find(a);
    const std::size_t d = it == deg.end() ? 0 : it->second;
    return std::tuple(in_clique(a) ? 1 : 0, d, ~a);
  };

  // Vote on every adjacent pair of every distinct observed path.
  // key: (min, max) -> votes where .first counts "min is customer of max".
  std::map<std::pair<Asn, Asn>, std::pair<std::size_t, std::size_t>> votes;
  const auto vote = [&](Asn customer, Asn provider) {
    const auto key = std::make_pair(std::min(customer, provider),
                                    std::max(customer, provider));
    auto& v = votes[key];
    (customer < provider ? v.first : v.second) += 1;
  };

  for (const auto& path : table.paths()) {
    const auto& hops = path.hops();
    if (hops.size() < 2) continue;
    // Position of the highest-ranked AS (the path's "top").
    std::size_t top = 0;
    for (std::size_t i = 1; i < hops.size(); ++i) {
      if (rank(hops[i]) > rank(hops[top])) top = i;
    }
    // Path layout: hops[0] is observer-side, hops.back() is the origin.
    // From the origin up to the top the announcement climbs
    // customer->provider; from the top towards the observer it descends.
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      const Asn left = hops[i];
      const Asn right = hops[i + 1];
      if (left == right) continue;  // prepending
      if (i + 1 <= top) {
        vote(/*customer=*/left, /*provider=*/right);   // descending side
      } else {
        vote(/*customer=*/right, /*provider=*/left);   // ascending side
      }
    }
  }

  std::vector<InferredLink> out;
  out.reserve(votes.size());
  for (const auto& [key, v] : votes) {
    const auto [lo, hi] = key;
    InferredLink link;
    // Clique members peer with each other by construction.
    if (in_clique(lo) && in_clique(hi)) {
      link = {lo, hi, InferredRel::kP2P};
      out.push_back(link);
      continue;
    }
    const std::size_t total = v.first + v.second;
    const std::size_t minority = std::min(v.first, v.second);
    if (total > 0 &&
        static_cast<double>(minority) / static_cast<double>(total) >=
            options.peer_vote_ratio) {
      link = {lo, hi, InferredRel::kP2P};
    } else if (v.first >= v.second) {
      link = {lo, hi, InferredRel::kC2P};  // lo customer of hi
    } else {
      link = {hi, lo, InferredRel::kC2P};  // hi customer of lo
    }
    out.push_back(link);
  }
  return out;
}

}  // namespace spoofscope::asgraph
