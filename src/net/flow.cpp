#include "net/flow.hpp"

#include <cstdio>

namespace spoofscope::net {

std::string FlowRecord::str() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "t=%u %s:%u -> %s:%u %s pkts=%u bytes=%llu in=AS%u out=AS%u",
                ts, src.str().c_str(), sport, dst.str().c_str(), dport,
                proto_name(proto).c_str(), packets,
                static_cast<unsigned long long>(bytes), member_in, member_out);
  return buf;
}

}  // namespace spoofscope::net
