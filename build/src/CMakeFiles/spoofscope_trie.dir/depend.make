# Empty dependencies file for spoofscope_trie.
# This may be replaced when dependencies are built.
