// IPFIX-lite flow summaries — the unit of observation at the vantage point.
//
// The IXP's monitoring samples packets at random 1-out-of-N and aggregates
// them into flow summaries carrying IP/transport headers plus packet and
// byte counts. A FlowRecord stores the *sampled* counts; extrapolation by
// the sampling factor happens in the analysis layer.
#pragma once

#include <cstdint>
#include <string>

#include "net/ipv4.hpp"
#include "net/protocols.hpp"

namespace spoofscope::net {

/// AS numbers are 32-bit (we only simulate 16-bit-range values, but the
/// type matches reality).
using Asn = std::uint32_t;

/// Sentinel for "no AS" (e.g. unknown origin).
inline constexpr Asn kNoAsn = 0;

/// One sampled flow summary as exported by the IXP monitoring.
struct FlowRecord {
  std::uint32_t ts = 0;       ///< seconds since measurement window start
  Ipv4Addr src;               ///< source IP address (possibly spoofed)
  Ipv4Addr dst;               ///< destination IP address
  Proto proto = Proto::kTcp;  ///< transport protocol
  std::uint16_t sport = 0;    ///< source port (0 for ICMP)
  std::uint16_t dport = 0;    ///< destination port (0 for ICMP)
  std::uint32_t packets = 0;  ///< sampled packet count
  std::uint64_t bytes = 0;    ///< sampled byte count
  Asn member_in = kNoAsn;     ///< member AS that injected the flow
  Asn member_out = kNoAsn;    ///< member AS that received the flow

  /// Mean packet size of the flow in bytes (0 if no packets).
  double mean_packet_size() const {
    return packets == 0 ? 0.0 : static_cast<double>(bytes) / packets;
  }

  /// Human-readable one-line form for debugging.
  std::string str() const;

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

/// Duration constants for the measurement window (the paper uses 4 weeks).
inline constexpr std::uint32_t kSecondsPerDay = 86400;
inline constexpr std::uint32_t kSecondsPerWeek = 7 * kSecondsPerDay;
inline constexpr std::uint32_t kFourWeeks = 4 * kSecondsPerWeek;

}  // namespace spoofscope::net
