file(REMOVE_RECURSE
  "CMakeFiles/bgp_simulator_test.dir/bgp_simulator_test.cpp.o"
  "CMakeFiles/bgp_simulator_test.dir/bgp_simulator_test.cpp.o.d"
  "bgp_simulator_test"
  "bgp_simulator_test.pdb"
  "bgp_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
