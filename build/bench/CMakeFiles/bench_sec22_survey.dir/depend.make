# Empty dependencies file for bench_sec22_survey.
# This may be replaced when dependencies are built.
