file(REMOVE_RECURSE
  "CMakeFiles/trie_prefix_set_test.dir/trie_prefix_set_test.cpp.o"
  "CMakeFiles/trie_prefix_set_test.dir/trie_prefix_set_test.cpp.o.d"
  "trie_prefix_set_test"
  "trie_prefix_set_test.pdb"
  "trie_prefix_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trie_prefix_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
