#include "asgraph/customer_cone.hpp"

namespace spoofscope::asgraph {

namespace {

AsGraph p2c_graph(std::span<const InferredLink> links) {
  std::vector<Asn> nodes;
  std::vector<std::pair<Asn, Asn>> edges;
  for (const auto& l : links) {
    nodes.push_back(l.a);
    nodes.push_back(l.b);
    if (l.rel == InferredRel::kC2P) {
      edges.emplace_back(l.b, l.a);  // provider -> customer
    }
  }
  return AsGraph(std::move(nodes), std::move(edges));
}

}  // namespace

CustomerCone::CustomerCone(std::span<const InferredLink> links)
    : graph_(p2c_graph(links)), desc_(graph_) {}

bool CustomerCone::in_cone(Asn holder, Asn origin) const {
  if (holder == origin) return true;
  const auto h = graph_.index_of(holder);
  const auto o = graph_.index_of(origin);
  if (!h || !o) return false;
  return desc_.reaches(*h, *o);
}

std::vector<Asn> CustomerCone::cone_of(Asn holder) const {
  const auto h = graph_.index_of(holder);
  if (!h) return {};
  std::vector<Asn> out;
  for (const std::uint32_t idx : desc_.descendants(*h)) {
    out.push_back(graph_.asn_at(idx));
  }
  return out;
}

std::size_t CustomerCone::cone_size(Asn holder) const {
  const auto h = graph_.index_of(holder);
  return h ? desc_.descendant_count(*h) : 0;
}

}  // namespace spoofscope::asgraph
