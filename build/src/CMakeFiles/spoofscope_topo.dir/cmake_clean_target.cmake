file(REMOVE_RECURSE
  "libspoofscope_topo.a"
)
