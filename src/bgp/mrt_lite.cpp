#include "bgp/mrt_lite.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace spoofscope::bgp {

namespace {

[[noreturn]] void fail(std::string_view line, const std::string& why) {
  throw std::runtime_error("MRT-lite parse error: " + why + " in line: " +
                           std::string(line));
}

std::uint32_t parse_ts(std::string_view line, std::string_view tok) {
  std::uint32_t ts;
  if (!util::parse_u32(tok, ts)) fail(line, "bad timestamp");
  return ts;
}

Asn parse_peer(std::string_view line, std::string_view tok) {
  std::uint32_t asn;
  if (!util::parse_u32(tok, asn) || asn == net::kNoAsn) fail(line, "bad peer ASN");
  return asn;
}

net::Prefix parse_prefix(std::string_view line, std::string_view tok) {
  const auto p = net::Prefix::parse(tok);
  if (!p) fail(line, "bad prefix");
  return *p;
}

AsPath parse_path(std::string_view line, std::string_view tok) {
  const auto p = AsPath::parse(tok);
  if (!p || p->empty()) fail(line, "bad AS path");
  return *p;
}

}  // namespace

std::string to_mrt_line(const RibEntry& e) {
  return "TABLE_DUMP|" + std::to_string(e.timestamp) + "|" +
         std::to_string(e.peer) + "|" + e.prefix.str() + "|" + e.path.str();
}

std::string to_mrt_line(const UpdateMessage& u) {
  std::string out = "UPDATE|";
  out += (u.kind == UpdateMessage::Kind::kAnnounce) ? "A" : "W";
  out += "|" + std::to_string(u.timestamp) + "|" + std::to_string(u.peer) +
         "|" + u.prefix.str();
  if (u.kind == UpdateMessage::Kind::kAnnounce) out += "|" + u.path.str();
  return out;
}

MrtRecord parse_mrt_line(std::string_view line) {
  const auto fields = util::split(line, '|');
  if (fields.empty()) fail(line, "empty record");

  if (fields[0] == "TABLE_DUMP") {
    if (fields.size() != 5) fail(line, "TABLE_DUMP needs 5 fields");
    RibEntry e;
    e.timestamp = parse_ts(line, fields[1]);
    e.peer = parse_peer(line, fields[2]);
    e.prefix = parse_prefix(line, fields[3]);
    e.path = parse_path(line, fields[4]);
    return e;
  }

  if (fields[0] == "UPDATE") {
    if (fields.size() < 2) fail(line, "UPDATE needs a kind field");
    UpdateMessage u;
    if (fields[1] == "A") {
      if (fields.size() != 6) fail(line, "UPDATE|A needs 6 fields");
      u.kind = UpdateMessage::Kind::kAnnounce;
      u.timestamp = parse_ts(line, fields[2]);
      u.peer = parse_peer(line, fields[3]);
      u.prefix = parse_prefix(line, fields[4]);
      u.path = parse_path(line, fields[5]);
    } else if (fields[1] == "W") {
      if (fields.size() != 5) fail(line, "UPDATE|W needs 5 fields");
      u.kind = UpdateMessage::Kind::kWithdraw;
      u.timestamp = parse_ts(line, fields[2]);
      u.peer = parse_peer(line, fields[3]);
      u.prefix = parse_prefix(line, fields[4]);
    } else {
      fail(line, "unknown UPDATE kind");
    }
    return u;
  }

  fail(line, "unknown record type");
}

void write_mrt(std::ostream& out, const std::vector<MrtRecord>& records) {
  for (const auto& r : records) {
    std::visit([&](const auto& rec) { out << to_mrt_line(rec) << '\n'; }, r);
  }
}

std::vector<MrtRecord> read_mrt(std::istream& in) {
  return read_mrt(in, util::ErrorPolicy::kStrict, nullptr);
}

std::vector<MrtRecord> read_mrt(std::istream& in, util::ErrorPolicy policy,
                                util::IngestStats* stats) {
  util::IngestStats local;
  if (!stats) stats = &local;
  std::vector<MrtRecord> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    try {
      out.push_back(parse_mrt_line(trimmed));
      stats->ok();
    } catch (const std::runtime_error& e) {
      if (policy == util::ErrorPolicy::kStrict) {
        throw std::runtime_error(std::string(e.what()) + " (line " +
                                 std::to_string(lineno) + ")");
      }
      stats->skip(util::ErrorKind::kParse, trimmed.size());
    }
  }
  return out;
}

}  // namespace spoofscope::bgp
