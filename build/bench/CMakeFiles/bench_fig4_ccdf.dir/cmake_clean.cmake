file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ccdf.dir/bench_fig4_ccdf.cpp.o"
  "CMakeFiles/bench_fig4_ccdf.dir/bench_fig4_ccdf.cpp.o.d"
  "bench_fig4_ccdf"
  "bench_fig4_ccdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ccdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
