// Member is a plain aggregate; behaviour lives in ixp.cpp.
#include "ixp/member.hpp"
