file(REMOVE_RECURSE
  "libspoofscope_ixp.a"
)
