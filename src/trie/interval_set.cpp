#include "trie/interval_set.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace spoofscope::trie {

namespace {

/// Merges a sorted-by-lo interval list in place (overlapping or adjacent
/// ranges collapse).
void normalize_sorted(std::vector<Interval>& ivs) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    if (out == 0) {
      ivs[out++] = ivs[i];
      continue;
    }
    Interval& last = ivs[out - 1];
    // adjacent (hi+1 == lo) also merges; watch for hi == UINT32_MAX
    if (ivs[i].lo <= last.hi || (last.hi != ~0u && ivs[i].lo == last.hi + 1)) {
      last.hi = std::max(last.hi, ivs[i].hi);
    } else {
      ivs[out++] = ivs[i];
    }
  }
  ivs.resize(out);
}

}  // namespace

IntervalSet IntervalSet::from_intervals(std::vector<Interval> ivs) {
  for ([[maybe_unused]] const auto& iv : ivs) assert(iv.lo <= iv.hi);
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  normalize_sorted(ivs);
  IntervalSet s;
  s.ivs_ = std::move(ivs);
  return s;
}

IntervalSet IntervalSet::from_prefixes(std::span<const net::Prefix> ps) {
  std::vector<Interval> ivs;
  ivs.reserve(ps.size());
  for (const auto& p : ps) ivs.push_back({p.first(), p.last()});
  return from_intervals(std::move(ivs));
}

void IntervalSet::add(std::uint32_t lo, std::uint32_t hi) {
  assert(lo <= hi);
  // Find first interval whose hi >= lo-1 (candidate for merge).
  auto it = std::lower_bound(
      ivs_.begin(), ivs_.end(), lo,
      [](const Interval& iv, std::uint32_t v) {
        return iv.hi < (v == 0 ? v : v - 1);
      });
  Interval merged{lo, hi};
  auto erase_begin = it;
  while (it != ivs_.end() &&
         (it->lo <= hi || (hi != ~0u && it->lo == hi + 1))) {
    merged.lo = std::min(merged.lo, it->lo);
    merged.hi = std::max(merged.hi, it->hi);
    ++it;
  }
  it = ivs_.erase(erase_begin, it);
  ivs_.insert(it, merged);
}

bool IntervalSet::contains(net::Ipv4Addr a) const {
  const std::uint32_t v = a.value();
  auto it = std::upper_bound(
      ivs_.begin(), ivs_.end(), v,
      [](std::uint32_t x, const Interval& iv) { return x < iv.lo; });
  if (it == ivs_.begin()) return false;
  --it;
  return v >= it->lo && v <= it->hi;
}

bool IntervalSet::contains_range(std::uint32_t lo, std::uint32_t hi) const {
  auto it = std::upper_bound(
      ivs_.begin(), ivs_.end(), lo,
      [](std::uint32_t x, const Interval& iv) { return x < iv.lo; });
  if (it == ivs_.begin()) return false;
  --it;
  return lo >= it->lo && hi <= it->hi;
}

bool IntervalSet::intersects_range(std::uint32_t lo, std::uint32_t hi) const {
  // First interval that ends at or after lo; it intersects iff it starts
  // at or before hi.
  auto it = std::lower_bound(
      ivs_.begin(), ivs_.end(), lo,
      [](const Interval& iv, std::uint32_t v) { return iv.hi < v; });
  return it != ivs_.end() && it->lo <= hi;
}

std::uint64_t IntervalSet::address_count() const {
  std::uint64_t n = 0;
  for (const auto& iv : ivs_) {
    n += std::uint64_t(iv.hi) - iv.lo + 1;
  }
  return n;
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  std::vector<Interval> all;
  all.reserve(ivs_.size() + other.ivs_.size());
  all.insert(all.end(), ivs_.begin(), ivs_.end());
  all.insert(all.end(), other.ivs_.begin(), other.ivs_.end());
  return from_intervals(std::move(all));
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < ivs_.size() && j < other.ivs_.size()) {
    const Interval& a = ivs_[i];
    const Interval& b = other.ivs_[j];
    const std::uint32_t lo = std::max(a.lo, b.lo);
    const std::uint32_t hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.push_back({lo, hi});
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  IntervalSet s;
  s.ivs_ = std::move(out);  // already sorted/disjoint by construction
  return s;
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  std::vector<Interval> out;
  std::size_t j = 0;
  for (const auto& a : ivs_) {
    std::uint32_t cur = a.lo;
    bool open = true;
    while (j < other.ivs_.size() && other.ivs_[j].hi < cur) ++j;
    std::size_t k = j;
    while (open && k < other.ivs_.size() && other.ivs_[k].lo <= a.hi) {
      const Interval& b = other.ivs_[k];
      if (b.lo > cur) out.push_back({cur, b.lo - 1});
      if (b.hi >= a.hi) {
        open = false;
      } else {
        cur = b.hi + 1;
      }
      ++k;
    }
    if (open && cur <= a.hi) out.push_back({cur, a.hi});
  }
  IntervalSet s;
  s.ivs_ = std::move(out);
  return s;
}

std::vector<net::Prefix> IntervalSet::to_prefixes() const {
  std::vector<net::Prefix> out;
  for (const auto& iv : ivs_) {
    std::uint64_t lo = iv.lo;
    const std::uint64_t end = std::uint64_t(iv.hi) + 1;
    while (lo < end) {
      // Largest aligned block starting at lo that fits in [lo, end).
      const int align = lo == 0 ? 32 : std::countr_zero(static_cast<std::uint32_t>(lo));
      const std::uint64_t remaining = end - lo;
      int size_bits = 0;
      while (size_bits < 32 && (std::uint64_t(1) << (size_bits + 1)) <= remaining) {
        ++size_bits;
      }
      const int block_bits = std::min(align, size_bits);
      out.emplace_back(net::Ipv4Addr(static_cast<std::uint32_t>(lo)),
                       static_cast<std::uint8_t>(32 - block_bits));
      lo += std::uint64_t(1) << block_bits;
    }
  }
  return out;
}

}  // namespace spoofscope::trie
