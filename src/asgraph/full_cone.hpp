// Transitive-closure cones over directed AS graphs.
//
// DescendantSets is the shared engine: SCC condensation followed by a
// reverse-topological bitset sweep, giving "is origin in the cone of
// holder" in O(1). FullCone is the paper's most conservative inference
// (Sec 3.2): the cone of an AS is everything reachable in the observed
// left-upstream-of-right graph.
#pragma once

#include <cstdint>
#include <vector>

#include "asgraph/graph.hpp"
#include "asgraph/scc.hpp"

namespace spoofscope::asgraph {

/// Reachability ("descendants including self") for every node of a
/// directed graph, SCC-aware.
class DescendantSets {
 public:
  explicit DescendantSets(const AsGraph& g);

  /// True if `to` is reachable from `from` (or from == to).
  bool reaches(std::size_t from, std::size_t to) const;

  /// Number of nodes reachable from `from` (including itself).
  std::size_t descendant_count(std::size_t from) const;

  /// Dense indices of all nodes reachable from `from` (including itself).
  std::vector<std::uint32_t> descendants(std::size_t from) const;

  std::size_t node_count() const { return scc_.component_of.size(); }

  const SccResult& scc() const { return scc_; }

 private:
  std::size_t words_per_row_ = 0;
  SccResult scc_;
  std::vector<std::uint64_t> bits_;  // component_count rows, component bits
  std::vector<std::size_t> comp_reach_count_;  // reachable *nodes* per comp

  const std::uint64_t* row(std::uint32_t comp) const {
    return bits_.data() + comp * words_per_row_;
  }
};

/// The Full Cone (Sec 3.2): for each AS observed in BGP, the set of ASes
/// whose prefixes it may legitimately source.
class FullCone {
 public:
  /// Takes ownership of the graph (cones keep it alive).
  explicit FullCone(AsGraph g) : graph_(std::move(g)), desc_(graph_) {}

  /// True if `origin` is in the cone of `holder`. ASes not in the graph
  /// have an empty cone (always false), except holder == origin.
  bool in_cone(Asn holder, Asn origin) const;

  /// All ASNs in the cone of `holder` (includes `holder` itself when the
  /// AS is known; empty otherwise).
  std::vector<Asn> cone_of(Asn holder) const;

  /// Cone size in number of ASes (0 for unknown holders).
  std::size_t cone_size(Asn holder) const;

  const AsGraph& graph() const { return graph_; }

 private:
  AsGraph graph_;
  DescendantSets desc_;
};

}  // namespace spoofscope::asgraph
