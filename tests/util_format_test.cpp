#include "util/format.hpp"

#include <gtest/gtest.h>

namespace spoofscope::util {
namespace {

TEST(HumanCount, SmallValuesPlain) {
  EXPECT_EQ(human_count(0), "0");
  EXPECT_EQ(human_count(999), "999");
}

TEST(HumanCount, ScalesWithSuffix) {
  EXPECT_EQ(human_count(1234), "1.23K");
  EXPECT_EQ(human_count(2.0e12), "2.00T");
  EXPECT_EQ(human_count(3.05e15), "3.05P");
}

TEST(HumanBytes, SuffixB) {
  EXPECT_EQ(human_bytes(500), "500B");
  EXPECT_EQ(human_bytes(92.65e12), "92.65TB");
}

TEST(Percent, AdaptivePrecision) {
  EXPECT_EQ(percent(0.0129), "1.29%");
  EXPECT_EQ(percent(0.0), "0.00%");
  EXPECT_EQ(percent(0.0000310), "0.0031%");
}

TEST(Percent, TinyValuesScientific) {
  const std::string s = percent(3.1e-7);
  EXPECT_NE(s.find("e-05"), std::string::npos);
}

TEST(Fixed, Digits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

}  // namespace
}  // namespace spoofscope::util
