// Synthetic stand-in for the CAIDA Spoofer project's crowd-sourced active
// measurements (Sec 4.5): probes inside a subset of ASes send packets
// with forged sources to a measurement server; if any arrive, the AS is
// "spoofable". Receipt depends on the host AS's egress filtering and on
// any filtering applied along the path.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace spoofscope::data {

struct SpooferParams {
  /// Fraction of ASes hosting at least one Spoofer probe (the paper found
  /// overlapping data for only 8% of the IXP members).
  double probe_coverage = 0.15;
  /// Probability that on-path ingress filtering drops the probe even
  /// though the host AS lets it out (active measurements are a lower
  /// bound on spoofability, Sec 4.5).
  double on_path_filter_prob = 0.2;
  /// Probability the probe sits behind a NAT, which excludes the test
  /// from the direct-measurement dataset (footnote 5).
  double behind_nat_prob = 0.3;
};

/// One AS's aggregated Spoofer test outcome.
struct SpooferRecord {
  net::Asn asn = net::kNoAsn;
  bool spoofable = false;  ///< some spoofed probe packet was received
};

/// Runs the campaign. Only ASes with probes (and not behind NAT) yield
/// records. Deterministic in (topology, params, seed).
std::vector<SpooferRecord> run_spoofer_campaign(const topo::Topology& topo,
                                                const SpooferParams& params,
                                                std::uint64_t seed);

}  // namespace spoofscope::data
