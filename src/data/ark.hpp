// Synthetic stand-in for the CAIDA Ark traceroute dataset (Sec 5.2).
//
// The paper extracts router interface IP addresses from ~500M traceroutes
// and tags Invalid traffic sourced from such addresses as stray (router)
// traffic. We run traceroute campaigns across the simulated topology:
// each traceroute walks a valley-free AS route and records the interface
// addresses of the routers on the inter-AS links it crosses (drawn from
// the links' infra /24s).
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "topo/topology.hpp"

namespace spoofscope::data {

struct ArkParams {
  /// Number of (source AS, destination AS) traceroutes to run.
  std::size_t num_traces = 50000;
  /// Interface addresses per crossed link that respond (near + far end).
  int interfaces_per_link = 2;
};

/// The extracted router interface address set.
class ArkDataset {
 public:
  explicit ArkDataset(std::vector<std::uint32_t> router_ips,
                      std::size_t traces_run);

  /// True if `a` was observed as a router interface address.
  bool is_router_ip(net::Ipv4Addr a) const;

  /// Number of distinct router addresses discovered.
  std::size_t router_ip_count() const { return ips_.size(); }

  std::size_t traces_run() const { return traces_run_; }

  const std::vector<std::uint32_t>& router_ips() const { return ips_; }

 private:
  std::vector<std::uint32_t> ips_;  // sorted, deduplicated
  std::size_t traces_run_ = 0;
};

/// Deterministic interface address of router `side` (0 = customer end,
/// 1 = provider end) on a link with infra prefix `infra`. Shared between
/// the Ark campaign and the stray-traffic generator so they agree on what
/// a router address is.
net::Ipv4Addr link_interface_address(const net::Prefix& infra, int side);

/// Runs a traceroute campaign over the topology. Routes follow the
/// customer->provider hierarchy up from the source and down to the
/// destination; every crossed c2p link contributes its interface
/// addresses. Deterministic in (topology, params, seed).
ArkDataset run_ark_campaign(const topo::Topology& topo, const ArkParams& params,
                            std::uint64_t seed);

}  // namespace spoofscope::data
