#include "net/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace spoofscope::net {
namespace {

FlowRecord make_flow(util::Rng& rng) {
  FlowRecord f;
  f.ts = rng.uniform_u32(0, kFourWeeks);
  f.src = Ipv4Addr(rng.next_u32());
  f.dst = Ipv4Addr(rng.next_u32());
  f.proto = rng.chance(0.5) ? Proto::kTcp : Proto::kUdp;
  f.sport = static_cast<std::uint16_t>(rng.uniform_u32(0, 65535));
  f.dport = static_cast<std::uint16_t>(rng.uniform_u32(0, 65535));
  f.packets = rng.uniform_u32(1, 1000);
  f.bytes = rng.uniform_u64(40, 1500ull * 1000);
  f.member_in = rng.uniform_u32(1, 65535);
  f.member_out = rng.uniform_u32(1, 65535);
  return f;
}

TEST(Trace, RoundTripEmpty) {
  Trace t;
  t.meta.sampling_rate = 10000;
  t.meta.seed = 99;
  std::stringstream ss;
  write_trace(ss, t);
  const Trace r = read_trace(ss);
  EXPECT_EQ(r.meta, t.meta);
  EXPECT_TRUE(r.flows.empty());
}

TEST(Trace, RoundTripRandomFlows) {
  util::Rng rng(7);
  Trace t;
  t.meta.sampling_rate = 1000;
  t.meta.window_seconds = kFourWeeks;
  t.meta.seed = 1234567;
  for (int i = 0; i < 500; ++i) t.flows.push_back(make_flow(rng));

  std::stringstream ss;
  write_trace(ss, t);
  const Trace r = read_trace(ss);
  ASSERT_EQ(r.flows.size(), t.flows.size());
  EXPECT_EQ(r.meta, t.meta);
  for (std::size_t i = 0; i < t.flows.size(); ++i) {
    EXPECT_EQ(r.flows[i], t.flows[i]) << "record " << i;
  }
}

TEST(Trace, ScaleMatchesSamplingRate) {
  Trace t;
  t.meta.sampling_rate = 10000;
  EXPECT_DOUBLE_EQ(t.scale(), 10000.0);
}

TEST(Trace, RejectsBadMagic) {
  std::stringstream ss;
  ss << "this is not a spoofscope trace at all, padding padding";
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(Trace, RejectsTruncatedHeader) {
  std::stringstream ss;
  ss << "short";
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(Trace, RejectsTruncatedRecords) {
  util::Rng rng(9);
  Trace t;
  t.flows.push_back(make_flow(rng));
  t.flows.push_back(make_flow(rng));
  std::stringstream ss;
  write_trace(ss, t);
  std::string data = ss.str();
  data.resize(data.size() - 10);  // cut into the last record
  std::stringstream truncated(data);
  EXPECT_THROW(read_trace(truncated), std::runtime_error);
}

TEST(Trace, RejectsOversizedAsn) {
  Trace t;
  FlowRecord f;
  f.member_in = 70000;  // does not fit the 16-bit record field
  t.flows.push_back(f);
  std::stringstream ss;
  EXPECT_THROW(write_trace(ss, t), std::runtime_error);
}

}  // namespace
}  // namespace spoofscope::net
