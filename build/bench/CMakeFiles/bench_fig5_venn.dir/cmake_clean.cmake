file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_venn.dir/bench_fig5_venn.cpp.o"
  "CMakeFiles/bench_fig5_venn.dir/bench_fig5_venn.cpp.o.d"
  "bench_fig5_venn"
  "bench_fig5_venn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_venn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
