
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/attacks.cpp" "src/CMakeFiles/spoofscope_traffic.dir/traffic/attacks.cpp.o" "gcc" "src/CMakeFiles/spoofscope_traffic.dir/traffic/attacks.cpp.o.d"
  "/root/repo/src/traffic/generator.cpp" "src/CMakeFiles/spoofscope_traffic.dir/traffic/generator.cpp.o" "gcc" "src/CMakeFiles/spoofscope_traffic.dir/traffic/generator.cpp.o.d"
  "/root/repo/src/traffic/regular.cpp" "src/CMakeFiles/spoofscope_traffic.dir/traffic/regular.cpp.o" "gcc" "src/CMakeFiles/spoofscope_traffic.dir/traffic/regular.cpp.o.d"
  "/root/repo/src/traffic/stray.cpp" "src/CMakeFiles/spoofscope_traffic.dir/traffic/stray.cpp.o" "gcc" "src/CMakeFiles/spoofscope_traffic.dir/traffic/stray.cpp.o.d"
  "/root/repo/src/traffic/workload.cpp" "src/CMakeFiles/spoofscope_traffic.dir/traffic/workload.cpp.o" "gcc" "src/CMakeFiles/spoofscope_traffic.dir/traffic/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_asgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
