// The paper-shape invariants must hold across seeds, not just for the
// calibrated one — otherwise the reproduction is a coincidence of one
// random world.
#include <gtest/gtest.h>

#include "analysis/traffic_char.hpp"
#include "classify/pipeline.hpp"
#include "scenario/scenario.hpp"

namespace spoofscope::scenario {
namespace {

using classify::TrafficClass;
using inference::Method;

class MultiSeedTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static ScenarioParams params_for(std::uint64_t seed) {
    auto p = ScenarioParams::small();
    p.seed = seed;
    return p;
  }
};

TEST_P(MultiSeedTest, HeadlineShapesHold) {
  const auto world = build_scenario(params_for(GetParam()));
  const auto agg = classify::aggregate_classes(
      world->classifier(), world->trace().flows, world->labels());

  const auto cell = [&](Method m, TrafficClass c) {
    return agg.totals[static_cast<std::size_t>(m)][static_cast<int>(c)];
  };

  // Bogon/Unrouted: tiny volume, broad membership.
  const auto bogon = cell(Method::kFullCone, TrafficClass::kBogon);
  const auto unrouted = cell(Method::kFullCone, TrafficClass::kUnrouted);
  EXPECT_LT(bogon.packets / agg.total_packets, 0.02);
  EXPECT_LT(unrouted.packets / agg.total_packets, 0.02);
  EXPECT_GT(static_cast<double>(bogon.members) / world->ixp().member_count(),
            0.45);
  EXPECT_GE(bogon.members, unrouted.members);

  // Method ordering on Invalid traffic.
  const auto inv = [&](Method m) {
    return cell(m, TrafficClass::kInvalid).packets;
  };
  EXPECT_LE(inv(Method::kFullCone), inv(Method::kNaive));
  EXPECT_LE(inv(Method::kFullConeOrg), inv(Method::kFullCone));
  EXPECT_LE(inv(Method::kCustomerConeOrg), inv(Method::kCustomerCone));

  // Spoofed classes are small-packet dominated.
  const auto full_idx = Scenario::space_index(Method::kFullCone);
  EXPECT_GT(analysis::small_packet_fraction(world->trace().flows,
                                            world->labels(), full_idx,
                                            TrafficClass::kUnrouted, 100.0),
            0.7);
  EXPECT_LT(analysis::small_packet_fraction(world->trace().flows,
                                            world->labels(), full_idx,
                                            TrafficClass::kValid, 100.0),
            0.7);
}

TEST_P(MultiSeedTest, ComponentsAlignWithClasses) {
  const auto world = build_scenario(params_for(GetParam() ^ 0xfeed));
  const auto& comps = world->workload().components;
  const auto& flows = world->trace().flows;
  ASSERT_EQ(comps.size(), flows.size());
  const auto full_idx = Scenario::space_index(Method::kFullCone);

  double regular_valid = 0, regular_total = 0;
  double ntp_invalid = 0, ntp_total = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto cls = classify::Classifier::unpack(world->labels()[i], full_idx);
    if (comps[i] == traffic::Component::kRegular) {
      regular_total += flows[i].packets;
      regular_valid += (cls == TrafficClass::kValid) * flows[i].packets;
    } else if (comps[i] == traffic::Component::kNtpTrigger) {
      ntp_total += flows[i].packets;
      ntp_invalid += (cls != TrafficClass::kValid) * flows[i].packets;
    }
  }
  // Regular traffic is overwhelmingly Valid; NTP triggers overwhelmingly
  // flagged.
  EXPECT_GT(regular_valid / regular_total, 0.9);
  if (ntp_total > 0) {
    EXPECT_GT(ntp_invalid / ntp_total, 0.8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSeedTest,
                         ::testing::Values(11, 1203, 777777));

}  // namespace
}  // namespace spoofscope::scenario
