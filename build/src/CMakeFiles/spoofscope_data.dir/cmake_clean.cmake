file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_data.dir/data/ark.cpp.o"
  "CMakeFiles/spoofscope_data.dir/data/ark.cpp.o.d"
  "CMakeFiles/spoofscope_data.dir/data/as2org.cpp.o"
  "CMakeFiles/spoofscope_data.dir/data/as2org.cpp.o.d"
  "CMakeFiles/spoofscope_data.dir/data/rpsl.cpp.o"
  "CMakeFiles/spoofscope_data.dir/data/rpsl.cpp.o.d"
  "CMakeFiles/spoofscope_data.dir/data/spoofer.cpp.o"
  "CMakeFiles/spoofscope_data.dir/data/spoofer.cpp.o.d"
  "CMakeFiles/spoofscope_data.dir/data/survey.cpp.o"
  "CMakeFiles/spoofscope_data.dir/data/survey.cpp.o.d"
  "CMakeFiles/spoofscope_data.dir/data/whois.cpp.o"
  "CMakeFiles/spoofscope_data.dir/data/whois.cpp.o.d"
  "libspoofscope_data.a"
  "libspoofscope_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
