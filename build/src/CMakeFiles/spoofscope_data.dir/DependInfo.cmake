
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/ark.cpp" "src/CMakeFiles/spoofscope_data.dir/data/ark.cpp.o" "gcc" "src/CMakeFiles/spoofscope_data.dir/data/ark.cpp.o.d"
  "/root/repo/src/data/as2org.cpp" "src/CMakeFiles/spoofscope_data.dir/data/as2org.cpp.o" "gcc" "src/CMakeFiles/spoofscope_data.dir/data/as2org.cpp.o.d"
  "/root/repo/src/data/rpsl.cpp" "src/CMakeFiles/spoofscope_data.dir/data/rpsl.cpp.o" "gcc" "src/CMakeFiles/spoofscope_data.dir/data/rpsl.cpp.o.d"
  "/root/repo/src/data/spoofer.cpp" "src/CMakeFiles/spoofscope_data.dir/data/spoofer.cpp.o" "gcc" "src/CMakeFiles/spoofscope_data.dir/data/spoofer.cpp.o.d"
  "/root/repo/src/data/survey.cpp" "src/CMakeFiles/spoofscope_data.dir/data/survey.cpp.o" "gcc" "src/CMakeFiles/spoofscope_data.dir/data/survey.cpp.o.d"
  "/root/repo/src/data/whois.cpp" "src/CMakeFiles/spoofscope_data.dir/data/whois.cpp.o" "gcc" "src/CMakeFiles/spoofscope_data.dir/data/whois.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_asgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
