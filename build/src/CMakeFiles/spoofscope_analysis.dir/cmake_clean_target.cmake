file(REMOVE_RECURSE
  "libspoofscope_analysis.a"
)
