# Empty compiler generated dependencies file for spoofscope_scenario.
# This may be replaced when dependencies are built.
