#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/whois.hpp"
#include "ixp/ixp.hpp"
#include "net/bogon.hpp"
#include "net/protocols.hpp"
#include "topo/generator.hpp"
#include "traffic/regular.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"

namespace spoofscope::traffic {
namespace {

struct World {
  topo::Topology topo;
  ixp::Ixp ixp;
  data::WhoisRegistry whois;
};

World make_world(std::uint64_t seed = 3) {
  topo::TopologyParams tp;
  tp.num_tier1 = 3;
  tp.num_transit = 10;
  tp.num_isp = 40;
  tp.num_hosting = 25;
  tp.num_content = 12;
  tp.num_other = 30;
  auto topo = topo::generate_topology(tp, seed);
  ixp::IxpParams ip;
  ip.member_count = 60;
  auto ixp = ixp::Ixp::build(topo, ip, seed + 1);
  auto whois = data::build_whois(topo, {}, seed + 2);
  return World{std::move(topo), std::move(ixp), std::move(whois)};
}

WorkloadParams small_params() {
  WorkloadParams p;
  p.regular_flows = 8000;
  p.nat_leak_flows = 300;
  p.background_noise_flows = 250;
  p.random_spoof_events = 6;
  p.flood_flows_mean = 50;
  p.flood_flows_cap = 300;
  p.ntp_campaigns = 4;
  p.ntp_flows_mean = 100;
  p.ntp_flows_cap = 500;
  p.ntp_server_pool = 120;
  p.steam_flood_events = 2;
  p.steam_flows_cap = 200;
  p.router_stray_flows = 400;
  p.uncommon_setup_flows_per_member = 60;
  return p;
}

TEST(Workload, Deterministic) {
  const auto w = make_world();
  const auto a = generate_workload(w.topo, w.ixp, w.whois, small_params(), 42);
  const auto b = generate_workload(w.topo, w.ixp, w.whois, small_params(), 42);
  EXPECT_EQ(a.trace.flows, b.trace.flows);
}

TEST(Workload, SortedByTimestampWithinWindow) {
  const auto w = make_world();
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, small_params(), 1);
  ASSERT_FALSE(wl.trace.flows.empty());
  for (std::size_t i = 1; i < wl.trace.flows.size(); ++i) {
    EXPECT_LE(wl.trace.flows[i - 1].ts, wl.trace.flows[i].ts);
  }
  for (const auto& f : wl.trace.flows) {
    EXPECT_LT(f.ts, small_params().window_seconds);
  }
}

TEST(Workload, SummaryMatchesFlowCount) {
  const auto w = make_world();
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, small_params(), 2);
  EXPECT_EQ(wl.summary.total(), wl.trace.flows.size());
  EXPECT_EQ(wl.summary.regular, small_params().regular_flows);
}

TEST(Workload, AllFlowsInjectedByMembers) {
  const auto w = make_world();
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, small_params(), 3);
  for (const auto& f : wl.trace.flows) {
    EXPECT_TRUE(w.ixp.is_member(f.member_in)) << f.str();
    EXPECT_TRUE(w.ixp.is_member(f.member_out)) << f.str();
    EXPECT_GT(f.packets, 0u);
    EXPECT_GT(f.bytes, 0u);
  }
}

TEST(Workload, BogonFiltersHonoured) {
  const auto w = make_world();
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, small_params(), 4);
  for (const auto& f : wl.trace.flows) {
    if (!net::is_bogon(f.src)) continue;
    const auto* as = w.topo.find(f.member_in);
    ASSERT_NE(as, nullptr);
    EXPECT_FALSE(as->filter.blocks_bogon)
        << "AS" << f.member_in << " leaked bogon despite filtering";
  }
}

TEST(Workload, SpoofFiltersHonoured) {
  const auto w = make_world();
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, small_params(), 5);
  // Members that validate egress sources must never emit sources outside
  // their ground-truth space — unless the source is a router interface
  // (stray traffic originates on the router itself, not behind the ACL).
  for (const auto& f : wl.trace.flows) {
    const auto* as = w.topo.find(f.member_in);
    if (!as->filter.blocks_spoofed) continue;
    bool router_src = false;
    for (const auto& l : w.topo.links()) {
      if (l.infra.length() == 24 && l.infra.contains(f.src)) {
        router_src = true;
        break;
      }
    }
    if (router_src) continue;
    bool legitimate = false;
    for (const auto& p : as->prefixes) legitimate |= p.contains(f.src);
    if (!legitimate) {
      // could still be (transitive) customer/sibling space — the
      // ground-truth cone a BCP38 ACL would allow.
      std::vector<net::Asn> frontier{f.member_in};
      std::set<net::Asn> seen{f.member_in};
      while (!frontier.empty() && !legitimate) {
        const net::Asn cur = frontier.back();
        frontier.pop_back();
        const auto expand = [&](net::Asn next) {
          if (!seen.insert(next).second) return;
          frontier.push_back(next);
          for (const auto& p : w.topo.find(next)->prefixes) {
            legitimate |= p.contains(f.src);
          }
        };
        for (const net::Asn c : w.topo.customers_of(cur)) expand(c);
        for (const net::Asn s : w.topo.siblings_of(cur)) expand(s);
      }
    }
    if (!legitimate) {
      // ...or a ground-truth-legitimate uncommon setup: provider-assigned
      // space and space of partners across BGP-invisible links.
      for (const auto& p : w.whois.recoverable_ranges(w.topo, f.member_in)) {
        legitimate |= p.contains(f.src);
      }
      for (const auto& l : w.topo.links()) {
        if (l.visible_in_bgp) continue;
        const net::Asn partner =
            l.from == f.member_in ? l.to : (l.to == f.member_in ? l.from : 0);
        if (partner == 0) continue;
        for (const auto& p : w.topo.find(partner)->prefixes) {
          legitimate |= p.contains(f.src);
        }
      }
    }
    // NAT leaks escape BCP38 ACLs in the model (the broken CPE sits
    // behind otherwise valid space), so bogon sources are exempt here.
    if (net::is_bogon(f.src)) continue;
    EXPECT_TRUE(legitimate) << f.str();
  }
}

TEST(Workload, NtpTriggersTargetPort123) {
  const auto w = make_world();
  auto params = small_params();
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, params, 6);
  EXPECT_GT(wl.summary.ntp_trigger, 0u);
  std::size_t port123 = 0;
  for (const auto& f : wl.trace.flows) {
    if (f.proto == net::Proto::kUdp && f.dport == net::ports::kNtp) ++port123;
  }
  EXPECT_GE(port123, wl.summary.ntp_trigger);
}

TEST(Workload, NtpCampaignMetadataConsistent) {
  const auto w = make_world();
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, small_params(), 7);
  EXPECT_FALSE(wl.summary.ntp_campaigns.empty());
  for (const auto& c : wl.summary.ntp_campaigns) {
    EXPECT_TRUE(w.ixp.is_member(c.attacker_member));
    EXPECT_GT(c.amplifiers_contacted, 0u);
  }
  EXPECT_FALSE(wl.summary.ntp_amplifiers_contacted.empty());
}

TEST(Workload, NatLeaksAreRfc1918TcpAndDiurnal) {
  const auto w = make_world();
  auto params = small_params();
  params.regular_flows = 0;
  params.background_noise_flows = 0;
  params.random_spoof_events = 0;
  params.ntp_campaigns = 0;
  params.steam_flood_events = 0;
  params.router_stray_flows = 0;
  params.uncommon_setup_flows_per_member = 0;
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, params, 8);
  ASSERT_GT(wl.summary.nat_leak, 0u);
  for (const auto& f : wl.trace.flows) {
    EXPECT_TRUE(net::is_bogon(f.src)) << f.str();
    EXPECT_EQ(f.proto, net::Proto::kTcp);
    EXPECT_EQ(f.packets, 1u);
  }
}

TEST(Workload, RouterStraysIcmpDominated) {
  const auto w = make_world();
  auto params = small_params();
  params.regular_flows = 0;
  params.nat_leak_flows = 0;
  params.background_noise_flows = 0;
  params.random_spoof_events = 0;
  params.ntp_campaigns = 0;
  params.steam_flood_events = 0;
  params.uncommon_setup_flows_per_member = 0;
  params.router_stray_flows = 2000;
  params.router_stray_link_prob = 1.0;
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, params, 9);
  ASSERT_GT(wl.trace.flows.size(), 500u);
  double icmp = 0;
  for (const auto& f : wl.trace.flows) icmp += f.proto == net::Proto::kIcmp;
  EXPECT_NEAR(icmp / wl.trace.flows.size(), 0.83, 0.06);
}

TEST(Workload, SpoofedTrafficIsSmallPackets) {
  const auto w = make_world();
  const auto wl = generate_workload(w.topo, w.ixp, w.whois, small_params(), 10);
  double spoofed_small = 0, spoofed_total = 0;
  for (const auto& f : wl.trace.flows) {
    // attack-ish flows: tiny flows to HTTP/NTP/Steam or bogon sources
    const bool attackish = net::is_bogon(f.src) ||
                           (f.proto == net::Proto::kUdp &&
                            f.dport == net::ports::kNtp && f.packets <= 2);
    if (!attackish) continue;
    spoofed_total += f.packets;
    if (f.mean_packet_size() < 100.0) spoofed_small += f.packets;
  }
  ASSERT_GT(spoofed_total, 0.0);
  EXPECT_GT(spoofed_small / spoofed_total, 0.8);
}

TEST(Workload, RegularPacketSizesBimodal) {
  util::Rng rng(1);
  int small = 0, large = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto s = regular_packet_size(rng);
    EXPECT_GE(s, 40u);
    EXPECT_LE(s, 1500u);
    small += s <= 100;
    large += s >= 1200;
  }
  EXPECT_GT(small, 3000);
  EXPECT_GT(large, 4000);
  EXPECT_EQ(small + large, 10000);  // nothing in the middle
}

TEST(Workload, UncommonSetupsUsePaRanges) {
  const auto w = make_world();
  data::WhoisParams wp;
  wp.provider_assigned_prob = 1.0;
  const auto whois = data::build_whois(w.topo, wp, 20);
  auto params = small_params();
  params.regular_flows = 0;
  params.nat_leak_flows = 0;
  params.background_noise_flows = 0;
  params.random_spoof_events = 0;
  params.ntp_campaigns = 0;
  params.steam_flood_events = 0;
  params.router_stray_flows = 0;
  const auto wl = generate_workload(w.topo, w.ixp, whois, params, 11);
  ASSERT_GT(wl.summary.uncommon_setup, 0u);
  // Some flows must source provider-assigned ranges via their customer.
  bool pa_seen = false;
  for (const auto& f : wl.trace.flows) {
    for (const auto& pa : whois.provider_assigned()) {
      if (pa.customer == f.member_in && pa.range.contains(f.src)) {
        pa_seen = true;
        break;
      }
    }
    if (pa_seen) break;
  }
  EXPECT_TRUE(pa_seen);
}

}  // namespace
}  // namespace spoofscope::traffic
