#include "util/log.hpp"

#include <gtest/gtest.h>

namespace spoofscope::util {
namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must not spam stdout/stderr unless the user opts in.
  LevelGuard guard;
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, SetAndGetLevel) {
  LevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, StreamsDoNotCrashAtAnyLevel) {
  LevelGuard guard;
  for (const auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    log_debug() << "debug " << 1;
    log_info() << "info " << 2.5;
    log_warn() << "warn " << "text";
    log_error() << "error";
  }
}

TEST(Log, LogLineRespectsThreshold) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Nothing observable to assert on stderr portably; the contract is
  // simply that suppressed logging is safe and cheap.
  for (int i = 0; i < 1000; ++i) log_line(LogLevel::kError, "suppressed");
}

}  // namespace
}  // namespace spoofscope::util
