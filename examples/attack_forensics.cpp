// Attack forensics (Sec 7): isolate the spoofed traffic of a scenario and
// report the dominant attack patterns — random-spoofing floods, the NTP
// amplification campaigns with their amplifier strategies, and the
// measured amplification effect.
//
//   $ ./attack_forensics [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/attack_patterns.hpp"
#include "analysis/incidents.hpp"
#include "classify/streaming.hpp"
#include "scenario/scenario.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace spoofscope;

  scenario::ScenarioParams params = scenario::ScenarioParams::small();
  if (argc > 1) params.seed = std::strtoull(argv[1], nullptr, 10);
  const auto world = scenario::build_scenario(params);
  const auto& flows = world->trace().flows;
  const auto& labels = world->labels();
  const auto full_idx =
      scenario::Scenario::space_index(inference::Method::kFullCone);

  // Selective vs random spoofing (Fig 11a).
  const auto hist = analysis::src_per_dst_ratio(flows, labels, full_idx,
                                                /*min_sampled_packets=*/20);
  std::cout << "== Fig 11a: #srcIPs/#pkts per destination ==\n";
  static const char* kClassNames[] = {"Bogon", "Unrouted", "Invalid"};
  for (int c = 0; c < 3; ++c) {
    std::cout << "  " << util::pad_right(kClassNames[c], 9) << " ("
              << hist.destinations[c] << " dsts):";
    for (const double f : hist.fractions[c]) {
      std::cout << " " << util::fixed(f, 2);
    }
    std::cout << "\n";
  }

  // NTP amplification (Fig 11b + Sec 7 stats).
  const auto ntp = analysis::analyze_ntp(flows, labels, full_idx);
  std::cout << "\n== NTP amplification ==\n"
            << "  trigger packets: " << ntp.trigger_packets << " from "
            << ntp.distinct_victims << " victim IPs via "
            << ntp.contributing_members << " members towards "
            << ntp.amplifiers_contacted << " amplifiers\n"
            << "  top member share: " << util::percent(ntp.top_member_share)
            << " (paper: 91.94%), top-5: "
            << util::percent(ntp.top5_member_share) << " (paper: 97.86%)\n"
            << "  Invalid UDP to port 123: "
            << util::percent(ntp.invalid_udp_ntp_share) << " (paper: >90%)\n";
  std::cout << "  top victims (amplifiers, concentration):\n";
  for (const auto& v : ntp.top_victims) {
    std::cout << "    " << util::pad_right(v.victim.str(), 16) << " pkts "
              << util::pad_left(std::to_string(v.trigger_packets), 8)
              << "  amplifiers " << util::pad_left(std::to_string(v.amplifiers), 6)
              << "  gini " << util::fixed(v.concentration, 2)
              << (v.concentration < 0.3 ? "  (distributed spray)"
                                        : "  (concentrated)")
              << "\n";
  }

  // Amplification effect (Fig 11c).
  const auto ts = analysis::amplification_effect(
      flows, labels, full_idx, world->trace().meta.window_seconds);
  std::cout << "\n== Fig 11c: amplification effect ==\n"
            << "  byte amplification factor: "
            << util::fixed(ts.amplification_factor(), 1)
            << "x (paper: order of magnitude)\n"
            << "  packet ratio (response/trigger): "
            << util::fixed(ts.packet_ratio(), 2) << " (paper: ~similar)\n";

  // Incident extraction: the Sec 7 analysis as an operator-facing report.
  const auto incidents =
      analysis::extract_incidents(flows, labels, full_idx);
  std::cout << "\n== Incident report ==\n"
            << analysis::format_incidents(incidents, 8);

  // Online detection: what a live deployment at the fabric would have
  // alerted on, single pass over the same four weeks.
  classify::StreamingParams sp;
  sp.min_spoofed_packets = 30;
  sp.min_share = 0.02;
  classify::StreamingDetector detector(
      world->classifier(),
      scenario::Scenario::space_index(inference::Method::kFullConeOrg), sp);
  const auto alerts = detector.run(flows);
  std::cout << "\n== Live detection ==\n  " << alerts.size()
            << " member alerts over the window; first five:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, alerts.size()); ++i) {
    const auto& a = alerts[i];
    std::cout << "  t+" << a.ts / 3600 << "h AS" << a.member << ": "
              << classify::class_name(a.dominant_class) << "-dominated, "
              << util::human_count(a.spoofed_packets_in_window)
              << " spoofed pkts (" << util::percent(a.window_share)
              << " of the member's traffic)\n";
  }
  return 0;
}
