#include <gtest/gtest.h>

#include "classify/classifier.hpp"
#include "classify/fp_hunter.hpp"
#include "classify/pipeline.hpp"
#include "classify/router_tagger.hpp"
#include "net/prefix.hpp"
#include "util/rng.hpp"

namespace spoofscope::classify {
namespace {

using net::Ipv4Addr;
using net::pfx;

/// Routing view: 50.0/16 by AS1, 20.0/16 by AS2, path "1 2" visible so
/// AS1's full-cone-like behavior isn't needed — spaces are hand-made.
bgp::RoutingTable small_table() {
  bgp::RoutingTableBuilder b;
  b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
  b.ingest_route(pfx("20.0.0.0/16"), bgp::AsPath{1, 2});
  return b.build();
}

inference::ValidSpace space_for(Asn member, const net::Prefix& p,
                                inference::Method m = inference::Method::kFullCone) {
  trie::IntervalSet s;
  s.add(p);
  std::unordered_map<Asn, trie::IntervalSet> spaces;
  spaces.emplace(member, std::move(s));
  return inference::ValidSpace(m, std::move(spaces));
}

Classifier make_classifier(const bgp::RoutingTable& table) {
  std::vector<inference::ValidSpace> spaces;
  spaces.push_back(space_for(1, pfx("50.0.0.0/16")));  // AS1 may source 50.0/16
  return Classifier(table, std::move(spaces));
}

TEST(ClassName, Names) {
  EXPECT_EQ(class_name(TrafficClass::kBogon), "Bogon");
  EXPECT_EQ(class_name(TrafficClass::kUnrouted), "Unrouted");
  EXPECT_EQ(class_name(TrafficClass::kInvalid), "Invalid");
  EXPECT_EQ(class_name(TrafficClass::kValid), "Valid");
}

TEST(Classifier, SequentialClassification) {
  const auto table = small_table();
  const auto c = make_classifier(table);
  // Bogon beats everything.
  EXPECT_EQ(c.classify(Ipv4Addr::from_octets(192, 168, 1, 1), 1, 0),
            TrafficClass::kBogon);
  // Routable but unannounced.
  EXPECT_EQ(c.classify(Ipv4Addr::from_octets(99, 0, 0, 1), 1, 0),
            TrafficClass::kUnrouted);
  // Routed, valid for AS1.
  EXPECT_EQ(c.classify(Ipv4Addr::from_octets(50, 0, 5, 5), 1, 0),
            TrafficClass::kValid);
  // Routed, but AS1 is not a valid source of 20.0/16.
  EXPECT_EQ(c.classify(Ipv4Addr::from_octets(20, 0, 5, 5), 1, 0),
            TrafficClass::kInvalid);
  // Unknown member: all routed sources invalid.
  EXPECT_EQ(c.classify(Ipv4Addr::from_octets(50, 0, 5, 5), 9, 0),
            TrafficClass::kInvalid);
}

TEST(Classifier, BogonWinsOverRouted) {
  // Even if a bogon range were somehow announced, the bogon check fires
  // first (strictly sequential, Fig 3).
  bgp::RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/16"), bgp::AsPath{1});   // 10/8 is bogon space
  const auto table = b.build();
  std::vector<inference::ValidSpace> spaces;
  spaces.push_back(space_for(1, pfx("10.0.0.0/16")));
  const Classifier c(table, std::move(spaces));
  EXPECT_EQ(c.classify(Ipv4Addr::from_octets(10, 0, 0, 1), 1, 0),
            TrafficClass::kBogon);
}

TEST(Classifier, PackedLabelsAgreeWithSingle) {
  const auto table = small_table();
  std::vector<inference::ValidSpace> spaces;
  spaces.push_back(space_for(1, pfx("50.0.0.0/16")));
  spaces.push_back(space_for(1, pfx("20.0.0.0/16"), inference::Method::kNaive));
  const Classifier c(table, std::move(spaces));

  for (const auto addr :
       {Ipv4Addr::from_octets(50, 0, 0, 1), Ipv4Addr::from_octets(20, 0, 0, 1),
        Ipv4Addr::from_octets(99, 0, 0, 1), Ipv4Addr::from_octets(224, 1, 1, 1)}) {
    const Label label = c.classify_all(addr, 1);
    for (std::size_t s = 0; s < c.space_count(); ++s) {
      EXPECT_EQ(Classifier::unpack(label, s), c.classify(addr, 1, s));
    }
  }
}

TEST(Classifier, PackedLabelsAgreeWithSingleOnRandomAddresses) {
  // classify_all shares the bogon/routed checks across spaces while
  // classify re-evaluates them per call; a random sweep over the full
  // address space pins the two code paths together (the parallel
  // differential harness relies on classify_all alone).
  const auto table = small_table();
  std::vector<inference::ValidSpace> spaces;
  spaces.push_back(space_for(1, pfx("50.0.0.0/16")));
  spaces.push_back(space_for(1, pfx("20.0.0.0/16"), inference::Method::kNaive));
  spaces.push_back(space_for(2, pfx("50.0.0.0/16"),
                             inference::Method::kCustomerCone));
  const Classifier c(table, std::move(spaces));

  util::Rng rng(20170205);
  for (int i = 0; i < 20'000; ++i) {
    const Ipv4Addr addr(rng.next_u32());
    const Asn member = 1 + static_cast<Asn>(rng.next_u32() % 3);  // 1,2,3
    const Label label = c.classify_all(addr, member);
    for (std::size_t s = 0; s < c.space_count(); ++s) {
      ASSERT_EQ(Classifier::unpack(label, s), c.classify(addr, member, s))
          << addr.str() << " member " << member << " space " << s;
    }
  }
}

TEST(Classifier, RejectsEmptyOrTooManySpaces) {
  const auto table = small_table();
  EXPECT_THROW(Classifier(table, std::vector<inference::ValidSpace>{}),
               std::invalid_argument);
  std::vector<inference::ValidSpace> nine(9);
  EXPECT_THROW(Classifier(table, std::move(nine)), std::invalid_argument);
}

TEST(ClassifyTrace, LabelsParallelToFlows) {
  const auto table = small_table();
  const auto c = make_classifier(table);
  std::vector<net::FlowRecord> flows(3);
  flows[0].src = Ipv4Addr::from_octets(50, 0, 0, 1);
  flows[0].member_in = 1;
  flows[1].src = Ipv4Addr::from_octets(20, 0, 0, 1);
  flows[1].member_in = 1;
  flows[2].src = Ipv4Addr::from_octets(10, 99, 99, 99);  // RFC1918 -> Bogon
  flows[2].member_in = 1;
  const auto labels = classify_trace(c, flows);
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(Classifier::unpack(labels[0], 0), TrafficClass::kValid);
  EXPECT_EQ(Classifier::unpack(labels[1], 0), TrafficClass::kInvalid);
  EXPECT_EQ(Classifier::unpack(labels[2], 0), TrafficClass::kBogon);
}

TEST(Aggregate, CountsPerClassAndMembers) {
  const auto table = small_table();
  const auto c = make_classifier(table);
  std::vector<net::FlowRecord> flows;
  const auto add = [&](Ipv4Addr src, Asn member, std::uint32_t pkts) {
    net::FlowRecord f;
    f.src = src;
    f.member_in = member;
    f.packets = pkts;
    f.bytes = pkts * 100ull;
    flows.push_back(f);
  };
  add(Ipv4Addr::from_octets(50, 0, 0, 1), 1, 10);   // valid
  add(Ipv4Addr::from_octets(20, 0, 0, 1), 1, 5);    // invalid
  add(Ipv4Addr::from_octets(20, 0, 0, 2), 2, 5);    // invalid (AS2 unknown)
  add(Ipv4Addr::from_octets(192, 168, 0, 1), 2, 2); // bogon
  const auto labels = classify_trace(c, flows);
  const auto agg = aggregate_classes(c, flows, labels);

  EXPECT_DOUBLE_EQ(agg.total_packets, 22.0);
  const auto& inv = agg.totals[0][static_cast<int>(TrafficClass::kInvalid)];
  EXPECT_DOUBLE_EQ(inv.packets, 10.0);
  EXPECT_EQ(inv.members, 2u);
  const auto& bog = agg.totals[0][static_cast<int>(TrafficClass::kBogon)];
  EXPECT_EQ(bog.members, 1u);
  EXPECT_DOUBLE_EQ(bog.bytes, 200.0);
}

TEST(Aggregate, ExclusionDropsMembers) {
  const auto table = small_table();
  const auto c = make_classifier(table);
  std::vector<net::FlowRecord> flows(2);
  flows[0].src = Ipv4Addr::from_octets(20, 0, 0, 1);
  flows[0].member_in = 1;
  flows[0].packets = 5;
  flows[1].src = Ipv4Addr::from_octets(20, 0, 0, 1);
  flows[1].member_in = 2;
  flows[1].packets = 7;
  const auto labels = classify_trace(c, flows);
  const auto agg = aggregate_classes(c, flows, labels, {2});
  EXPECT_DOUBLE_EQ(agg.total_packets, 5.0);
  EXPECT_EQ(agg.totals[0][static_cast<int>(TrafficClass::kInvalid)].members, 1u);
}

TEST(RouterTagger, StatsAndExclusion) {
  const auto table = small_table();
  const auto c = make_classifier(table);
  // Router IP: 20.0.7.1 (inside routed space, invalid for member 1).
  const data::ArkDataset ark({Ipv4Addr::from_octets(20, 0, 7, 1).value()}, 10);

  std::vector<net::FlowRecord> flows(3);
  flows[0].src = Ipv4Addr::from_octets(20, 0, 7, 1);  // invalid + router
  flows[0].member_in = 1;
  flows[0].packets = 8;
  flows[1].src = Ipv4Addr::from_octets(20, 0, 9, 9);  // invalid, not router
  flows[1].member_in = 1;
  flows[1].packets = 2;
  flows[2].src = Ipv4Addr::from_octets(20, 0, 9, 9);  // invalid via member 2
  flows[2].member_in = 2;
  flows[2].packets = 4;
  const auto labels = classify_trace(c, flows);

  const auto stats = router_ip_stats(flows, labels, 0, ark);
  ASSERT_EQ(stats.size(), 2u);
  const auto& m1 = stats[0].member == 1 ? stats[0] : stats[1];
  EXPECT_EQ(m1.invalid_packets, 10u);
  EXPECT_EQ(m1.router_invalid_packets, 8u);
  EXPECT_NEAR(m1.router_fraction(), 0.8, 1e-12);

  const auto excluded = members_to_exclude(stats, 0.5);
  EXPECT_EQ(excluded.size(), 1u);
  EXPECT_TRUE(excluded.count(1));
}

TEST(RouterTagger, ProtocolBreakdown) {
  const data::ArkDataset ark({Ipv4Addr::from_octets(20, 0, 7, 1).value()}, 1);
  std::vector<net::FlowRecord> flows(4);
  for (auto& f : flows) {
    f.src = Ipv4Addr::from_octets(20, 0, 7, 1);
    f.packets = 1;
  }
  flows[0].proto = net::Proto::kIcmp;
  flows[1].proto = net::Proto::kIcmp;
  flows[2].proto = net::Proto::kUdp;
  flows[2].dport = 123;
  flows[3].proto = net::Proto::kTcp;
  const auto b = router_protocol_breakdown(flows, ark);
  EXPECT_DOUBLE_EQ(b.icmp, 0.5);
  EXPECT_DOUBLE_EQ(b.udp, 0.25);
  EXPECT_DOUBLE_EQ(b.tcp, 0.25);
  EXPECT_DOUBLE_EQ(b.udp_to_ntp, 1.0);
}

TEST(FpHunter, RecoversWhitelistedRanges) {
  const auto table = small_table();
  auto c = make_classifier(table);

  // Member 1 sends lots of traffic from 20.0.50.0/24 — provider-assigned
  // space registered in WHOIS.
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 10; ++i) {
    net::FlowRecord f;
    f.src = Ipv4Addr::from_octets(20, 0, 50, static_cast<std::uint8_t>(i + 1));
    f.member_in = 1;
    f.packets = 10;
    f.bytes = 5000;
    flows.push_back(f);
  }
  auto labels = classify_trace(c, flows);
  for (const auto l : labels) {
    ASSERT_EQ(Classifier::unpack(l, 0), TrafficClass::kInvalid);
  }

  // Whois knows the range belongs to member 1.
  data::WhoisRegistry whois({{1, 2, pfx("20.0.50.0/24")}}, {});
  // Minimal topology for the lookup API (no partners involved).
  const topo::Topology topo({[] {
                               topo::AsInfo a;
                               a.asn = 1;
                               a.org = 1;
                               return a;
                             }()},
                            {});
  const auto report = hunt_false_positives(c, 0, flows, labels, whois, topo, 5);
  EXPECT_EQ(report.members_investigated, 1u);
  EXPECT_EQ(report.members_with_recovered_ranges, 1u);
  EXPECT_GT(report.invalid_packets_before, 0.0);
  EXPECT_DOUBLE_EQ(report.invalid_packets_after, 0.0);
  EXPECT_DOUBLE_EQ(report.packets_reduction(), 1.0);
  for (const auto l : labels) {
    EXPECT_EQ(Classifier::unpack(l, 0), TrafficClass::kValid);
  }
}

TEST(FpHunter, NoRecoveryLeavesLabelsAlone) {
  const auto table = small_table();
  auto c = make_classifier(table);
  std::vector<net::FlowRecord> flows(1);
  flows[0].src = Ipv4Addr::from_octets(20, 0, 50, 1);
  flows[0].member_in = 1;
  flows[0].packets = 3;
  flows[0].bytes = 100;
  auto labels = classify_trace(c, flows);
  data::WhoisRegistry empty_whois;
  const topo::Topology topo({[] {
                               topo::AsInfo a;
                               a.asn = 1;
                               a.org = 1;
                               return a;
                             }()},
                            {});
  const auto report =
      hunt_false_positives(c, 0, flows, labels, empty_whois, topo, 5);
  EXPECT_EQ(report.members_with_recovered_ranges, 0u);
  EXPECT_DOUBLE_EQ(report.packets_reduction(), 0.0);
  EXPECT_EQ(Classifier::unpack(labels[0], 0), TrafficClass::kInvalid);
}

}  // namespace
}  // namespace spoofscope::classify
