// The resident multi-vantage detection server: one shared compiled
// plane (PlaneHub), N ingest shards (Shard), a router scattering
// submitted trace segments across them by member AS, and the merge
// stage fusing per-shard alerts and health into the service-wide view.
//
// The server is synchronous at the segment level: submit() decodes a
// trace file batch-at-a-time on the calling (control) thread, routes
// each batch to the shard queues — the shards classify and detect in
// parallel — and barriers before returning, so every control verb
// observes a quiescent, consistent fleet. Within a segment the shards
// overlap with the decode+route loop; across segments the detector
// state persists, so submitting a trace in segments equals submitting
// it whole, which in turn equals the one-shot `detect` run (the
// differential suites assert both equalities bit for bit).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "classify/flat_classifier.hpp"
#include "classify/streaming.hpp"
#include "net/flow_batch.hpp"
#include "service/merge.hpp"
#include "service/plane_hub.hpp"
#include "service/router.hpp"
#include "service/shard.hpp"
#include "util/error_policy.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::service {

struct ServerConfig {
  std::size_t shards = 1;
  std::size_t space_idx = 0;
  classify::StreamingParams params;
  /// Per-shard delta chains live here as shard-<i>-of-<n>.ckpt; empty
  /// disables checkpointing.
  std::string checkpoint_dir;
  std::uint64_t checkpoint_every = 0;
  std::size_t max_chain = 16;
  bool resume = false;  ///< restore each shard's chain in start()
  util::ErrorPolicy policy = util::ErrorPolicy::kStrict;
  /// Flows decoded per routing round of a submit.
  std::size_t batch_flows = std::size_t{1} << 15;
  /// Optional pool for reload-updates plane repaint fan-out.
  util::ThreadPool* pool = nullptr;
};

/// One submit's outcome.
struct SubmitResult {
  std::uint64_t flows = 0;   ///< records delivered to shards this segment
  std::uint64_t alerts = 0;  ///< alerts raised this segment
  util::IngestStats stats;   ///< trace-decode accounting
};

/// One reload-updates' outcome.
struct ReloadResult {
  classify::FlatClassifier::UpdateApplyStats stats;
  std::size_t updates = 0;    ///< UPDATE messages in the file
  std::size_t rib_lines = 0;  ///< TABLE_DUMP lines ignored
  std::uint64_t epoch = 0;    ///< plane epoch after the patch
};

struct DrainResult {
  std::uint64_t processed = 0;
  std::uint64_t alerts = 0;
};

class Server {
 public:
  /// Flat-engine server; the hub takes ownership of the plane.
  Server(std::shared_ptr<classify::FlatClassifier> plane, ServerConfig cfg);

  /// Trie-engine server; `classifier` must outlive the server.
  Server(const classify::Classifier& classifier, ServerConfig cfg);

  ~Server();

  struct ResumeInfo {
    std::size_t shards_restored = 0;
    std::uint64_t flows = 0;  ///< total flows the restored cuts had processed
  };

  /// Resumes the shard checkpoint chains (when configured) and launches
  /// the worker threads.
  ResumeInfo start();

  /// Decodes `trace_path`, routes it across the shards, barriers. A
  /// strict-mode decode error still delivers the clean prefix to the
  /// shards before rethrowing, mirroring the one-shot detect command.
  SubmitResult submit(const std::string& trace_path);

  /// Routes one in-memory batch without barriering (the bench and the
  /// in-process tests drive this; pair with barrier()).
  void submit_batch(const net::FlowBatch& batch);

  /// Waits until every shard is idle; rethrows the first dead shard's
  /// stored error.
  void barrier();

  /// Quiesces and snapshots the merged service stats.
  ServiceStats stats();

  /// Quiesces and returns all alerts in canonical (ts, member) order.
  std::vector<classify::SpoofingAlert> merged_alerts();

  /// Applies an MRT-lite route-churn file to the shared plane in place
  /// and republishes it to every shard (flat engine only).
  ReloadResult reload_updates(const std::string& mrt_path);

  /// Quiesces and cuts a checkpoint on every shard (no-op without a
  /// checkpoint dir).
  void checkpoint();

  /// Flushes every detector (reorder-buffer drain + final checkpoint
  /// cut) and barriers.
  DrainResult drain();

  /// Stops the worker threads (queued work drains first). Idempotent.
  void stop();

  std::size_t shard_count() const { return shards_.size(); }
  std::uint64_t plane_epoch() const;
  std::uint64_t segments() const { return segments_; }

 private:
  void build_shards();
  std::uint64_t total_alerts_quiesced() const;

  ServerConfig cfg_;
  PlaneHub hub_;                                   // flat engine
  const classify::Classifier* trie_ = nullptr;     // trie engine
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardRouter router_;
  std::vector<net::FlowBatch> lanes_;  ///< routing scratch
  std::uint64_t segments_ = 0;
};

/// Binds a Unix-domain stream socket at `socket_path` and serves the
/// control protocol (service/control.hpp) until a `shutdown` request:
/// one client at a time, one request line per response. Progress lines
/// go to `log`. Returns 0 on clean shutdown; throws std::runtime_error
/// if the socket cannot be created.
int run_control_loop(Server& server, const std::string& socket_path,
                     std::ostream& log);

}  // namespace spoofscope::service
