// Internal binary trace format core shared by the istream reader
// (net::TraceReader) and the mmap-backed reader (net::MappedTraceReader):
// the on-disk constants, field (de)serializers, header parser and the
// incremental RecordScanner state machine.
//
// Keeping exactly one copy of the scanner is what makes the two readers
// provably equivalent: both consume contiguous byte windows through the
// same state transitions, so records delivered, resync behaviour and
// IngestStats accounting are bit-identical whether the window is a
// refilled stream buffer or one mapped view of the whole file.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "net/flow.hpp"
#include "net/protocols.hpp"
#include "util/error_policy.hpp"

namespace spoofscope::net::format {

inline constexpr std::uint32_t kMagic = 0x53504F46;  // "SPOF"
inline constexpr std::uint32_t kVersionV1 = 1;       // no checksums
inline constexpr std::uint32_t kVersionV2 = 2;       // header + per-record FNV-1a
inline constexpr std::size_t kHeaderBody = 32;       // shared v1/v2 header layout
inline constexpr std::size_t kHeaderSizeV1 = kHeaderBody;
inline constexpr std::size_t kHeaderSizeV2 = kHeaderBody + 4;  // + checksum
inline constexpr std::size_t kPayloadSize = 36;      // record body (both versions)
inline constexpr std::size_t kRecordSizeV1 = kPayloadSize;
inline constexpr std::size_t kRecordSizeV2 = kPayloadSize + 4;  // + checksum

inline void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t(p[1]) << 8));
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// 32-bit FNV-1a over raw bytes; cheap, deterministic, and sensitive to
/// single-bit damage anywhere in the record.
inline std::uint32_t fnv1a32(const std::uint8_t* p, std::size_t n) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

inline void encode_record(const FlowRecord& f, std::uint8_t* p) {
  put_u32(p + 0, f.ts);
  put_u32(p + 4, f.src.value());
  put_u32(p + 8, f.dst.value());
  p[12] = static_cast<std::uint8_t>(f.proto);
  p[13] = 0;  // reserved
  put_u16(p + 14, f.sport);
  put_u16(p + 16, f.dport);
  p[18] = 0;
  p[19] = 0;  // padding for alignment in the on-disk layout
  put_u32(p + 20, f.packets);
  put_u64(p + 24, f.bytes);
  // member ASNs fit in 16 bits in our simulations but are stored as-is
  // truncated to 16 bits to keep the record compact; values above 65535
  // are rejected at write time.
  put_u16(p + 32, static_cast<std::uint16_t>(f.member_in));
  put_u16(p + 34, static_cast<std::uint16_t>(f.member_out));
}

inline FlowRecord decode_record(const std::uint8_t* p) {
  FlowRecord f;
  f.ts = get_u32(p + 0);
  f.src = Ipv4Addr(get_u32(p + 4));
  f.dst = Ipv4Addr(get_u32(p + 8));
  f.proto = static_cast<Proto>(p[12]);
  f.sport = get_u16(p + 14);
  f.dport = get_u16(p + 16);
  f.packets = get_u32(p + 20);
  f.bytes = get_u64(p + 24);
  f.member_in = get_u16(p + 32);
  f.member_out = get_u16(p + 34);
  return f;
}

/// Heuristic record validator for v1 streams (which carry no checksums):
/// a candidate 36-byte window is plausible iff its structural invariants
/// hold — reserved/padding bytes zero, a protocol the vantage point
/// exports, non-zero packet and byte counts, and a timestamp inside the
/// header-declared window (skipped when the header declares none). The
/// writer can never produce an implausible record, so a clean v1 stream
/// is unaffected; random garbage passes with probability ~2^-26, so the
/// skip-mode byte slide re-locks onto the true record boundary after
/// damage instead of swallowing the rest of the stream as one record run.
inline bool plausible_v1_record(const std::uint8_t* p,
                                std::uint32_t window_seconds) {
  if (p[13] != 0 || p[18] != 0 || p[19] != 0) return false;
  const std::uint8_t proto = p[12];
  if (proto != static_cast<std::uint8_t>(Proto::kIcmp) &&
      proto != static_cast<std::uint8_t>(Proto::kTcp) &&
      proto != static_cast<std::uint8_t>(Proto::kUdp)) {
    return false;
  }
  if (get_u32(p + 20) == 0) return false;  // packets
  if (get_u64(p + 24) == 0) return false;  // bytes
  if (window_seconds != 0 && get_u32(p + 0) > window_seconds) return false;
  return true;
}

/// Parsed trace header, or the reason it was rejected (raw fields; the
/// public readers package them into a TraceMeta).
struct Header {
  std::uint32_t sampling_rate = 0;
  std::uint32_t window_seconds = 0;
  std::uint64_t seed = 0;
  std::uint64_t declared = 0;
  std::uint32_t version = 0;
  std::size_t size = 0;  ///< header bytes consumed when ok
  bool ok = false;
};

/// Parses and validates the v1/v2 header from the first bytes of `data`
/// (which need not extend past the header). Strict policy throws
/// std::runtime_error exactly like the historical reader; skip policy
/// accounts the failure in `stats` and returns ok=false (or, for a v2
/// header-checksum mismatch, notes the damage and proceeds best-effort).
inline Header parse_header(std::span<const std::uint8_t> data,
                           util::ErrorPolicy policy, util::IngestStats& stats) {
  const bool strict = policy == util::ErrorPolicy::kStrict;
  const auto fail = [](const char* why) -> Header {
    throw std::runtime_error(std::string("read_trace: ") + why);
  };
  Header h;
  if (data.size() < kHeaderBody) {
    if (strict) return fail("truncated header");
    stats.skip(util::ErrorKind::kTruncated, data.size());
    return h;
  }
  if (get_u32(data.data()) != kMagic) {
    if (strict) return fail("bad magic");
    stats.skip(util::ErrorKind::kBadMagic, kHeaderBody);
    return h;
  }
  h.version = get_u32(data.data() + 4);
  if (h.version != kVersionV1 && h.version != kVersionV2) {
    if (strict) return fail("unsupported version");
    stats.skip(util::ErrorKind::kBadVersion, kHeaderBody);
    return h;
  }
  h.size = h.version == kVersionV2 ? kHeaderSizeV2 : kHeaderSizeV1;
  if (data.size() < h.size) {
    if (strict) return fail("truncated header");
    stats.skip(util::ErrorKind::kTruncated, data.size());
    h.size = 0;
    return h;
  }
  if (h.version == kVersionV2 &&
      get_u32(data.data() + kHeaderBody) != fnv1a32(data.data(), kHeaderBody)) {
    if (strict) return fail("header checksum mismatch");
    // Best effort in skip mode: the metadata may be damaged, but the
    // records carry their own checksums, so recovery can proceed.
    stats.note(util::ErrorKind::kChecksum);
  }
  h.sampling_rate = get_u32(data.data() + 8);
  h.window_seconds = get_u32(data.data() + 12);
  h.seed = get_u64(data.data() + 16);
  h.declared = get_u64(data.data() + 24);
  h.ok = true;
  return h;
}

/// Incremental record decoder over contiguous byte windows. The caller
/// owns windowing: a streaming reader refills a buffer and passes its
/// unconsumed suffix back in; a mapped reader passes one window spanning
/// the whole file. finish() applies the end-of-input accounting.
///
/// Semantics replicate the historical per-record reader exactly:
///   - strict: declared-count records, first malformed byte throws,
///     trailing bytes ignored;
///   - skip: records are validated (v2: checksum; v1: plausibility
///     heuristic) and damage starts a byte-wise resync, one quarantined
///     record counted per damaged region.
class RecordScanner {
 public:
  RecordScanner() = default;
  RecordScanner(const Header& header, util::ErrorPolicy policy,
                util::IngestStats* stats)
      : window_seconds_(header.window_seconds),
        declared_(header.declared),
        version_(header.version),
        policy_(policy),
        stats_(stats) {}

  std::size_t record_size() const {
    return version_ == kVersionV2 ? kRecordSizeV2 : kRecordSizeV1;
  }

  /// True once the scanner will deliver no further records (strict
  /// declared count reached, or finish() was called).
  bool done() const { return done_; }

  std::uint64_t delivered() const { return delivered_; }

  /// Decodes records from `window`, invoking sink(payload) for each valid
  /// one, until `max_records` are delivered, fewer than record_size()
  /// bytes remain, or the scanner is done. Returns the bytes consumed
  /// (valid records plus resync slides); the caller must carry the
  /// unconsumed suffix into the next call.
  template <typename Sink>
  std::size_t scan(std::span<const std::uint8_t> window,
                   std::size_t max_records, Sink&& sink) {
    const bool strict = policy_ == util::ErrorPolicy::kStrict;
    const std::size_t rec = record_size();
    std::size_t off = 0;
    std::size_t n = 0;
    while (n < max_records && !done_) {
      if (strict && delivered_ >= declared_) {
        // Strict mode replicates the historical reader: exactly the
        // declared number of records, trailing bytes ignored.
        done_ = true;
        break;
      }
      if (window.size() - off < rec) break;  // caller must refill or finish
      const std::uint8_t* p = window.data() + off;
      const bool valid =
          version_ == kVersionV2
              ? get_u32(p + kPayloadSize) == fnv1a32(p, kPayloadSize)
              : (strict || plausible_v1_record(p, window_seconds_));
      if (valid) {
        sink(p);
        off += rec;
        ++delivered_;
        ++n;
        stats_->ok();
        resyncing_ = false;
        continue;
      }
      if (strict) throw std::runtime_error("read_trace: record checksum mismatch");
      // Resync: count one quarantined record per damaged region, then
      // slide the window byte-by-byte until a record validates again.
      if (!resyncing_) {
        resyncing_ = true;
        stats_->skip(version_ == kVersionV2 ? util::ErrorKind::kChecksum
                                            : util::ErrorKind::kParse,
                     0);
      }
      ++off;
      ++stats_->bytes_dropped;
    }
    return off;
  }

  /// End of input with `tail` unconsumed bytes: applies truncation and
  /// count-mismatch accounting (strict mode throws if records are owed).
  void finish(std::size_t tail) {
    if (done_) return;
    done_ = true;
    const bool strict = policy_ == util::ErrorPolicy::kStrict;
    if (tail == 0 && !resyncing_) {
      // Record-aligned end of stream. Strict mode only gets here with
      // records still owed by the header (the declared-count check in
      // scan() ends clean streams), so it is a truncation.
      if (strict) throw std::runtime_error("read_trace: truncated record");
      // Skip mode: flag a count mismatch if records were lost (or
      // hallucinated) relative to the header.
      if (delivered_ != declared_) {
        stats_->note(util::ErrorKind::kCountMismatch);
      }
      return;
    }
    if (strict) throw std::runtime_error("read_trace: truncated record");
    stats_->skip(util::ErrorKind::kTruncated, tail);
    if (delivered_ != declared_) stats_->note(util::ErrorKind::kCountMismatch);
  }

 private:
  std::uint32_t window_seconds_ = 0;
  std::uint64_t declared_ = 0;
  std::uint32_t version_ = 0;
  util::ErrorPolicy policy_ = util::ErrorPolicy::kStrict;
  util::IngestStats* stats_ = nullptr;
  std::uint64_t delivered_ = 0;
  bool resyncing_ = false;
  bool done_ = false;
};

}  // namespace spoofscope::net::format
