file(REMOVE_RECURSE
  "CMakeFiles/topo_topology_test.dir/topo_topology_test.cpp.o"
  "CMakeFiles/topo_topology_test.dir/topo_topology_test.cpp.o.d"
  "topo_topology_test"
  "topo_topology_test.pdb"
  "topo_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
