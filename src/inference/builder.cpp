#include "inference/builder.hpp"

#include <algorithm>

namespace spoofscope::inference {

namespace {

/// Mesh edges expressed as mutual customer relations: each org member is
/// treated as a customer of each other member, which makes the customer
/// cone graph contain the full bidirectional mesh.
std::vector<asgraph::InferredLink> with_org_links(
    std::vector<asgraph::InferredLink> links, const asgraph::OrgMap& orgs) {
  for (const auto& [a, b] : orgs.mesh_edges()) {
    links.push_back({a, b, asgraph::InferredRel::kC2P});
  }
  return links;
}

}  // namespace

ValidSpaceFactory::ValidSpaceFactory(const bgp::RoutingTable& table,
                                     asgraph::OrgMap orgs,
                                     asgraph::RelationshipOptions rel_options)
    : table_(&table), orgs_(std::move(orgs)) {
  const auto graph = asgraph::AsGraph::from_routing_table(table);
  full_ = std::make_unique<asgraph::FullCone>(graph);
  full_org_ = std::make_unique<asgraph::FullCone>(
      graph.with_extra_edges(orgs_.mesh_edges()));

  links_ = asgraph::infer_relationships(table, rel_options);
  cc_ = std::make_unique<asgraph::CustomerCone>(links_);
  cc_org_ = std::make_unique<asgraph::CustomerCone>(
      with_org_links(links_, orgs_));

  for (bgp::RoutingTable::PrefixId pid = 0; pid < table.prefixes().size(); ++pid) {
    const auto& p = table.prefixes()[pid];
    for (const Asn origin : table.origins_of(pid)) {
      origin_intervals_[origin].push_back({p.first(), p.last()});
    }
  }
}

std::vector<Asn> ValidSpaceFactory::cone_of(Method method, Asn member) const {
  switch (method) {
    case Method::kNaive: {
      std::vector<Asn> origins;
      for (const auto pid : table_->prefixes_on_paths_of(member)) {
        for (const Asn o : table_->origins_of(pid)) origins.push_back(o);
      }
      std::sort(origins.begin(), origins.end());
      origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
      return origins;
    }
    case Method::kCustomerCone: return cc_->cone_of(member);
    case Method::kCustomerConeOrg: return cc_org_->cone_of(member);
    case Method::kFullCone: return full_->cone_of(member);
    case Method::kFullConeOrg: return full_org_->cone_of(member);
  }
  return {};
}

trie::IntervalSet ValidSpaceFactory::space_for(Method method, Asn member) const {
  std::vector<trie::Interval> ivs;
  if (method == Method::kNaive) {
    for (const auto pid : table_->prefixes_on_paths_of(member)) {
      const auto& p = table_->prefixes()[pid];
      ivs.push_back({p.first(), p.last()});
    }
  } else {
    for (const Asn origin : cone_of(method, member)) {
      const auto it = origin_intervals_.find(origin);
      if (it == origin_intervals_.end()) continue;
      ivs.insert(ivs.end(), it->second.begin(), it->second.end());
    }
  }
  return trie::IntervalSet::from_intervals(std::move(ivs));
}

ValidSpace ValidSpaceFactory::build(Method method,
                                    std::span<const Asn> members) const {
  std::unordered_map<Asn, trie::IntervalSet> spaces;
  spaces.reserve(members.size());
  for (const Asn m : members) {
    spaces.emplace(m, space_for(method, m));
  }
  return ValidSpace(method, std::move(spaces));
}

ValidSpace ValidSpaceFactory::build(Method method, std::span<const Asn> members,
                                    util::ThreadPool& pool) const {
  // Fan the independent per-member constructions out by index, then
  // assemble the map sequentially in input order so duplicate ASNs
  // resolve exactly as in the sequential build (first occurrence wins).
  std::vector<trie::IntervalSet> built(members.size());
  pool.parallel_for(0, members.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      built[i] = space_for(method, members[i]);
    }
  });
  std::unordered_map<Asn, trie::IntervalSet> spaces;
  spaces.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    spaces.emplace(members[i], std::move(built[i]));
  }
  return ValidSpace(method, std::move(spaces));
}

std::vector<std::pair<Asn, double>> ValidSpaceFactory::valid_sizes(
    Method method) const {
  std::vector<std::pair<Asn, double>> out;
  out.reserve(table_->ases().size());
  for (const Asn asn : table_->ases()) {
    out.emplace_back(asn, space_for(method, asn).slash24_equivalents());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  return out;
}

std::vector<std::pair<Asn, double>> ValidSpaceFactory::valid_sizes(
    Method method, util::ThreadPool& pool) const {
  const auto& ases = table_->ases();
  std::vector<std::pair<Asn, double>> out(ases.size());
  pool.parallel_for(0, ases.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = {ases[i], space_for(method, ases[i]).slash24_equivalents()};
    }
  });
  // The (size, asn) ordering is a total order over distinct ASNs, so the
  // sort lands in the same permutation as the sequential build.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace spoofscope::inference
