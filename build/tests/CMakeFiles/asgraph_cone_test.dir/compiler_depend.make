# Empty compiler generated dependencies file for asgraph_cone_test.
# This may be replaced when dependencies are built.
