# Empty compiler generated dependencies file for spoofscope_traffic.
# This may be replaced when dependencies are built.
