// End-to-end integration: build a full (small) scenario and assert the
// paper's qualitative findings hold — the shape checks that make this a
// reproduction rather than just a library.
#include <gtest/gtest.h>

#include "analysis/attack_patterns.hpp"
#include "analysis/table1.hpp"
#include "analysis/traffic_char.hpp"
#include "analysis/venn.hpp"
#include "classify/fp_hunter.hpp"
#include "classify/pipeline.hpp"
#include "classify/router_tagger.hpp"
#include "scenario/scenario.hpp"

namespace spoofscope::scenario {
namespace {

using classify::TrafficClass;
using inference::Method;

/// One shared scenario for the whole suite (expensive to build).
class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto params = ScenarioParams::small();
    params.seed = 20170301;
    world_ = build_scenario(params).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static const Scenario& world() { return *world_; }
  static classify::Aggregate aggregate() {
    return classify::aggregate_classes(world().classifier(),
                                       world().trace().flows, world().labels());
  }

 private:
  static Scenario* world_;
};

Scenario* ScenarioTest::world_ = nullptr;

TEST_F(ScenarioTest, DeterministicLabels) {
  auto params = ScenarioParams::small();
  params.seed = 20170301;
  const auto again = build_scenario(params);
  EXPECT_EQ(again->labels(), world().labels());
  EXPECT_EQ(again->trace().flows.size(), world().trace().flows.size());
}

TEST_F(ScenarioTest, ClassesArePartition) {
  // Mutual exclusivity is structural; verify Bogon/Unrouted agree across
  // every method (the AS-specific step never affects them).
  for (std::size_t i = 0; i < world().labels().size(); i += 7) {
    const auto l = world().labels()[i];
    const auto c0 = classify::Classifier::unpack(l, 0);
    for (int m = 1; m < inference::kNumMethods; ++m) {
      const auto cm = classify::Classifier::unpack(l, m);
      if (c0 == TrafficClass::kBogon || c0 == TrafficClass::kUnrouted) {
        EXPECT_EQ(cm, c0);
      } else {
        EXPECT_TRUE(cm == TrafficClass::kValid || cm == TrafficClass::kInvalid);
      }
    }
  }
}

TEST_F(ScenarioTest, FullConeIsMostConservative) {
  const auto agg = aggregate();
  const auto inv = [&](Method m) {
    return agg.totals[static_cast<std::size_t>(m)]
                     [static_cast<int>(TrafficClass::kInvalid)]
                         .packets;
  };
  // FULL <= CC <= NAIVE in classified Invalid traffic (Sec 3.4 / Table 1),
  // and the org-adjusted variants classify no more than the plain ones.
  EXPECT_LE(inv(Method::kFullCone), inv(Method::kNaive));
  EXPECT_LE(inv(Method::kFullConeOrg), inv(Method::kFullCone));
  EXPECT_LE(inv(Method::kCustomerConeOrg), inv(Method::kCustomerCone));
  EXPECT_GT(inv(Method::kNaive), 0.0);
}

TEST_F(ScenarioTest, OrgAdjustmentShrinksCustomerConeInvalidHard) {
  // Sec 4.3: allowing inter-organization traffic reduces Invalid CC far
  // more than Invalid FULL.
  const auto agg = aggregate();
  const auto inv = [&](Method m) {
    return agg.totals[static_cast<std::size_t>(m)]
                     [static_cast<int>(TrafficClass::kInvalid)]
                         .packets;
  };
  const double cc_reduction = 1.0 - inv(Method::kCustomerConeOrg) /
                                        std::max(1.0, inv(Method::kCustomerCone));
  const double full_reduction = 1.0 - inv(Method::kFullConeOrg) /
                                          std::max(1.0, inv(Method::kFullCone));
  EXPECT_GT(cc_reduction, full_reduction);
}

TEST_F(ScenarioTest, BogonAndUnroutedAreTinyButWidespread) {
  const auto agg = aggregate();
  const auto& bogon = agg.totals[0][static_cast<int>(TrafficClass::kBogon)];
  const auto& unrouted = agg.totals[0][static_cast<int>(TrafficClass::kUnrouted)];
  // Tiny in volume...
  EXPECT_LT(bogon.packets / agg.total_packets, 0.02);
  EXPECT_LT(unrouted.packets / agg.total_packets, 0.02);
  // ...but the majority of members contribute Bogon (paper: 72%).
  const double bogon_members =
      static_cast<double>(bogon.members) / world().ixp().member_count();
  EXPECT_GT(bogon_members, 0.5);
  // More members leak bogons than emit unrouted sources.
  EXPECT_GE(bogon.members, unrouted.members);
}

TEST_F(ScenarioTest, Fig2ConeOrderingHolds) {
  // Per-AS valid space: NAIVE and CC are contained in FULL; org variants
  // only grow the space (Sec 3.4).
  const auto& factory = world().factory();
  const auto members = world().ixp().member_asns();
  const auto naive = factory.build(Method::kNaive, members);
  const auto cc = factory.build(Method::kCustomerCone, members);
  const auto full = factory.build(Method::kFullCone, members);
  const auto full_org = factory.build(Method::kFullConeOrg, members);
  std::size_t cc_escapes = 0;
  for (const auto asn : members) {
    const auto* sn = naive.space_of(asn);
    const auto* sf = full.space_of(asn);
    ASSERT_NE(sn, nullptr);
    ASSERT_NE(sf, nullptr);
    EXPECT_TRUE(sn->subtract(*sf).empty()) << "NAIVE > FULL at AS" << asn;
    EXPECT_LE(full.slash24_of(asn), full_org.slash24_of(asn) + 1e-9);
    // The Customer Cone may escape the Full Cone when the relationship
    // inference misdirects a link; it must stay a rare exception.
    cc_escapes += !cc.space_of(asn)->subtract(*sf).empty();
  }
  EXPECT_LT(static_cast<double>(cc_escapes), 0.15 * members.size());
}

TEST_F(ScenarioTest, SpoofedTrafficIsSmallPackets) {
  // Fig 8a: > 80% of spoofed-class packets are small.
  const auto full_idx = Scenario::space_index(Method::kFullCone);
  for (const auto cls :
       {TrafficClass::kBogon, TrafficClass::kUnrouted}) {
    const double frac = analysis::small_packet_fraction(
        world().trace().flows, world().labels(), full_idx, cls, 100.0);
    EXPECT_GT(frac, 0.8) << classify::class_name(cls);
  }
  // Regular traffic is not.
  EXPECT_LT(analysis::small_packet_fraction(world().trace().flows,
                                            world().labels(), full_idx,
                                            TrafficClass::kValid, 100.0),
            0.7);
}

TEST_F(ScenarioTest, RegularTrafficIsDiurnalSpoofedIsNot) {
  const auto full_idx = Scenario::space_index(Method::kFullCone);
  const auto ts = analysis::class_time_series(
      world().trace().flows, world().labels(), full_idx,
      world().trace().meta.window_seconds);
  const auto& regular = ts.series[static_cast<int>(TrafficClass::kValid)];
  const auto& unrouted = ts.series[static_cast<int>(TrafficClass::kUnrouted)];
  const double regular_diurnality = analysis::diurnality(regular, ts.bin_seconds);
  const double unrouted_diurnality = analysis::diurnality(unrouted, ts.bin_seconds);
  EXPECT_GT(regular_diurnality, 0.25);
  EXPECT_LT(unrouted_diurnality, 0.25);
  EXPECT_GT(regular_diurnality, unrouted_diurnality);
  EXPECT_GT(analysis::burstiness(unrouted), analysis::burstiness(regular));
}

TEST_F(ScenarioTest, UnroutedDestinationsSeeRandomSpoofing) {
  const auto full_idx = Scenario::space_index(Method::kFullCone);
  const auto hist = analysis::src_per_dst_ratio(
      world().trace().flows, world().labels(), full_idx, 30);
  const auto& unrouted =
      hist.fractions[static_cast<int>(TrafficClass::kUnrouted)];
  const auto& invalid = hist.fractions[static_cast<int>(TrafficClass::kInvalid)];
  ASSERT_FALSE(unrouted.empty());
  // Fig 11a: Unrouted destinations are dominated by unique-source floods
  // (right bins); Invalid destinations by few-source amplification (left).
  const double unrouted_right = unrouted[unrouted.size() - 1] +
                                unrouted[unrouted.size() - 2];
  EXPECT_GT(unrouted_right, 0.5);
  EXPECT_GT(invalid[0] + invalid[1], 0.4);
}

TEST_F(ScenarioTest, NtpDominatedByOneMember) {
  const auto full_idx = Scenario::space_index(Method::kFullCone);
  const auto ntp = analysis::analyze_ntp(world().trace().flows,
                                         world().labels(), full_idx);
  ASSERT_GT(ntp.trigger_packets, 0u);
  EXPECT_GT(ntp.top_member_share, 0.5);   // paper: 91.94%
  EXPECT_GT(ntp.top5_member_share, 0.9);  // paper: 97.86%
  EXPECT_GT(ntp.invalid_udp_ntp_share, 0.5);
}

TEST_F(ScenarioTest, AmplificationWorksAtTheVantagePoint) {
  const auto full_idx = Scenario::space_index(Method::kFullCone);
  const auto ts = analysis::amplification_effect(
      world().trace().flows, world().labels(), full_idx,
      world().trace().meta.window_seconds);
  // Fig 11c: responses exceed triggers by roughly an order of magnitude in
  // bytes at similar packet counts.
  EXPECT_GT(ts.amplification_factor(), 5.0);
  EXPECT_LT(ts.amplification_factor(), 20.0);
  EXPECT_NEAR(ts.packet_ratio(), 1.0, 0.2);
}

TEST_F(ScenarioTest, FpHuntReducesInvalid) {
  auto params = ScenarioParams::small();
  params.seed = 20170301;
  auto fresh = build_scenario(params);
  auto labels = fresh->labels();
  const auto full_idx = Scenario::space_index(Method::kFullCone);
  const auto report = classify::hunt_false_positives(
      fresh->classifier(), full_idx, fresh->trace().flows, labels,
      fresh->whois(), fresh->topology());
  EXPECT_GT(report.members_investigated, 0u);
  EXPECT_GT(report.bytes_reduction(), 0.2);
  EXPECT_GT(report.packets_reduction(), 0.1);
  EXPECT_LT(report.invalid_packets_after, report.invalid_packets_before);
}

TEST_F(ScenarioTest, RouterStrayProtocolMixMatchesPaper) {
  const auto breakdown = classify::router_protocol_breakdown(
      world().trace().flows, world().ark());
  EXPECT_NEAR(breakdown.icmp, 0.83, 0.12);
  EXPECT_GT(breakdown.udp_to_ntp, 0.5);
}

TEST_F(ScenarioTest, RouterDominatedMembersExist) {
  const auto full_idx = Scenario::space_index(Method::kFullCone);
  const auto stats = classify::router_ip_stats(
      world().trace().flows, world().labels(), full_idx, world().ark());
  const auto excluded = classify::members_to_exclude(stats);
  EXPECT_FALSE(excluded.empty());
  // Excluding them reduces the number of Invalid-contributing members but
  // not drastically the Invalid volume (Sec 5.2).
  const auto before = aggregate();
  const auto after = classify::aggregate_classes(
      world().classifier(), world().trace().flows, world().labels(), excluded);
  const auto inv_before =
      before.totals[full_idx][static_cast<int>(TrafficClass::kInvalid)];
  const auto inv_after =
      after.totals[full_idx][static_cast<int>(TrafficClass::kInvalid)];
  EXPECT_LT(inv_after.members, inv_before.members);
}

TEST_F(ScenarioTest, VennShowsInconsistentFiltering) {
  const auto counts = world().member_counts(Method::kFullCone);
  const auto v = analysis::venn_membership(counts);
  // The majority of members are not clean (paper: only 18% are).
  EXPECT_LT(v.clean, 0.5);
  // Members emitting Unrouted almost always emit Bogon/Invalid too (96%).
  EXPECT_GT(v.unrouted_also_other, 0.7);
}

TEST_F(ScenarioTest, Table1ColumnsWellFormed) {
  const auto agg = aggregate();
  const auto cols = analysis::table1_columns(agg, world().trace().scale(),
                                             world().ixp().member_count());
  ASSERT_EQ(cols.size(), 5u);
  for (const auto& c : cols) {
    EXPECT_GE(c.member_fraction, 0.0);
    EXPECT_LE(c.member_fraction, 1.0);
    EXPECT_GE(c.packets_fraction, 0.0);
    EXPECT_LE(c.packets_fraction, 1.0);
  }
  // Bogon/Unrouted are tiny; Invalid NAIVE is the largest Invalid column.
  EXPECT_LT(cols[0].packets_fraction, 0.02);
  EXPECT_GE(cols[3].packets_fraction, cols[2].packets_fraction);
}

TEST(ScenarioBuild, ClampsFeederCountToPopulation) {
  // More feeders per collector than ASes exist: the builder must clamp
  // (every AS feeds every collector) instead of rejection-sampling
  // forever.
  auto params = ScenarioParams::small();
  params.feeders_per_collector = 100000;
  params.num_collectors = 2;
  const auto world = build_scenario(params);
  EXPECT_EQ(world->topology().as_count(), params.topology.total_ases());
  EXPECT_FALSE(world->table().prefixes().empty());
}

}  // namespace
}  // namespace spoofscope::scenario
