#include "analysis/incidents.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "net/protocols.hpp"
#include "util/format.hpp"

namespace spoofscope::analysis {

std::string incident_kind_name(IncidentKind k) {
  switch (k) {
    case IncidentKind::kRandomSpoofFlood: return "random-spoof flood";
    case IncidentKind::kAmplification: return "amplification";
    case IncidentKind::kOther: return "other";
  }
  return "?";
}

namespace {

struct Cluster {
  std::uint32_t start_ts = ~0u;
  std::uint32_t end_ts = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::unordered_set<std::uint32_t> counterparts;  // srcs or dsts
  std::unordered_set<Asn> members;

  void add(const net::FlowRecord& f, std::uint32_t counterpart) {
    start_ts = std::min(start_ts, f.ts);
    end_ts = std::max(end_ts, f.ts);
    packets += f.packets;
    bytes += f.bytes;
    counterparts.insert(counterpart);
    members.insert(f.member_in);
  }
};

Incident to_incident(IncidentKind kind, net::Ipv4Addr victim, const Cluster& c,
                     bool counterparts_are_sources) {
  Incident inc;
  inc.kind = kind;
  inc.victim = victim;
  inc.start_ts = c.start_ts;
  inc.end_ts = c.end_ts;
  inc.packets = c.packets;
  inc.bytes = c.bytes;
  if (counterparts_are_sources) {
    inc.distinct_sources = c.counterparts.size();
  } else {
    inc.distinct_destinations = c.counterparts.size();
  }
  inc.members.assign(c.members.begin(), c.members.end());
  std::sort(inc.members.begin(), inc.members.end());
  return inc;
}

}  // namespace

std::vector<Incident> extract_incidents(std::span<const net::FlowRecord> flows,
                                        std::span<const Label> labels,
                                        std::size_t space_idx,
                                        const IncidentParams& params) {
  // Flood candidates: flagged flows grouped by destination (counterparts
  // are the spoofed sources). Amplification candidates: flagged UDP/123
  // flows grouped by *source* (the reflection victim; counterparts are
  // the amplifiers).
  std::unordered_map<std::uint32_t, Cluster> by_dst;
  std::unordered_map<std::uint32_t, Cluster> by_trigger_src;

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto cls = classify::Classifier::unpack(labels[i], space_idx);
    if (cls == TrafficClass::kValid) continue;
    const auto& f = flows[i];
    const bool trigger_shaped =
        f.proto == net::Proto::kUdp && f.dport == net::ports::kNtp;
    if (trigger_shaped) {
      by_trigger_src[f.src.value()].add(f, f.dst.value());
    } else {
      by_dst[f.dst.value()].add(f, f.src.value());
    }
  }

  std::vector<Incident> out;
  for (const auto& [dst, c] : by_dst) {
    if (c.packets < params.min_packets) continue;
    const double uniqueness =
        static_cast<double>(c.counterparts.size()) / static_cast<double>(c.packets);
    const IncidentKind kind = uniqueness >= params.flood_uniqueness
                                  ? IncidentKind::kRandomSpoofFlood
                                  : IncidentKind::kOther;
    out.push_back(to_incident(kind, net::Ipv4Addr(dst), c,
                              /*counterparts_are_sources=*/true));
  }
  for (const auto& [src, c] : by_trigger_src) {
    if (c.packets < params.min_packets) continue;
    // Trigger traffic is selective by construction of the grouping (one
    // spoofed source); classify it as amplification.
    out.push_back(to_incident(IncidentKind::kAmplification, net::Ipv4Addr(src),
                              c, /*counterparts_are_sources=*/false));
  }
  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    if (a.packets != b.packets) return a.packets > b.packets;
    return a.victim.value() < b.victim.value();
  });
  return out;
}

std::string format_incidents(std::span<const Incident> incidents,
                             std::size_t top_n) {
  std::ostringstream os;
  std::size_t floods = 0, amps = 0, other = 0;
  for (const auto& i : incidents) {
    switch (i.kind) {
      case IncidentKind::kRandomSpoofFlood: ++floods; break;
      case IncidentKind::kAmplification: ++amps; break;
      case IncidentKind::kOther: ++other; break;
    }
  }
  os << incidents.size() << " incidents (" << floods << " floods, " << amps
     << " amplification, " << other << " other)\n";
  for (std::size_t i = 0; i < std::min(top_n, incidents.size()); ++i) {
    const auto& inc = incidents[i];
    os << "  " << util::pad_right(incident_kind_name(inc.kind), 20)
       << util::pad_right("victim " + inc.victim.str(), 24)
       << util::pad_left(util::human_count(static_cast<double>(inc.packets)), 8)
       << " pkts  " << util::pad_left(std::to_string(inc.duration() / 60), 6)
       << " min  ";
    if (inc.kind == IncidentKind::kAmplification) {
      os << inc.distinct_destinations << " amplifiers";
    } else {
      os << inc.distinct_sources << " spoofed srcs";
    }
    os << "  via " << inc.members.size() << " member(s)\n";
  }
  return os.str();
}

}  // namespace spoofscope::analysis
