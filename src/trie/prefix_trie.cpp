// PrefixTrie is a header-only template; this translation unit exists to
// give the build target a source and to force a full instantiation so
// template errors surface when building the library itself.
#include "trie/prefix_trie.hpp"

namespace spoofscope::trie {

template class PrefixTrie<int>;

}  // namespace spoofscope::trie
