// One-stop scenario assembly: topology -> BGP simulation -> collectors ->
// routing table -> inference -> IXP workload -> classification. This is
// what the examples and every bench build on; a Scenario is fully
// determined by (ScenarioParams, seed).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/member_stats.hpp"
#include "bgp/collector.hpp"
#include "classify/classifier.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/pipeline.hpp"
#include "data/ark.hpp"
#include "data/as2org.hpp"
#include "data/spoofer.hpp"
#include "data/whois.hpp"
#include "inference/builder.hpp"
#include "ixp/ixp.hpp"
#include "topo/generator.hpp"
#include "traffic/workload.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::scenario {

/// All knobs in one place.
struct ScenarioParams {
  topo::TopologyParams topology;
  ixp::IxpParams ixp;
  bgp::PlanParams plan;
  data::As2OrgParams as2org;
  data::ArkParams ark;
  data::SpooferParams spoofer;
  data::WhoisParams whois;
  traffic::WorkloadParams workload;

  std::size_t num_collectors = 6;        ///< RIS/RouteViews-style full feeds
  std::size_t feeders_per_collector = 8;
  std::uint64_t seed = 42;

  /// Worker threads for valid-space construction and trace
  /// classification: 0 = hardware concurrency, 1 = exact sequential
  /// execution (the default; results are identical either way).
  std::size_t threads = 1;

  /// Classification engine for the scenario's trace labels: the trie
  /// engine (default) or the compiled flat plane. Labels are identical
  /// for both; flat trades a one-off compile for O(1) per-flow lookups.
  classify::Engine engine = classify::Engine::kTrie;

  /// Batch kernel for flat-engine classification (the --simd knob).
  /// Kernels are proven bit-identical, so this changes throughput only;
  /// ignored under the trie engine.
  classify::SimdKernel simd = classify::SimdKernel::kAuto;

  /// Laptop-quick configuration for tests and examples.
  static ScenarioParams small();

  /// The paper-scale default used by the benches.
  static ScenarioParams paper();

  /// Internet scale: ~80K ASes and on the order of a million announced
  /// prefixes. Exercises the chunk-parallel generator and the streaming
  /// chunked propagation; expect minutes of CPU, not seconds.
  static ScenarioParams internet();
};

/// The fully assembled world. Non-copyable and heap-only (internal
/// components hold references to each other); create via build_scenario.
class Scenario {
 public:
  explicit Scenario(const ScenarioParams& params);
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioParams& params() const { return params_; }
  const topo::Topology& topology() const { return topology_; }
  const ixp::Ixp& ixp() const { return ixp_; }
  const bgp::RoutingTable& table() const { return table_; }
  const asgraph::OrgMap& orgs() const { return orgs_; }
  const data::WhoisRegistry& whois() const { return whois_; }
  const data::ArkDataset& ark() const { return ark_; }
  const std::vector<data::SpooferRecord>& spoofer() const { return spoofer_; }
  const inference::ValidSpaceFactory& factory() const { return factory_; }
  const traffic::Workload& workload() const { return workload_; }
  const net::Trace& trace() const { return workload_.trace; }

  /// The pool the scenario was built with (params.threads lanes);
  /// available for follow-on parallel analyses over the same world.
  util::ThreadPool& pool() { return pool_; }

  classify::Classifier& classifier() { return classifier_; }
  const classify::Classifier& classifier() const { return classifier_; }

  /// The compiled flat plane when params.engine == kFlat (it produced
  /// labels()); nullptr under the trie engine.
  const classify::FlatClassifier* flat_classifier() const { return flat_.get(); }
  const std::vector<classify::Label>& labels() const { return labels_; }
  std::vector<classify::Label>& mutable_labels() { return labels_; }

  /// Index of a method in the classifier's space list.
  static std::size_t space_index(inference::Method m) {
    return static_cast<std::size_t>(m);
  }

  /// Per-member class counts under `m` (convenience for analyses).
  std::vector<analysis::MemberClassCounts> member_counts(
      inference::Method m) const;

 private:
  ScenarioParams params_;
  util::ThreadPool pool_;
  topo::Topology topology_;
  ixp::Ixp ixp_;
  bgp::RoutingTable table_;
  asgraph::OrgMap orgs_;
  data::WhoisRegistry whois_;
  data::ArkDataset ark_;
  std::vector<data::SpooferRecord> spoofer_;
  inference::ValidSpaceFactory factory_;
  classify::Classifier classifier_;
  std::unique_ptr<classify::FlatClassifier> flat_;
  traffic::Workload workload_;
  std::vector<classify::Label> labels_;
};

/// Builds a scenario on the heap (components hold cross-references, so
/// the object must not move).
std::unique_ptr<Scenario> build_scenario(const ScenarioParams& params);

}  // namespace spoofscope::scenario
