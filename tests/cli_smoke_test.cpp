// End-to-end CLI smoke test: drives the real `spoofscope` binary through
// generate -> classify -> report on a temp directory, on both engines,
// and checks the robustness surface (flag validation, strict vs skip on
// a corrupted trace, output-stream failure).
//
// SPOOFSCOPE_CLI_BIN is injected by CMake as the built binary's path.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr interleaved
};

/// Runs the CLI with `args`, capturing combined output.
RunResult run_cli(const std::string& args, const fs::path& capture) {
  const std::string cmd = std::string(SPOOFSCOPE_CLI_BIN) + " " + args + " > " +
                          capture.string() + " 2>&1";
  const int raw = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::ostringstream os;
  os << in.rdbuf();
  r.output = os.str();
  return r;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// One generated world shared by every test case (generation dominates
/// the suite's runtime).
struct CliWorld {
  fs::path root;   ///< scratch directory for this run
  fs::path world;  ///< generated artifacts
  fs::path log;    ///< output capture file
  bool generated = false;

  CliWorld() {
    root = fs::temp_directory_path() /
           ("spoofscope-smoke-" + std::to_string(::getpid()));
    fs::remove_all(root);
    fs::create_directories(root);
    world = root / "world";
    log = root / "out.log";
    const auto r =
        run_cli("generate --out " + world.string() + " --seed 7", log);
    generated = r.exit_code == 0;
  }
  ~CliWorld() { fs::remove_all(root); }

  std::string mrt() const { return (world / "route-server.mrt").string(); }
  std::string trace() const { return (world / "ixp.trace").string(); }
  std::string rpsl() const { return (world / "registry.rpsl").string(); }
};

CliWorld& cli_world() {
  static CliWorld w;  // destructor removes the scratch directory at exit
  return w;
}

TEST(CliSmoke, GenerateWritesAllArtifacts) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  EXPECT_TRUE(fs::exists(w.world / "topology.txt"));
  EXPECT_TRUE(fs::exists(w.world / "ixp.trace"));
  EXPECT_TRUE(fs::exists(w.world / "route-server.mrt"));
  EXPECT_TRUE(fs::exists(w.world / "registry.rpsl"));
  EXPECT_GT(fs::file_size(w.world / "ixp.trace"), 1000u);
}

TEST(CliSmoke, ClassifyProducesIdenticalLabelsOnBothEngines) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const fs::path trie_csv = w.root / "labels-trie.csv";
  const fs::path flat_csv = w.root / "labels-flat.csv";

  const auto trie = run_cli("classify --mrt " + w.mrt() + " --trace " +
                                w.trace() + " --labels " + trie_csv.string(),
                            w.log);
  ASSERT_EQ(trie.exit_code, 0) << trie.output;
  EXPECT_NE(trie.output.find("classified"), std::string::npos);

  const auto flat = run_cli("classify --mrt " + w.mrt() + " --trace " +
                                w.trace() + " --labels " + flat_csv.string() +
                                " --engine flat --threads 0",
                            w.log);
  ASSERT_EQ(flat.exit_code, 0) << flat.output;

  const std::string a = slurp(trie_csv);
  const std::string b = slurp(flat_csv);
  ASSERT_GT(a.size(), 100u);
  EXPECT_EQ(a.substr(0, 24), "ts,src,dst,member,class\n");
  EXPECT_EQ(a, b);
}

TEST(CliSmoke, ReportRunsEndToEndOnBothEngines) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  for (const std::string engine : {"trie", "flat"}) {
    const auto r = run_cli("report --mrt " + w.mrt() + " --trace " +
                               w.trace() + " --rpsl " + w.rpsl() +
                               " --engine " + engine,
                           w.log);
    ASSERT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("NTP amplification"), std::string::npos) << engine;
  }
}

TEST(CliSmoke, GarbageThreadsFlagIsRejected) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const auto r = run_cli("classify --mrt " + w.mrt() + " --trace " +
                             w.trace() + " --threads bogus",
                         w.log);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--threads"), std::string::npos);
}

TEST(CliSmoke, CorruptedTraceStrictFailsSkipRecovers) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  // Flip one bit inside the record region of a copy of the trace.
  const fs::path bad = w.root / "corrupt.trace";
  std::string bytes = slurp(w.trace());
  ASSERT_GT(bytes.size(), 5000u);
  bytes[5000] = static_cast<char>(bytes[5000] ^ 0x10);
  {
    std::ofstream out(bad, std::ios::binary);
    out << bytes;
  }

  const auto strict = run_cli(
      "classify --mrt " + w.mrt() + " --trace " + bad.string(), w.log);
  EXPECT_EQ(strict.exit_code, 1);
  EXPECT_NE(strict.output.find("error:"), std::string::npos);

  const auto skip =
      run_cli("classify --mrt " + w.mrt() + " --trace " + bad.string() +
                  " --on-error skip",
              w.log);
  ASSERT_EQ(skip.exit_code, 0) << skip.output;
  EXPECT_NE(skip.output.find("ingest:"), std::string::npos);
  EXPECT_NE(skip.output.find("1 skipped"), std::string::npos);
  EXPECT_NE(skip.output.find("classified"), std::string::npos);
}

TEST(CliSmoke, StatsJsonSchemaOnClassify) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  // Corrupt one record so the skipped/error counters are exercised too.
  const fs::path bad = w.root / "stats-corrupt.trace";
  std::string bytes = slurp(w.trace());
  ASSERT_GT(bytes.size(), 5000u);
  bytes[5000] = static_cast<char>(bytes[5000] ^ 0x10);
  {
    std::ofstream out(bad, std::ios::binary);
    out << bytes;
  }
  const fs::path json_path = w.root / "stats.json";
  const auto r = run_cli("classify --mrt " + w.mrt() + " --trace " +
                             bad.string() + " --rpsl " + w.rpsl() +
                             " --on-error skip --stats-json " +
                             json_path.string(),
                         w.log);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  const std::string json = slurp(json_path);
  ASSERT_GT(json.size(), 2u);
  // Shape: one document, a "sources" array with one entry per ingested
  // file (MRT, RPSL, trace) carrying the IngestStats schema.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"sources\":["), std::string::npos);
  for (const std::string path : {w.mrt(), w.rpsl(), bad.string()}) {
    EXPECT_NE(json.find("\"path\":\"" + path + "\""), std::string::npos)
        << json;
  }
  for (const std::string key :
       {"\"records_ok\":", "\"records_skipped\":", "\"bytes_dropped\":",
        "\"errors\":{", "\"truncated\":", "\"bad-magic\":", "\"bad-version\":",
        "\"checksum\":", "\"parse\":", "\"count-mismatch\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The flipped bit shows up as exactly one skipped checksum record.
  EXPECT_NE(json.find("\"records_skipped\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"checksum\":1"), std::string::npos) << json;
  // classify mode carries no detector section.
  EXPECT_EQ(json.find("\"detector\":"), std::string::npos);
}

TEST(CliSmoke, DetectEmitsHealthInStatsJson) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const fs::path json_path = w.root / "detect-stats.json";
  for (const std::string engine : {"trie", "flat"}) {
    const auto r = run_cli("detect --mrt " + w.mrt() + " --trace " +
                               w.trace() + " --engine " + engine +
                               " --window 1800 --skew 60 --stats-json " +
                               json_path.string(),
                           w.log);
    ASSERT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("detect:"), std::string::npos) << engine;
    EXPECT_NE(r.output.find("health:"), std::string::npos) << engine;

    const std::string json = slurp(json_path);
    EXPECT_NE(json.find("\"sources\":["), std::string::npos) << engine;
    EXPECT_NE(json.find("\"detector\":{"), std::string::npos) << engine;
    for (const std::string key :
         {"\"regressions\":", "\"late_drops\":", "\"forced_releases\":",
          "\"member_evictions\":", "\"sample_evictions\":",
          "\"reorder_depth\":", "\"max_reorder_depth\":",
          "\"tracked_members\":", "\"max_window_depth\":"}) {
      EXPECT_NE(json.find(key), std::string::npos) << engine << " " << key;
    }
  }
}

TEST(CliSmoke, DetectAlertsIdenticalOnBothEngines) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  std::string alerts[2];
  int i = 0;
  for (const std::string engine : {"trie", "flat"}) {
    const auto r = run_cli("detect --mrt " + w.mrt() + " --trace " +
                               w.trace() + " --engine " + engine +
                               " --window 1800",
                           w.log);
    ASSERT_EQ(r.exit_code, 0) << r.output;
    // Keep only the alert lines: engine name differs in the summary.
    std::istringstream lines(r.output);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind("alert:", 0) == 0) alerts[i] += line + "\n";
    }
    ++i;
  }
  EXPECT_FALSE(alerts[0].empty());
  EXPECT_EQ(alerts[0], alerts[1]);
}

/// First line of `out` starting with `prefix` (empty if none).
std::string line_with(const std::string& out, const std::string& prefix) {
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) == 0) return line;
  }
  return {};
}

int count_lines_with(const std::string& out, const std::string& prefix) {
  std::istringstream lines(out);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

TEST(CliSmoke, DetectCheckpointThenResumeReplaysNothing) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const fs::path ckpt = w.root / "detect.ckpt";
  const std::string base = "detect --mrt " + w.mrt() + " --trace " +
                           w.trace() + " --window 1800 --skew 60" +
                           " --checkpoint " + ckpt.string();

  const auto first = run_cli(base + " --checkpoint-every 5000", w.log);
  ASSERT_EQ(first.exit_code, 0) << first.output;
  EXPECT_TRUE(fs::exists(ckpt));
  const int alerts = count_lines_with(first.output, "alert:");
  EXPECT_GT(alerts, 0);
  const std::string health = line_with(first.output, "health:");
  ASSERT_FALSE(health.empty());

  // The checkpoint covers the whole stream, so a resumed run restores,
  // fast-forwards past every record, raises no new alert, and reports
  // the exact same health counters.
  const auto resumed = run_cli(base + " --resume", w.log);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("resume: restored detector state"),
            std::string::npos)
      << resumed.output;
  EXPECT_EQ(count_lines_with(resumed.output, "alert:"), 0) << resumed.output;
  EXPECT_EQ(line_with(resumed.output, "health:"), health);
  // Same flows/members; the alert count in the summary is per-run (0
  // new ones after the restore point).
  const std::string first_detect = line_with(first.output, "detect:");
  const std::string prefix = first_detect.substr(0, first_detect.find(" members,") + 9);
  EXPECT_EQ(line_with(resumed.output, "detect:").rfind(prefix, 0), 0u)
      << resumed.output;
  EXPECT_NE(line_with(resumed.output, "detect:").find(" 0 alerts"),
            std::string::npos)
      << resumed.output;
}

TEST(CliSmoke, CheckpointEveryRejectsNonPositiveValues) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const fs::path ckpt = w.root / "rejected.ckpt";
  const auto r = run_cli("detect --mrt " + w.mrt() + " --trace " + w.trace() +
                             " --checkpoint " + ckpt.string() +
                             " --checkpoint-every 0",
                         w.log);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("--checkpoint-every must be > 0, got: '0'"),
            std::string::npos)
      << r.output;
  EXPECT_FALSE(fs::exists(ckpt));
}

TEST(CliSmoke, UpdatesFlagRequiresFlatEngine) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const auto r = run_cli("detect --mrt " + w.mrt() + " --trace " + w.trace() +
                             " --updates " + w.mrt(),
                         w.log);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("--updates requires --engine flat"),
            std::string::npos)
      << r.output;
}

TEST(CliSmoke, DeltaCheckpointChainResumesLikeAFullOne) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const fs::path ckpt = w.root / "delta.ckpt";
  const std::string base = "detect --mrt " + w.mrt() + " --trace " +
                           w.trace() + " --window 1800 --skew 60" +
                           " --checkpoint " + ckpt.string() +
                           " --checkpoint-delta";

  const auto first = run_cli(base + " --checkpoint-every 5000", w.log);
  ASSERT_EQ(first.exit_code, 0) << first.output;
  EXPECT_TRUE(fs::exists(ckpt));
  // Mid-stream checkpoints landed as delta links chained off the base.
  EXPECT_TRUE(fs::exists(fs::path(ckpt.string() + ".d1"))) << first.output;
  const std::string health = line_with(first.output, "health:");
  ASSERT_FALSE(health.empty());

  const auto resumed = run_cli(base + " --resume", w.log);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("resume: restored detector state"),
            std::string::npos)
      << resumed.output;
  EXPECT_EQ(count_lines_with(resumed.output, "alert:"), 0) << resumed.output;
  EXPECT_EQ(line_with(resumed.output, "health:"), health);
}

TEST(CliSmoke, CorruptCheckpointStrictFailsSkipStartsFresh) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const fs::path ckpt = w.root / "damaged.ckpt";
  const std::string base = "detect --mrt " + w.mrt() + " --trace " +
                           w.trace() + " --window 1800 --checkpoint " +
                           ckpt.string();
  const auto clean = run_cli(
      "detect --mrt " + w.mrt() + " --trace " + w.trace() + " --window 1800",
      w.log);
  ASSERT_EQ(clean.exit_code, 0);

  const auto first = run_cli(base, w.log);
  ASSERT_EQ(first.exit_code, 0) << first.output;
  std::string bytes = slurp(ckpt);
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  const auto strict = run_cli(base + " --resume", w.log);
  EXPECT_EQ(strict.exit_code, 1);
  EXPECT_NE(strict.output.find("error:"), std::string::npos) << strict.output;

  const auto skip = run_cli(base + " --resume --on-error skip", w.log);
  ASSERT_EQ(skip.exit_code, 0) << skip.output;
  EXPECT_NE(skip.output.find("resume: checkpoint unusable, starting fresh"),
            std::string::npos)
      << skip.output;
  // Fresh start over the full stream: same alerts and health as a run
  // that never had a checkpoint.
  EXPECT_EQ(count_lines_with(skip.output, "alert:"),
            count_lines_with(clean.output, "alert:"));
  EXPECT_EQ(line_with(skip.output, "health:"),
            line_with(clean.output, "health:"));
}

TEST(CliSmoke, PlaneCacheMissThenHitProducesIdenticalLabels) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const fs::path cache = w.root / "plane-cache";
  const fs::path miss_csv = w.root / "labels-cache-miss.csv";
  const fs::path hit_csv = w.root / "labels-cache-hit.csv";
  const std::string base = "classify --mrt " + w.mrt() + " --trace " +
                           w.trace() + " --engine flat --plane-cache " +
                           cache.string() + " --labels ";

  const auto miss = run_cli(base + miss_csv.string(), w.log);
  ASSERT_EQ(miss.exit_code, 0) << miss.output;
  EXPECT_NE(miss.output.find("plane-cache: miss (compiled and stored)"),
            std::string::npos)
      << miss.output;

  const auto hit = run_cli(base + hit_csv.string(), w.log);
  ASSERT_EQ(hit.exit_code, 0) << hit.output;
  EXPECT_NE(hit.output.find("plane-cache: hit"), std::string::npos)
      << hit.output;

  const std::string a = slurp(miss_csv);
  const std::string b = slurp(hit_csv);
  ASSERT_GT(a.size(), 100u);
  EXPECT_EQ(a, b);
}

TEST(CliSmoke, PlaneCacheRequiresFlatEngine) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const auto r = run_cli("classify --mrt " + w.mrt() + " --trace " +
                             w.trace() + " --plane-cache " +
                             (w.root / "pc").string(),
                         w.log);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--plane-cache requires --engine flat"),
            std::string::npos)
      << r.output;
}

TEST(CliSmoke, DetectStrictAbortStillEmitsHealthCheckpointAndStats) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  // Flip a bit inside the record region so strict ingest aborts partway.
  const fs::path bad = w.root / "detect-corrupt.trace";
  std::string bytes = slurp(w.trace());
  ASSERT_GT(bytes.size(), 5000u);
  bytes[5000] = static_cast<char>(bytes[5000] ^ 0x10);
  {
    std::ofstream out(bad, std::ios::binary);
    out << bytes;
  }
  const fs::path json_path = w.root / "abort-stats.json";
  const fs::path ckpt = w.root / "abort.ckpt";
  const auto r = run_cli("detect --mrt " + w.mrt() + " --trace " +
                             bad.string() + " --window 1800 --stats-json " +
                             json_path.string() + " --checkpoint " +
                             ckpt.string(),
                         w.log);
  // The abort still fails the run...
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
  // ...but the partial detector state is not swallowed: the health line
  // prints, the last-consistent checkpoint lands, and the stats JSON
  // carries the detector section.
  EXPECT_NE(r.output.find("health:"), std::string::npos) << r.output;
  EXPECT_NE(line_with(r.output, "detect:"), "") << r.output;
  EXPECT_TRUE(fs::exists(ckpt));
  const std::string json = slurp(json_path);
  EXPECT_NE(json.find("\"detector\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"path\":\"" + bad.string() + "\""), std::string::npos)
      << json;
}

TEST(CliSmoke, ReportOverCorruptedTraceStrictFailsSkipRecovers) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const fs::path bad = w.root / "report-corrupt.trace";
  std::string bytes = slurp(w.trace());
  ASSERT_GT(bytes.size(), 5000u);
  bytes[5000] = static_cast<char>(bytes[5000] ^ 0x10);
  {
    std::ofstream out(bad, std::ios::binary);
    out << bytes;
  }

  const auto strict = run_cli("report --mrt " + w.mrt() + " --trace " +
                                  bad.string() + " --rpsl " + w.rpsl(),
                              w.log);
  EXPECT_EQ(strict.exit_code, 1);
  EXPECT_NE(strict.output.find("error:"), std::string::npos) << strict.output;

  const auto skip = run_cli("report --mrt " + w.mrt() + " --trace " +
                                bad.string() + " --rpsl " + w.rpsl() +
                                " --on-error skip",
                            w.log);
  ASSERT_EQ(skip.exit_code, 0) << skip.output;
  // The streaming report survives on the remaining records and still
  // surfaces the degraded ingest.
  EXPECT_NE(skip.output.find("ingest:"), std::string::npos) << skip.output;
  EXPECT_NE(skip.output.find("1 skipped"), std::string::npos) << skip.output;
  EXPECT_NE(skip.output.find("NTP amplification"), std::string::npos)
      << skip.output;
  EXPECT_NE(skip.output.find("incidents ("), std::string::npos) << skip.output;
}

TEST(CliSmoke, StatsJsonSchemaOnReport) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const fs::path bad = w.root / "report-stats-corrupt.trace";
  std::string bytes = slurp(w.trace());
  ASSERT_GT(bytes.size(), 5000u);
  bytes[5000] = static_cast<char>(bytes[5000] ^ 0x10);
  {
    std::ofstream out(bad, std::ios::binary);
    out << bytes;
  }
  const fs::path json_path = w.root / "report-stats.json";
  const auto r = run_cli("report --mrt " + w.mrt() + " --trace " +
                             bad.string() + " --rpsl " + w.rpsl() +
                             " --on-error skip --stats-json " +
                             json_path.string(),
                         w.log);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  const std::string json = slurp(json_path);
  ASSERT_GT(json.size(), 2u);
  EXPECT_EQ(json.front(), '{');
  // Ingest schema: per-source stats including the skipped record.
  EXPECT_NE(json.find("\"sources\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"records_skipped\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"checksum\":1"), std::string::npos) << json;
  // Report section: streaming-pass outcome counters.
  EXPECT_NE(json.find("\"report\":{"), std::string::npos) << json;
  for (const std::string key :
       {"\"flows\":", "\"members\":", "\"incidents\":",
        "\"ntp_trigger_packets\":", "\"evictions\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " " << json;
  }
  // The bounded production tables never evict on the small world.
  EXPECT_NE(json.find("\"evictions\":0"), std::string::npos) << json;
}

TEST(CliSmoke, ServeRejectsBadShardCounts) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const std::string base = "serve --mrt " + w.mrt() + " --trace " + w.trace() +
                           " --socket " + (w.root / "rej.sock").string();
  for (const std::string bad : {"0", "5000"}) {
    const auto r = run_cli(base + " --shards " + bad, w.log);
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(
        r.output.find("--shards must be between 1 and 4096, got: '" + bad + "'"),
        std::string::npos)
        << r.output;
  }
  EXPECT_FALSE(fs::exists(w.root / "rej.sock"));
}

/// Minimal control-socket client: connects once, sends LF-terminated
/// request lines, reads response lines until the status line ("ok..." /
/// "err..."; payload lines never start with either).
class ControlClient {
 public:
  explicit ControlClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  socket_path.c_str());
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ControlClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return fd_ >= 0; }

  /// Sends `request` and returns every response line (status line last).
  std::vector<std::string> transact(const std::string& request) {
    std::vector<std::string> lines;
    const std::string wire = request + "\n";
    if (::send(fd_, wire.data(), wire.size(), 0) !=
        static_cast<ssize_t>(wire.size())) {
      return lines;
    }
    std::string line;
    while (read_line(line)) {
      lines.push_back(line);
      if (line.rfind("ok", 0) == 0 || line.rfind("err", 0) == 0) break;
    }
    return lines;
  }

 private:
  bool read_line(std::string& line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

TEST(CliSmoke, ServeEndToEndOverControlSocket) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const std::string sock = (w.root / "ctl.sock").string();
  const fs::path daemon_log = w.root / "serve.log";

  // One-shot oracle with the same detection knobs and engine.
  const auto detect = run_cli("detect --mrt " + w.mrt() + " --trace " +
                                  w.trace() + " --engine flat --window 1800",
                              w.log);
  ASSERT_EQ(detect.exit_code, 0) << detect.output;
  const std::string want_health = line_with(detect.output, "health:");
  ASSERT_FALSE(want_health.empty());
  std::vector<std::string> want_alerts;
  {
    std::istringstream lines(detect.output);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind("alert:", 0) == 0) want_alerts.push_back(line);
    }
  }
  ASSERT_FALSE(want_alerts.empty());
  // serve's alert listing is in canonical (ts, member) order; detect
  // prints stream order. Compare as sorted sets of lines.
  std::sort(want_alerts.begin(), want_alerts.end());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: become the daemon, output to the log file.
    const int out = ::open(daemon_log.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                           0644);
    if (out >= 0) {
      ::dup2(out, 1);
      ::dup2(out, 2);
      ::close(out);
    }
    ::execl(SPOOFSCOPE_CLI_BIN, SPOOFSCOPE_CLI_BIN, "serve", "--mrt",
            w.mrt().c_str(), "--trace", w.trace().c_str(), "--socket",
            sock.c_str(), "--shards", "3", "--window", "1800",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }

  // Wait for the daemon to bind (or die trying).
  bool up = false;
  for (int i = 0; i < 400 && !up; ++i) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, WNOHANG), 0)
        << "daemon exited early:\n" << slurp(daemon_log);
    ControlClient probe(sock);
    up = probe.connected();
    if (!up) ::usleep(25 * 1000);
  }
  ASSERT_TRUE(up) << slurp(daemon_log);

  ControlClient client(sock);
  ASSERT_TRUE(client.connected());

  const auto submitted = client.transact("submit " + w.trace());
  ASSERT_FALSE(submitted.empty());
  EXPECT_EQ(submitted.back().rfind("ok submitted flows=", 0), 0u)
      << submitted.back();

  const auto drained = client.transact("drain");
  ASSERT_FALSE(drained.empty());
  EXPECT_EQ(drained.back().rfind("ok drained", 0), 0u) << drained.back();

  const auto health = client.transact("health");
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0], want_health);
  EXPECT_EQ(health[1].rfind("ok shards=3 processed=", 0), 0u) << health[1];

  const auto stats = client.transact("stats-json");
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[1], "ok");
  EXPECT_EQ(stats[0].front(), '{');
  EXPECT_NE(stats[0].find("\"shards\":3"), std::string::npos) << stats[0];
  EXPECT_NE(stats[0].find("\"detector\":{"), std::string::npos) << stats[0];

  auto alerts = client.transact("alerts");
  ASSERT_GE(alerts.size(), 2u);
  EXPECT_EQ(alerts.back(),
            "ok alerts=" + std::to_string(want_alerts.size()));
  alerts.pop_back();
  std::sort(alerts.begin(), alerts.end());
  EXPECT_EQ(alerts, want_alerts);

  const auto bogus = client.transact("restart now");
  ASSERT_EQ(bogus.size(), 1u);
  EXPECT_EQ(bogus[0], "err unknown command: restart");

  const auto bye = client.transact("shutdown");
  ASSERT_EQ(bye.size(), 1u);
  EXPECT_EQ(bye[0], "ok shutting-down");

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << slurp(daemon_log);
  EXPECT_FALSE(fs::exists(sock)) << "socket not unlinked on shutdown";
}

TEST(CliSmoke, UnwritableLabelsPathFails) {
  auto& w = cli_world();
  ASSERT_TRUE(w.generated);
  const auto r = run_cli(
      "classify --mrt " + w.mrt() + " --trace " + w.trace() +
          " --labels /nonexistent-spoofscope-dir/labels.csv",
      w.log);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

}  // namespace
