#include "analysis/export.hpp"

#include "util/csv.hpp"

namespace spoofscope::analysis {

namespace {

const char* class_label(int c) {
  static const char* kNames[] = {"bogon", "unrouted", "invalid", "regular"};
  return kNames[c];
}

}  // namespace

void export_table1_csv(std::ostream& out, std::span<const Table1Column> columns) {
  util::CsvWriter w(out);
  w.row({"column", "members", "member_fraction", "bytes", "bytes_fraction",
         "packets", "packets_fraction"});
  for (const auto& c : columns) {
    w.row_of(c.name, c.members, c.member_fraction, c.bytes, c.bytes_fraction,
             c.packets, c.packets_fraction);
  }
}

void export_distribution_csv(std::ostream& out,
                             std::span<const util::DistPoint> points) {
  util::CsvWriter w(out);
  w.row({"x", "y"});
  for (const auto& p : points) w.row_of(p.x, p.y);
}

void export_valid_sizes_csv(std::ostream& out,
                            std::span<const std::pair<Asn, double>> sizes) {
  util::CsvWriter w(out);
  w.row({"asn", "slash24_equivalents"});
  for (const auto& [asn, s] : sizes) w.row_of(asn, s);
}

void export_venn_csv(std::ostream& out, const VennCounts& v) {
  util::CsvWriter w(out);
  w.row({"region", "fraction"});
  w.row_of("clean", v.clean);
  w.row_of("bogon_only", v.only_bogon);
  w.row_of("unrouted_only", v.only_unrouted);
  w.row_of("invalid_only", v.only_invalid);
  w.row_of("bogon_unrouted", v.bogon_unrouted);
  w.row_of("bogon_invalid", v.bogon_invalid);
  w.row_of("unrouted_invalid", v.unrouted_invalid);
  w.row_of("all_three", v.all_three);
}

void export_business_csv(std::ostream& out,
                         std::span<const BusinessPoint> points) {
  util::CsvWriter w(out);
  w.row({"asn", "type", "total_packets", "share_bogon", "share_unrouted",
         "share_invalid"});
  for (const auto& p : points) {
    w.row_of(p.member, topo::business_name(p.type), p.total_packets,
             p.share_bogon, p.share_unrouted, p.share_invalid);
  }
}

void export_time_series_csv(std::ostream& out, const ClassTimeSeries& ts) {
  util::CsvWriter w(out);
  w.row({"bin_start_seconds", "bogon", "unrouted", "invalid", "regular"});
  const std::size_t bins = ts.series[0].size();
  for (std::size_t b = 0; b < bins; ++b) {
    w.row_of(b * ts.bin_seconds, ts.series[0][b], ts.series[1][b],
             ts.series[2][b], ts.series[3][b]);
  }
}

void export_port_mix_csv(std::ostream& out, const PortMix& mix) {
  util::CsvWriter w(out);
  w.row({"class", "transport", "direction", "port", "fraction"});
  for (int c = 0; c < kNumClasses; ++c) {
    for (int t = 0; t < 2; ++t) {
      for (int d = 0; d < 2; ++d) {
        for (const auto& s : mix.shares[c][t][d]) {
          w.row_of(class_label(c), t == 0 ? "tcp" : "udp",
                   d == 0 ? "dst" : "src",
                   s.port == 0 ? std::string("other") : std::to_string(s.port),
                   s.fraction);
        }
      }
    }
  }
}

void export_address_structure_csv(std::ostream& out, const AddressStructure& a) {
  util::CsvWriter w(out);
  w.row({"class", "direction", "slash8", "packets"});
  for (int c = 0; c < kNumClasses; ++c) {
    for (int i = 0; i < 256; ++i) {
      if (a.src[c][i] > 0) w.row_of(class_label(c), "src", i, a.src[c][i]);
      if (a.dst[c][i] > 0) w.row_of(class_label(c), "dst", i, a.dst[c][i]);
    }
  }
}

void export_ntp_victims_csv(std::ostream& out,
                            std::span<const NtpVictim> victims) {
  util::CsvWriter w(out);
  w.row({"victim", "rank", "packets"});
  for (const auto& v : victims) {
    for (std::size_t r = 0; r < v.packets_per_amplifier.size(); ++r) {
      w.row_of(v.victim.str(), r + 1, v.packets_per_amplifier[r]);
    }
  }
}

void export_amplification_csv(std::ostream& out,
                              const AmplificationTimeseries& ts) {
  util::CsvWriter w(out);
  w.row({"bin_start_seconds", "pkts_to_amplifier", "pkts_from_amplifier",
         "bytes_to_amplifier", "bytes_from_amplifier"});
  for (std::size_t b = 0; b < ts.packets_to_amplifier.size(); ++b) {
    w.row_of(b * ts.bin_seconds, ts.packets_to_amplifier[b],
             ts.packets_from_amplifier[b], ts.bytes_to_amplifier[b],
             ts.bytes_from_amplifier[b]);
  }
}

}  // namespace spoofscope::analysis
