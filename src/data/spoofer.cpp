#include "data/spoofer.hpp"

#include "util/rng.hpp"

namespace spoofscope::data {

std::vector<SpooferRecord> run_spoofer_campaign(const topo::Topology& topo,
                                                const SpooferParams& params,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<SpooferRecord> out;
  for (const auto& as : topo.ases()) {
    if (!rng.chance(params.probe_coverage)) continue;
    if (rng.chance(params.behind_nat_prob)) continue;  // excluded (footnote 5)
    SpooferRecord rec;
    rec.asn = as.asn;
    // The probe escapes iff the host AS does not validate egress sources;
    // it still has to survive on-path filtering to be counted received.
    rec.spoofable =
        !as.filter.blocks_spoofed && !rng.chance(params.on_path_filter_prob);
    out.push_back(rec);
  }
  return out;
}

}  // namespace spoofscope::data
