#include "analysis/table1.hpp"

#include <sstream>

#include "classify/classifier.hpp"
#include "util/format.hpp"

namespace spoofscope::analysis {

namespace {

using classify::TrafficClass;
using inference::Method;

Table1Column column_from(const classify::Aggregate& agg, const std::string& name,
                         std::size_t space_idx, TrafficClass cls, double scale,
                         std::size_t total_members) {
  const auto& cell = agg.totals[space_idx][static_cast<int>(cls)];
  Table1Column col;
  col.name = name;
  col.members = cell.members;
  col.member_fraction =
      total_members > 0 ? static_cast<double>(cell.members) / total_members : 0;
  col.bytes = cell.bytes * scale;
  col.bytes_fraction = agg.total_bytes > 0 ? cell.bytes / agg.total_bytes : 0;
  col.packets = cell.packets * scale;
  col.packets_fraction =
      agg.total_packets > 0 ? cell.packets / agg.total_packets : 0;
  return col;
}

}  // namespace

std::vector<Table1Column> table1_columns(const classify::Aggregate& agg,
                                         double scale,
                                         std::size_t total_members) {
  // Table 1 allows bidirectional traffic inside multi-AS organizations
  // (Sec 4.3), i.e. the cone columns are the org-adjusted variants.
  const auto full = static_cast<std::size_t>(Method::kFullConeOrg);
  const auto naive = static_cast<std::size_t>(Method::kNaive);
  const auto cc = static_cast<std::size_t>(Method::kCustomerConeOrg);
  std::vector<Table1Column> out;
  out.push_back(column_from(agg, "Bogon", full, TrafficClass::kBogon, scale,
                            total_members));
  out.push_back(column_from(agg, "Unrouted", full, TrafficClass::kUnrouted,
                            scale, total_members));
  out.push_back(column_from(agg, "Invalid FULL", full, TrafficClass::kInvalid,
                            scale, total_members));
  out.push_back(column_from(agg, "Invalid NAIVE", naive, TrafficClass::kInvalid,
                            scale, total_members));
  out.push_back(column_from(agg, "Invalid CC", cc, TrafficClass::kInvalid,
                            scale, total_members));
  return out;
}

std::string format_table1(const std::vector<Table1Column>& columns) {
  std::ostringstream os;
  os << util::pad_right("", 9);
  for (const auto& c : columns) os << util::pad_left(c.name, 24);
  os << "\n" << util::pad_right("members", 9);
  for (const auto& c : columns) {
    os << util::pad_left(std::to_string(c.members) + " (" +
                             util::percent(c.member_fraction) + ")",
                         24);
  }
  os << "\n" << util::pad_right("bytes", 9);
  for (const auto& c : columns) {
    os << util::pad_left(util::human_bytes(c.bytes) + " (" +
                             util::percent(c.bytes_fraction) + ")",
                         24);
  }
  os << "\n" << util::pad_right("packets", 9);
  for (const auto& c : columns) {
    os << util::pad_left(util::human_count(c.packets) + " (" +
                             util::percent(c.packets_fraction) + ")",
                         24);
  }
  os << "\n";
  return os.str();
}

}  // namespace spoofscope::analysis
