file(REMOVE_RECURSE
  "libspoofscope_classify.a"
)
