// Shard routing for the resident detection service: flows are assigned
// to ingest shards by a hash of the injecting member AS, so every flow
// of one member lands on one shard and that shard's StreamingDetector
// sees exactly the member subsequence of the trace, in trace order.
//
// Why this decomposes the one-shot computation exactly: the detector's
// window accounting is per member — samples, spoofed/total counters,
// alert thresholds and cooldown all live in one member's MemberWindow
// and never read another member's state. Splitting a nondecreasing-ts
// flow sequence by member and replaying each part through its own
// detector therefore reproduces the one-shot alerts and counters bit
// for bit (the global couplings — the ts-regression guard, the reorder
// watermark, the member/record caps — only engage on disordered input
// or bounded configurations; DESIGN.md §16 walks the argument).
//
// The hash is a fixed Fibonacci multiply, not std::hash: shard
// placement is part of the service's checkpoint contract (a shard's
// delta chain names its index), so it must be identical across
// processes, libstdc++ versions and runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/flow.hpp"

namespace spoofscope::net {
class FlowBatch;
}

namespace spoofscope::service {

/// The shard owning member `m` in an `n`-shard service. Deterministic
/// and process-independent; n must be >= 1.
inline std::size_t shard_of(net::Asn member, std::size_t n) {
  // Fibonacci hashing: the multiplier is 2^64 / phi, so consecutive
  // ASNs (the common allocation pattern) spread across shards instead
  // of striping.
  const std::uint64_t h =
      static_cast<std::uint64_t>(member) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>((h >> 33) % n);
}

/// Scatters batches into per-shard batches, preserving trace order
/// within each shard (stable partition by shard_of). The lanes vector
/// is caller-owned scratch, recycled across calls like FlowBatch.
class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shards) : shards_(shards) {}

  std::size_t shards() const { return shards_; }

  /// Appends every record of `batch` to lanes[shard_of(member_in)].
  /// `lanes` is resized to the shard count; existing contents are kept
  /// (callers clear() per routing round to reuse lane capacity).
  void route(const net::FlowBatch& batch, std::vector<net::FlowBatch>& lanes) const;

 private:
  std::size_t shards_;
};

}  // namespace spoofscope::service
