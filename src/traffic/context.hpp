// Shared sampling machinery for the workload component generators:
// member/address/timestamp selection, ground-truth egress filtering and
// the exit-member mapping (which member a destination is reached through).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ixp/ixp.hpp"
#include "net/flow.hpp"
#include "topo/topology.hpp"
#include "traffic/workload.hpp"
#include "trie/interval_set.hpp"
#include "util/rng.hpp"

namespace spoofscope::traffic {

using net::Asn;

/// Immutable per-workload context. Component generators draw members,
/// addresses and timestamps through it so all components agree on ground
/// truth.
class TrafficContext {
 public:
  TrafficContext(const topo::Topology& topo, const ixp::Ixp& ixp,
                 const WorkloadParams& params, std::uint64_t seed);

  const topo::Topology& topo() const { return *topo_; }
  const ixp::Ixp& ixp() const { return *ixp_; }
  const WorkloadParams& params() const { return *params_; }

  // --- member selection ---------------------------------------------------

  /// Member weighted by traffic share (regular traffic origination).
  const ixp::Member& weighted_member(util::Rng& rng) const;

  /// Uniformly random member.
  const ixp::Member& uniform_member(util::Rng& rng) const;

  /// The member through which destination `dst` is reached: the owner AS
  /// if it is a member, else the nearest member up its provider chain,
  /// else a traffic-weighted fallback member.
  Asn exit_member_for(net::Ipv4Addr dst, util::Rng& rng) const;

  // --- address sampling ----------------------------------------------------

  /// Uniform address inside a prefix.
  static net::Ipv4Addr addr_in(const net::Prefix& p, util::Rng& rng);

  /// Random address in the AS's *announced* space (weighted by prefix
  /// size). Falls back to any allocated prefix if nothing is announced.
  net::Ipv4Addr announced_addr(Asn asn, util::Rng& rng) const;

  /// A legitimate egress source for a member: mostly its own announced
  /// space, sometimes a (ground-truth) customer's or sibling's.
  net::Ipv4Addr legitimate_src(Asn member, util::Rng& rng) const;

  /// A plausible destination address behind `member`.
  net::Ipv4Addr dst_behind(Asn member, util::Rng& rng) const;

  /// The announced space of the member plus everything it transits for
  /// (ground-truth customers, transitively, and siblings) — what a
  /// BCP38-compliant egress ACL of that member would allow.
  const trie::IntervalSet& ground_truth_space(Asn member) const;

  /// True if the AS's ground-truth egress policy lets a packet with
  /// source `src` leave the network.
  bool egress_allows(const topo::AsInfo& as, net::Ipv4Addr src) const;

  // --- time ----------------------------------------------------------------

  /// Timestamp following the fabric's diurnal profile.
  std::uint32_t diurnal_ts(util::Rng& rng) const;

  /// Uniform timestamp in the window.
  std::uint32_t uniform_ts(util::Rng& rng) const;

  // --- attack infrastructure -----------------------------------------------

  /// The global pool of NTP servers usable as amplifiers: (address,
  /// owner AS).
  const std::vector<std::pair<net::Ipv4Addr, Asn>>& ntp_servers() const {
    return ntp_servers_;
  }

 private:
  const topo::Topology* topo_;
  const ixp::Ixp* ixp_;
  const WorkloadParams* params_;

  std::vector<double> member_cdf_;  // cumulative traffic weights
  std::unordered_map<Asn, trie::IntervalSet> gt_space_;   // per member
  std::unordered_map<Asn, Asn> exit_member_;              // per AS
  std::vector<double> hour_cdf_;                          // 24-bin diurnal
  std::vector<std::pair<net::Ipv4Addr, Asn>> ntp_servers_;
  trie::IntervalSet empty_;
};

/// Builds a flow record with the common fields filled in.
net::FlowRecord make_flow(std::uint32_t ts, net::Ipv4Addr src, net::Ipv4Addr dst,
                          net::Proto proto, std::uint16_t sport,
                          std::uint16_t dport, std::uint32_t packets,
                          std::uint64_t bytes, Asn member_in, Asn member_out);

}  // namespace spoofscope::traffic
