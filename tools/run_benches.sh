#!/usr/bin/env bash
# Build and run the core performance benchmarks, recording machine-readable
# results at the repo root as BENCH_perf_core.json.
#
# Usage: tools/run_benches.sh [extra google-benchmark flags...]
#   e.g. tools/run_benches.sh --benchmark_filter='Flat'
#
# JSON goes through --benchmark_out (not stdout) so the reproduction report
# the binary prints after the runs cannot corrupt it.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
OUT_JSON="${REPO_ROOT}/BENCH_perf_core.json"

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" >/dev/null
cmake --build "${BUILD_DIR}" --target bench_perf_core -j "$(nproc)"

"${BUILD_DIR}/bench/bench_perf_core" \
  --benchmark_out="${OUT_JSON}" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${OUT_JSON}"

# Machine-check the constant-memory claim: BM_ReportStreaming records
# rss_growth_kb (resident-set delta across the bench loop) per trace
# multiplier; streaming report memory must not scale with trace length,
# so the 10x growth may exceed the 1x growth only by a fixed slack.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${OUT_JSON}" <<'PY'
import json, sys

SLACK_KB = 32 * 1024  # allocator noise, not O(trace) growth

growth = {}
for b in json.load(open(sys.argv[1]))["benchmarks"]:
    name = b.get("name", "")
    if name.startswith("BM_ReportStreaming/trace_mult:"):
        mult = int(name.split("trace_mult:")[1].split("/")[0])
        growth[mult] = b.get("rss_growth_kb", 0.0)
if 1 in growth and 10 in growth:
    line = (f"BM_ReportStreaming rss_growth_kb: "
            f"1x={growth[1]:.0f} 10x={growth[10]:.0f}")
    if growth[10] > growth[1] + SLACK_KB:
        sys.exit(f"FAIL constant-memory check: {line} "
                 f"(10x grew >{SLACK_KB}KB past 1x)")
    print(f"OK constant-memory check: {line}")
PY
fi
