#include "data/rpsl.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/prefix.hpp"
#include "topo/generator.hpp"

namespace spoofscope::data {
namespace {

using net::pfx;

TEST(Rpsl, SerializeRouteObject) {
  RouteObject r;
  r.prefix = pfx("20.0.50.0/24");
  r.origin = 64500;
  r.maintainer = 64499;
  r.descr = "provider-assigned";
  const std::string text = to_rpsl(r);
  EXPECT_NE(text.find("route:      20.0.50.0/24"), std::string::npos);
  EXPECT_NE(text.find("origin:     AS64500"), std::string::npos);
  EXPECT_NE(text.find("mnt-by:     AS64499-MNT"), std::string::npos);
}

TEST(Rpsl, SerializeOwnMaintainerOmitsMntBy) {
  RouteObject r;
  r.prefix = pfx("20.0.0.0/16");
  r.origin = 64500;
  r.maintainer = 64500;
  EXPECT_EQ(to_rpsl(r).find("mnt-by"), std::string::npos);
}

TEST(Rpsl, SerializeAutNum) {
  AutNumObject a;
  a.asn = 64501;
  a.import_peers = {64502};
  a.export_peers = {64502};
  const std::string text = to_rpsl(a);
  EXPECT_NE(text.find("aut-num:    AS64501"), std::string::npos);
  EXPECT_NE(text.find("import:     from AS64502 accept ANY"), std::string::npos);
  EXPECT_NE(text.find("export:     to AS64502 announce ANY"), std::string::npos);
}

TEST(Rpsl, ParseRouteObjects) {
  std::stringstream ss;
  ss << "% comment\n"
     << "route: 20.0.50.0/24\n"
     << "origin: AS64500\n"
     << "descr: pa space\n"
     << "mnt-by: AS64499-MNT\n"
     << "\n"
     << "route:20.1.0.0/16\n"
     << "origin:as64501\n"
     << "source: TEST   # unknown attribute, ignored\n";
  const auto db = parse_rpsl(ss);
  ASSERT_EQ(db.routes.size(), 2u);
  EXPECT_EQ(db.routes[0].prefix, pfx("20.0.50.0/24"));
  EXPECT_EQ(db.routes[0].origin, 64500u);
  EXPECT_EQ(db.routes[0].maintainer, 64499u);
  EXPECT_EQ(db.routes[0].descr, "pa space");
  EXPECT_EQ(db.routes[1].origin, 64501u);
  EXPECT_EQ(db.routes[1].maintainer, net::kNoAsn);
}

TEST(Rpsl, ParseAutNums) {
  std::stringstream ss;
  ss << "aut-num: AS1\n"
     << "import: from AS2 accept ANY\n"
     << "export: to AS2 announce ANY\n"
     << "\n"
     << "aut-num: AS2\n"
     << "import: from AS1 accept ANY\n"
     << "export: to AS1 announce ANY\n";
  const auto db = parse_rpsl(ss);
  ASSERT_EQ(db.aut_nums.size(), 2u);
  EXPECT_EQ(db.aut_nums[0].asn, 1u);
  EXPECT_EQ(db.aut_nums[0].import_peers, std::vector<net::Asn>{2});
}

TEST(Rpsl, ParseRejectsMalformed) {
  const auto parse_str = [](const std::string& s) {
    std::stringstream ss(s);
    return parse_rpsl(ss);
  };
  EXPECT_THROW(parse_str("route: not-a-prefix\norigin: AS1\n"), std::runtime_error);
  EXPECT_THROW(parse_str("route: 20.0.0.0/16\norigin: 64500\n"), std::runtime_error);
  EXPECT_THROW(parse_str("route: 20.0.0.0/16\n"), std::runtime_error);  // no origin
  EXPECT_THROW(parse_str("origin: AS5\n"), std::runtime_error);  // outside object
  EXPECT_THROW(parse_str("import: from AS2 accept ANY\n"), std::runtime_error);
  EXPECT_THROW(parse_str("garbage line without colon\n"), std::runtime_error);
}

TEST(Rpsl, RegistryRoundTrip) {
  // Build a registry from a generated topology, export, re-import, and
  // compare the recoverable information.
  topo::TopologyParams tp;
  tp.num_tier1 = 3;
  tp.num_transit = 8;
  tp.num_isp = 25;
  tp.num_hosting = 15;
  tp.num_content = 8;
  tp.num_other = 16;
  const auto topo = topo::generate_topology(tp, 31);
  WhoisParams wp;
  wp.provider_assigned_prob = 0.6;
  wp.reveal_invisible_link_prob = 1.0;
  const auto original = build_whois(topo, wp, 32);
  ASSERT_FALSE(original.provider_assigned().empty());

  std::stringstream ss(registry_to_rpsl(original));
  const auto db = parse_rpsl(ss);
  const auto rebuilt = registry_from_rpsl(db);

  ASSERT_EQ(rebuilt.provider_assigned().size(),
            original.provider_assigned().size());
  for (std::size_t i = 0; i < original.provider_assigned().size(); ++i) {
    EXPECT_EQ(rebuilt.provider_assigned()[i].customer,
              original.provider_assigned()[i].customer);
    EXPECT_EQ(rebuilt.provider_assigned()[i].provider,
              original.provider_assigned()[i].provider);
    EXPECT_EQ(rebuilt.provider_assigned()[i].range,
              original.provider_assigned()[i].range);
  }
  EXPECT_EQ(rebuilt.documented_link_count(), original.documented_link_count());
  // Recoverable ranges must agree (as sets) for every AS involved.
  for (const auto& pa : original.provider_assigned()) {
    auto a = rebuilt.recoverable_ranges(topo, pa.customer);
    auto b = original.recoverable_ranges(topo, pa.customer);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(Rpsl, OneSidedPolicyIsNotALink) {
  std::stringstream ss;
  ss << "aut-num: AS1\n"
     << "import: from AS2 accept ANY\n"
     << "export: to AS2 announce ANY\n"
     << "\n"
     << "aut-num: AS2\n"
     << "import: from AS1 accept ANY\n";  // AS2 never exports to AS1
  const auto rebuilt = registry_from_rpsl(parse_rpsl(ss));
  EXPECT_EQ(rebuilt.documented_link_count(), 0u);
}

}  // namespace
}  // namespace spoofscope::data
