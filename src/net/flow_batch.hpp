// Structure-of-arrays flow chunk — the unit of work of the batched data
// plane. A FlowBatch holds the same fields as a run of FlowRecords, but
// each field lives in its own contiguous lane so downstream kernels
// (classification, aggregation) stream exactly the lanes they touch:
// classify reads src+member_in, aggregation reads member_in+packets+bytes,
// and the untouched lanes never enter the cache.
//
// Batches are refillable: clear() resets the size but keeps every lane's
// capacity, so a reader looping `next_batch(batch, n)` performs no
// allocation after the first chunk reaches the high-water mark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/flow.hpp"

namespace spoofscope::net {

class FlowBatch {
 public:
  /// Number of flows currently in the batch.
  std::size_t size() const { return ts_.size(); }
  bool empty() const { return ts_.empty(); }

  /// Drops the contents but keeps lane capacity (no deallocation).
  void clear();

  /// Pre-sizes every lane for `n` flows.
  void reserve(std::size_t n);

  /// Appends one flow, scattering its fields into the lanes.
  void push_back(const FlowRecord& f);

  /// Gathers flow `i` back into an AoS record (bit-identical to the
  /// record that was pushed).
  FlowRecord record(std::size_t i) const;

  /// Appends all flows, gathered back to AoS form, to `out`.
  void append_to(std::vector<FlowRecord>& out) const;

  // Lanes. Raw address values (Ipv4Addr::value()) are stored for src/dst
  // so classification kernels can shift/mask without unwrapping.
  std::span<const std::uint32_t> ts() const { return ts_; }
  std::span<const std::uint32_t> src() const { return src_; }
  std::span<const std::uint32_t> dst() const { return dst_; }
  std::span<const std::uint8_t> proto() const { return proto_; }
  std::span<const std::uint16_t> sport() const { return sport_; }
  std::span<const std::uint16_t> dport() const { return dport_; }
  std::span<const std::uint32_t> packets() const { return packets_; }
  std::span<const std::uint64_t> bytes() const { return bytes_; }
  std::span<const Asn> member_in() const { return member_in_; }
  std::span<const Asn> member_out() const { return member_out_; }

 private:
  std::vector<std::uint32_t> ts_;
  std::vector<std::uint32_t> src_;
  std::vector<std::uint32_t> dst_;
  std::vector<std::uint8_t> proto_;
  std::vector<std::uint16_t> sport_;
  std::vector<std::uint16_t> dport_;
  std::vector<std::uint32_t> packets_;
  std::vector<std::uint64_t> bytes_;
  std::vector<Asn> member_in_;
  std::vector<Asn> member_out_;
};

}  // namespace spoofscope::net
