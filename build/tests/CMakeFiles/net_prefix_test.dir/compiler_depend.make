# Empty compiler generated dependencies file for net_prefix_test.
# This may be replaced when dependencies are built.
