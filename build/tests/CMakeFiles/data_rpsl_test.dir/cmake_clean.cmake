file(REMOVE_RECURSE
  "CMakeFiles/data_rpsl_test.dir/data_rpsl_test.cpp.o"
  "CMakeFiles/data_rpsl_test.dir/data_rpsl_test.cpp.o.d"
  "data_rpsl_test"
  "data_rpsl_test.pdb"
  "data_rpsl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_rpsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
