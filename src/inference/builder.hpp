// Builds ValidSpace instances from observed routing data: constructs the
// cone engines once (full cone, customer cone, each with and without the
// multi-AS organization mesh) and derives per-AS valid address space by
// uniting the announced space of every origin inside the AS's cone.
#pragma once

#include <memory>
#include <span>

#include "asgraph/customer_cone.hpp"
#include "asgraph/full_cone.hpp"
#include "asgraph/org_merge.hpp"
#include "asgraph/relationship.hpp"
#include "bgp/routing_table.hpp"
#include "inference/valid_space.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::inference {

/// One-stop factory for the five inference methods over a routing table.
class ValidSpaceFactory {
 public:
  /// Builds all cone engines. `orgs` provides the multi-AS organization
  /// grouping (from the as2org dataset); pass an empty OrgMap to disable
  /// org adjustments (the org-variants then equal their plain versions).
  ValidSpaceFactory(const bgp::RoutingTable& table, asgraph::OrgMap orgs,
                    asgraph::RelationshipOptions rel_options = {});

  /// Computes the valid space of each AS in `members` under `method`.
  ValidSpace build(Method method, std::span<const Asn> members) const;

  /// Parallel variant: each member's space is independent, so the
  /// construction fans out across `pool` into a pre-sized per-index
  /// vector. The result is identical to the sequential build.
  ValidSpace build(Method method, std::span<const Asn> members,
                   util::ThreadPool& pool) const;

  /// Valid space of every AS observed in the routing data — the Fig 2
  /// dataset. Returns (asn, /24-equivalents) sorted by size ascending.
  std::vector<std::pair<Asn, double>> valid_sizes(Method method) const;

  /// Parallel variant of valid_sizes; identical result.
  std::vector<std::pair<Asn, double>> valid_sizes(Method method,
                                                  util::ThreadPool& pool) const;

  /// The cone of `member` (set of origin ASes) under `method`; for
  /// kNaive this is the set of origins of prefixes on the AS's paths.
  std::vector<Asn> cone_of(Method method, Asn member) const;

  const bgp::RoutingTable& table() const { return *table_; }
  const asgraph::OrgMap& orgs() const { return orgs_; }
  const asgraph::FullCone& full_cone() const { return *full_; }
  const asgraph::FullCone& full_cone_org() const { return *full_org_; }
  const asgraph::CustomerCone& customer_cone() const { return *cc_; }
  const asgraph::CustomerCone& customer_cone_org() const { return *cc_org_; }
  std::span<const asgraph::InferredLink> inferred_links() const { return links_; }

 private:
  trie::IntervalSet space_for(Method method, Asn member) const;

  const bgp::RoutingTable* table_;
  asgraph::OrgMap orgs_;
  std::vector<asgraph::InferredLink> links_;
  std::unique_ptr<asgraph::FullCone> full_;
  std::unique_ptr<asgraph::FullCone> full_org_;
  std::unique_ptr<asgraph::CustomerCone> cc_;
  std::unique_ptr<asgraph::CustomerCone> cc_org_;
  /// Announced intervals per origin AS (MOAS prefixes credited to every
  /// origin).
  std::unordered_map<Asn, std::vector<trie::Interval>> origin_intervals_;
};

}  // namespace spoofscope::inference
