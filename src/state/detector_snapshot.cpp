// StreamingDetector checkpoint payload (PayloadKind::kDetector) on the
// snapshot container. The detector is a pure function of the ingested
// flow sequence, so persisting its explicit state — windows, reorder
// buffer, health counters, stream cursor — and the config hash is
// sufficient for a restored run to continue bit-identically.
//
// Serialization choices that bit-identity depends on:
//  - Window aggregates (spoofed/total/per_class) are stored as IEEE-754
//    bit patterns, not recomputed from samples on load: the running
//    sums accumulate in ingest order, and re-summing in any other
//    order could change the low bits and flip a threshold comparison.
//  - Members are written in ascending ASN order and the reorder buffer
//    in its (ts, seq) pop order, so equal states serialize to equal
//    bytes regardless of hash-map iteration order.
//  - Pending FlowRecords carry full-width 32-bit ASNs (the trace
//    format's 16-bit truncation never touches checkpoints).
//  - The idle-eviction index is not stored; it is a pure function of
//    the windows ({(last_seen_ts, member)}) and is rebuilt on load.
//
// These member functions live in the state library (not classify) so
// the classify layer stays independent of the persistence layer.
#include <algorithm>
#include <utility>
#include <vector>

#include "classify/streaming.hpp"
#include "net/mapped_trace.hpp"
#include "state/snapshot.hpp"

namespace spoofscope::classify {

namespace {

constexpr std::uint32_t kDetectorPayloadVersion = 1;

// Section ids.
constexpr std::uint32_t kSecConfig = 1;   ///< config hash + raw knobs
constexpr std::uint32_t kSecStream = 2;   ///< cursor + health counters
constexpr std::uint32_t kSecWindows = 3;  ///< per-member windows
constexpr std::uint32_t kSecPending = 4;  ///< reorder buffer

std::uint64_t fnv64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

[[noreturn]] void corrupt(const char* what) {
  throw state::SnapshotError(util::ErrorKind::kParse, what);
}

}  // namespace

std::uint64_t StreamingDetector::config_hash() const {
  state::SectionBuilder b;
  b.u32(params_.window_seconds);
  b.f64(params_.min_spoofed_packets);
  b.f64(params_.min_share);
  b.u32(params_.cooldown_seconds);
  b.u32(params_.reorder_skew_seconds);
  b.u64(params_.max_reorder_records);
  b.u64(params_.max_members);
  b.u64(params_.max_window_samples);
  b.u64(space_idx_);
  const std::vector<std::uint8_t> bytes = b.take();
  return fnv64({bytes.data(), bytes.size()});
}

void StreamingDetector::save(const std::string& path) const {
  state::SnapshotWriter writer(state::PayloadKind::kDetector,
                               kDetectorPayloadVersion);
  {
    state::SectionBuilder b;
    b.u64(config_hash());
    // The raw knobs ride along for diagnostics (the hash alone cannot
    // tell an operator *which* knob differs).
    b.u32(params_.window_seconds);
    b.f64(params_.min_spoofed_packets);
    b.f64(params_.min_share);
    b.u32(params_.cooldown_seconds);
    b.u32(params_.reorder_skew_seconds);
    b.u64(params_.max_reorder_records);
    b.u64(params_.max_members);
    b.u64(params_.max_window_samples);
    b.u64(space_idx_);
    writer.add_section(kSecConfig, b.take());
  }
  {
    state::SectionBuilder b;
    b.u32(watermark_);
    b.u32(last_released_ts_);
    b.u64(seq_);
    b.u8(saw_any_ ? 1 : 0);
    b.u8(released_any_ ? 1 : 0);
    b.u64(processed_);
    b.u64(health_.regressions);
    b.u64(health_.late_drops);
    b.u64(health_.forced_releases);
    b.u64(health_.member_evictions);
    b.u64(health_.sample_evictions);
    b.u64(health_.max_reorder_depth);
    b.u64(health_.max_window_depth);
    writer.add_section(kSecStream, b.take());
  }
  {
    std::vector<Asn> members;
    members.reserve(windows_.size());
    for (const auto& [member, w] : windows_) members.push_back(member);
    std::sort(members.begin(), members.end());
    state::SectionBuilder b;
    b.u64(members.size());
    for (const Asn member : members) {
      const MemberWindow& w = windows_.at(member);
      b.u32(member);
      b.u32(w.last_alert_ts);
      b.u32(w.last_seen_ts);
      b.u8(w.alerted_once ? 1 : 0);
      b.f64(w.spoofed);
      b.f64(w.total);
      for (const double c : w.per_class) b.f64(c);
      b.u64(w.samples.size());
      for (const Sample& s : w.samples) {
        b.u32(s.ts);
        b.u32(s.packets);
        b.u8(static_cast<std::uint8_t>(s.cls));
      }
    }
    writer.add_section(kSecWindows, b.take());
  }
  {
    state::SectionBuilder b;
    b.u64(pending_.size());
    auto pq = pending_;  // pop order is the deterministic (ts, seq) order
    while (!pq.empty()) {
      const Pending& p = pq.top();
      b.u64(p.seq);
      b.u32(p.flow.ts);
      b.u32(p.flow.src.value());
      b.u32(p.flow.dst.value());
      b.u8(static_cast<std::uint8_t>(p.flow.proto));
      b.u16(p.flow.sport);
      b.u16(p.flow.dport);
      b.u32(p.flow.packets);
      b.u64(p.flow.bytes);
      b.u32(p.flow.member_in);
      b.u32(p.flow.member_out);
      pq.pop();
    }
    writer.add_section(kSecPending, b.take());
  }
  writer.write_atomic(path);
}

void StreamingDetector::reset_state() {
  windows_.clear();
  idle_index_.clear();
  pending_ = decltype(pending_){};
  watermark_ = 0;
  last_released_ts_ = 0;
  seq_ = 0;
  saw_any_ = false;
  released_any_ = false;
  processed_ = 0;
  health_ = {};
}

bool StreamingDetector::restore(const std::string& path,
                                util::ErrorPolicy policy,
                                util::IngestStats* stats) {
  util::IngestStats own;
  util::IngestStats& st = stats ? *stats : own;
  const bool strict = policy == util::ErrorPolicy::kStrict;
  try {
    const net::MappedTrace file(path);
    const state::SnapshotView snap = state::parse_snapshot(
        file.bytes(), state::PayloadKind::kDetector, kDetectorPayloadVersion);

    {
      state::SectionReader r(snap.section(kSecConfig));
      if (r.u64() != config_hash()) {
        corrupt("checkpoint was taken under a different configuration");
      }
    }

    reset_state();
    {
      state::SectionReader r(snap.section(kSecStream));
      watermark_ = r.u32();
      last_released_ts_ = r.u32();
      seq_ = r.u64();
      saw_any_ = r.u8() != 0;
      released_any_ = r.u8() != 0;
      processed_ = r.u64();
      health_.regressions = r.u64();
      health_.late_drops = r.u64();
      health_.forced_releases = r.u64();
      health_.member_evictions = r.u64();
      health_.sample_evictions = r.u64();
      health_.max_reorder_depth = r.u64();
      health_.max_window_depth = r.u64();
      if (r.remaining() != 0) corrupt("trailing bytes in stream section");
    }
    {
      state::SectionReader r(snap.section(kSecWindows));
      const std::uint64_t count = r.u64();
      windows_.reserve(count);
      Asn prev = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        const Asn member = r.u32();
        if (i > 0 && member <= prev) corrupt("windows out of order");
        prev = member;
        MemberWindow w;
        w.last_alert_ts = r.u32();
        w.last_seen_ts = r.u32();
        w.alerted_once = r.u8() != 0;
        w.spoofed = r.f64();
        w.total = r.f64();
        for (double& c : w.per_class) c = r.f64();
        const std::uint64_t nsamples = r.u64();
        for (std::uint64_t j = 0; j < nsamples; ++j) {
          Sample s;
          s.ts = r.u32();
          s.packets = r.u32();
          const std::uint8_t cls = r.u8();
          if (cls >= kNumClasses) corrupt("sample class out of range");
          s.cls = static_cast<TrafficClass>(cls);
          w.samples.push_back(s);
        }
        if (params_.max_members != 0) {
          idle_index_.insert({w.last_seen_ts, member});
        }
        windows_.emplace(member, std::move(w));
      }
      if (r.remaining() != 0) corrupt("trailing bytes in windows section");
    }
    {
      state::SectionReader r(snap.section(kSecPending));
      const std::uint64_t count = r.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        Pending p;
        p.seq = r.u64();
        p.flow.ts = r.u32();
        p.flow.src = net::Ipv4Addr(r.u32());
        p.flow.dst = net::Ipv4Addr(r.u32());
        p.flow.proto = static_cast<net::Proto>(r.u8());
        p.flow.sport = r.u16();
        p.flow.dport = r.u16();
        p.flow.packets = r.u32();
        p.flow.bytes = r.u64();
        p.flow.member_in = r.u32();
        p.flow.member_out = r.u32();
        // The class is not serialized (it is a pure function of the flow
        // and the plane, and keeping it out preserves the checkpoint
        // format across the SIMD work); recompute it on the way in.
        p.cls = classify_one(p.flow);
        pending_.push(std::move(p));
      }
      if (r.remaining() != 0) corrupt("trailing bytes in pending section");
    }
    st.ok();
    return true;
  } catch (const state::SnapshotError& e) {
    if (strict) throw;
    st.skip(e.kind(), 0);
    reset_state();
    return false;
  } catch (const std::runtime_error&) {
    // MappedTrace open/read failure (missing or unreadable file).
    if (strict) throw;
    st.skip(util::ErrorKind::kTruncated, 0);
    reset_state();
    return false;
  }
}

}  // namespace spoofscope::classify
