#include "analysis/filtering_strategy.hpp"

#include <gtest/gtest.h>

namespace spoofscope::analysis {
namespace {

MemberClassCounts with(double bogon, double unrouted, double invalid,
                       net::Asn member = 1) {
  MemberClassCounts mc;
  mc.member = member;
  mc.packets[static_cast<int>(TrafficClass::kBogon)] = bogon;
  mc.packets[static_cast<int>(TrafficClass::kUnrouted)] = unrouted;
  mc.packets[static_cast<int>(TrafficClass::kInvalid)] = invalid;
  mc.packets[static_cast<int>(TrafficClass::kValid)] = 100;
  return mc;
}

TEST(FilteringStrategy, DeductionRules) {
  EXPECT_EQ(deduce_strategy(with(0, 0, 0)), FilteringStrategy::kClean);
  EXPECT_EQ(deduce_strategy(with(5, 0, 0)), FilteringStrategy::kBogonLeakOnly);
  EXPECT_EQ(deduce_strategy(with(0, 0, 5)), FilteringStrategy::kSemiStaticOnly);
  EXPECT_EQ(deduce_strategy(with(5, 5, 5)), FilteringStrategy::kNoFiltering);
  EXPECT_EQ(deduce_strategy(with(5, 5, 0)), FilteringStrategy::kInconsistent);
  EXPECT_EQ(deduce_strategy(with(0, 5, 0)), FilteringStrategy::kInconsistent);
  EXPECT_EQ(deduce_strategy(with(0, 5, 5)), FilteringStrategy::kInconsistent);
  EXPECT_EQ(deduce_strategy(with(5, 0, 5)), FilteringStrategy::kInconsistent);
}

TEST(FilteringStrategy, Names) {
  EXPECT_EQ(strategy_name(FilteringStrategy::kClean), "clean");
  EXPECT_EQ(strategy_name(FilteringStrategy::kNoFiltering), "no-filtering");
  EXPECT_EQ(strategy_name(FilteringStrategy::kBogonLeakOnly), "bogon-leak-only");
}

TEST(FilteringStrategy, AccuracyAgainstGroundTruth) {
  // Ground truth: AS1 filters everything, AS2 filters nothing, AS3
  // validates sources but lacks the bogon ACL.
  topo::AsInfo a1;
  a1.asn = 1;
  a1.org = 1;
  a1.filter = {true, true};
  topo::AsInfo a2;
  a2.asn = 2;
  a2.org = 2;
  a2.filter = {false, false};
  topo::AsInfo a3;
  a3.asn = 3;
  a3.org = 3;
  a3.filter = {false, true};  // blocks_bogon=false, blocks_spoofed=true
  const topo::Topology topo({a1, a2, a3}, {});

  std::vector<MemberClassCounts> counts{
      with(0, 0, 0, 1),  // clean, truly filtering
      with(5, 5, 5, 2),  // none, truly unfiltered
      with(5, 0, 0, 3),  // bogon-leak-only, matches ground truth
  };
  const auto acc = strategy_accuracy(counts, topo);
  EXPECT_EQ(acc.members, 3u);
  EXPECT_EQ(acc.clean_deduced, 1u);
  EXPECT_DOUBLE_EQ(acc.clean_precision(), 1.0);
  EXPECT_EQ(acc.none_deduced, 1u);
  EXPECT_DOUBLE_EQ(acc.none_precision(), 1.0);
  EXPECT_EQ(acc.bogonleak_deduced, 1u);
  EXPECT_DOUBLE_EQ(acc.bogonleak_precision(), 1.0);
}

TEST(FilteringStrategy, DeductionCanBeWrong) {
  // An unfiltered member that simply emitted nothing illegitimate during
  // the window is deduced clean — the paper's "soft criterion".
  topo::AsInfo a;
  a.asn = 7;
  a.org = 7;
  a.filter = {false, false};
  const topo::Topology topo({a}, {});
  std::vector<MemberClassCounts> counts{with(0, 0, 0, 7)};
  const auto acc = strategy_accuracy(counts, topo);
  EXPECT_EQ(acc.clean_deduced, 1u);
  EXPECT_DOUBLE_EQ(acc.clean_precision(), 0.0);
}

TEST(FilteringStrategy, FormatterMentionsCounts) {
  StrategyAccuracy acc;
  acc.members = 10;
  acc.clean_deduced = 4;
  acc.clean_truly_filtering = 3;
  const auto text = format_strategy_accuracy(acc);
  EXPECT_NE(text.find("10 members"), std::string::npos);
  EXPECT_NE(text.find("75.00%"), std::string::npos);
}

}  // namespace
}  // namespace spoofscope::analysis
