// Thread-count differential tests for the chunk-parallel pipeline: the
// generated topology and the collected route records must be
// bit-identical whether they are produced on one thread, two, or the
// machine's full concurrency. Chunk sizes are forced small so even the
// laptop-sized test topologies split into many chunks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bgp/collector.hpp"
#include "bgp/mrt_lite.hpp"
#include "bgp/simulator.hpp"
#include "topo/generator.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope {
namespace {

std::uint64_t fnv64(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv64(std::uint64_t h, const std::string& s) {
  return fnv64(h, s.data(), s.size());
}

template <typename T>
std::uint64_t fnv64_pod(std::uint64_t h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv64(h, &v, sizeof(v));
}

/// Order-sensitive digest over everything the generator decides.
std::uint64_t topology_digest(const topo::Topology& t) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& as : t.ases()) {
    h = fnv64_pod(h, as.asn);
    h = fnv64_pod(h, as.org);
    h = fnv64_pod(h, as.type);
    h = fnv64_pod(h, as.announce_fraction);
    h = fnv64_pod(h, as.filter.blocks_bogon);
    h = fnv64_pod(h, as.filter.blocks_spoofed);
    h = fnv64_pod(h, as.spoofer_density);
    h = fnv64_pod(h, as.nat_leak_density);
    for (const auto& p : as.prefixes) h = fnv64(h, p.str());
  }
  for (const auto& l : t.links()) {
    h = fnv64_pod(h, l.from);
    h = fnv64_pod(h, l.to);
    h = fnv64_pod(h, l.type);
    h = fnv64_pod(h, l.visible_in_bgp);
    h = fnv64(h, l.infra.str());
  }
  return h;
}

topo::TopologyParams chunky_params() {
  topo::TopologyParams p;
  p.num_tier1 = 3;
  p.num_transit = 12;
  p.num_isp = 60;
  p.num_hosting = 30;
  p.num_content = 15;
  p.num_other = 40;
  // Plenty of multi-AS orgs so sibling links (visible and invisible)
  // exist in every seed.
  p.multi_as_org_fraction = 0.25;
  p.sibling_link_visible_prob = 0.5;
  p.chunk_ases = 16;  // 160 ASes -> 10 chunks even in this small world
  return p;
}

std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> t{1, 2};
  const std::size_t hw = util::ThreadPool::resolve(0);
  if (hw > 2) t.push_back(hw);
  return t;
}

constexpr std::uint64_t kSeeds[] = {11, 1203, 777777};

TEST(ParallelDeterminism, TopologyBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : kSeeds) {
    const auto baseline = generate_topology(chunky_params(), seed);
    const std::uint64_t want = topology_digest(baseline);
    for (const std::size_t threads : thread_counts()) {
      util::ThreadPool pool(threads);
      const auto t = generate_topology(chunky_params(), seed, pool);
      EXPECT_EQ(topology_digest(t), want)
          << "seed " << seed << ", " << threads << " threads";
    }
  }
}

TEST(ParallelDeterminism, ChunkSizeIsPartOfTheOutputContract) {
  // Different chunk grids legitimately produce different topologies —
  // the guarantee is over thread counts, not chunk sizes.
  auto a = chunky_params();
  auto b = chunky_params();
  b.chunk_ases = 64;
  EXPECT_NE(topology_digest(generate_topology(a, 11)),
            topology_digest(generate_topology(b, 11)));
}

/// Digest of everything the collectors record, in emitted order.
std::uint64_t records_digest(const bgp::Simulator& sim,
                             const bgp::AnnouncementPlan& plan,
                             std::span<const bgp::CollectorSpec> specs,
                             util::ThreadPool& pool,
                             std::size_t chunk_groups = 0) {
  std::uint64_t h = 1469598103934665603ULL;
  bgp::PropagateOptions options;
  options.chunk_groups = chunk_groups;
  bgp::propagate_collect(
      sim, plan, specs, pool,
      [&h](std::size_t spec_idx, const bgp::MrtRecord& r) {
        h = fnv64_pod(h, spec_idx);
        std::visit([&h](const auto& rec) { h = fnv64(h, to_mrt_line(rec)); }, r);
      },
      options);
  return h;
}

TEST(ParallelDeterminism, PropagationRecordsBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : kSeeds) {
    const auto topo = generate_topology(chunky_params(), seed);
    const bgp::Simulator sim(topo);
    // Exercise every plan-group shape: selective announcements (first-hop
    // restrictions), transients (update records), deaggregation.
    bgp::PlanParams pp;
    pp.selective_prob = 0.3;
    pp.transient_prob = 0.15;
    pp.deaggregate_prob = 0.2;
    const auto plan = bgp::make_announcement_plan(topo, pp, seed ^ 0xfeed);

    std::vector<bgp::CollectorSpec> specs(2);
    specs[0].name = "full";
    specs[0].feeders = {topo.ases()[1].asn, topo.ases()[20].asn,
                        topo.ases()[77].asn};
    specs[1].name = "rs";
    specs[1].feeders = {topo.ases()[5].asn, topo.ases()[50].asn};
    specs[1].full_feed = false;

    // Independent oracle: the serial RouteFabric rendered spec-by-spec.
    // Record *order* differs from propagate_collect (spec-major vs
    // group-major), so compare the per-spec record sequences, which both
    // paths emit in plan order.
    std::vector<std::vector<std::string>> oracle(specs.size());
    {
      const bgp::RouteFabric fabric(sim, plan);
      for (std::size_t s = 0; s < specs.size(); ++s) {
        collect_records(fabric, specs[s], [&oracle, s](const bgp::MrtRecord& r) {
          std::visit([&oracle, s](const auto& rec) {
            oracle[s].push_back(to_mrt_line(rec));
          }, r);
        });
      }
    }

    util::ThreadPool seq(1);
    const std::uint64_t want = records_digest(sim, plan, specs, seq);
    for (const std::size_t threads : thread_counts()) {
      util::ThreadPool pool(threads);
      EXPECT_EQ(records_digest(sim, plan, specs, pool), want)
          << "seed " << seed << ", " << threads << " threads";
      // Chunking must not change the emitted records either.
      EXPECT_EQ(records_digest(sim, plan, specs, pool, 7), want)
          << "seed " << seed << ", " << threads << " threads, chunk 7";

      std::vector<std::vector<std::string>> got(specs.size());
      bgp::propagate_collect(sim, plan, specs, pool,
                             [&got](std::size_t s, const bgp::MrtRecord& r) {
                               std::visit([&got, s](const auto& rec) {
                                 got[s].push_back(to_mrt_line(rec));
                               }, r);
                             });
      EXPECT_EQ(got, oracle) << "seed " << seed << ", " << threads << " threads";
    }
  }
}

TEST(ParallelDeterminism, RouteFabricPoolCtorMatchesSerial) {
  const auto topo = generate_topology(chunky_params(), 1203);
  const bgp::Simulator sim(topo);
  bgp::PlanParams pp;
  pp.selective_prob = 0.2;
  const auto plan = bgp::make_announcement_plan(topo, pp, 99);

  const bgp::RouteFabric serial(sim, plan);
  for (const std::size_t threads : thread_counts()) {
    util::ThreadPool pool(threads);
    const bgp::RouteFabric parallel(sim, plan, pool);
    ASSERT_EQ(parallel.group_count(), serial.group_count());
    for (std::size_t g = 0; g < serial.group_count(); ++g) {
      const auto& a = serial.result(g).routes();
      const auto& b = parallel.result(g).routes();
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].cls == b[i].cls && a[i].hops == b[i].hops &&
                    a[i].parent == b[i].parent)
            << "group " << g << " idx " << i << " (" << threads << " threads)";
      }
    }
  }
}

}  // namespace
}  // namespace spoofscope
