// Data persistence workflow: generate a scenario once, persist everything
// a later analysis needs — the flow trace (binary), the BGP view
// (MRT-lite text) and the WHOIS registry (RPSL-lite text) — then reload
// the artifacts and verify the classification reproduces bit-for-bit.
// The trace comes back through the zero-copy path (MappedTrace +
// batched SoA decode), and the durable state plane rounds the story
// out: the compiled flat plane is cached on disk and the streaming
// detector checkpoints mid-stream and resumes bit-identically.
// This is how spoofscope would be used against real captured data.
//
//   $ ./trace_tools [output-dir]
#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <vector>

#include "bgp/mrt_lite.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/streaming.hpp"
#include "data/rpsl.hpp"
#include "net/flow_batch.hpp"
#include "net/mapped_trace.hpp"
#include "net/trace.hpp"
#include "scenario/scenario.hpp"
#include "state/plane_cache.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace spoofscope;
  namespace fs = std::filesystem;

  const fs::path dir = argc > 1 ? argv[1] : fs::temp_directory_path() / "spoofscope";
  fs::create_directories(dir);

  const auto params = scenario::ScenarioParams::small();
  const auto world = scenario::build_scenario(params);

  // --- persist ---------------------------------------------------------------
  {
    std::ofstream out(dir / "ixp.trace", std::ios::binary);
    net::write_trace(out, world->trace());
  }
  {
    // Export a route-server style MRT-lite view for the record.
    const bgp::Simulator sim(world->topology());
    const auto plan = bgp::make_announcement_plan(world->topology(), {}, 7);
    const bgp::RouteFabric fabric(sim, plan);
    bgp::CollectorSpec rs;
    rs.name = "ixp-rs";
    rs.feeders = world->ixp().route_server_feeders();
    rs.full_feed = false;
    std::ofstream out(dir / "route-server.mrt");
    bgp::collect_records(fabric, rs, [&out](const bgp::MrtRecord& r) {
      std::visit([&out](const auto& rec) { out << bgp::to_mrt_line(rec) << '\n'; },
                 r);
    });
  }
  {
    std::ofstream out(dir / "registry.rpsl");
    out << data::registry_to_rpsl(world->whois());
  }

  // --- reload and verify ------------------------------------------------------
  // The trace returns through the zero-copy read path: the file is
  // mmapped, records decode in batches straight into SoA lanes, and each
  // batch is classified and checked against the original incrementally —
  // no full AoS copy of the trace is ever materialized.
  const net::MappedTrace mapped((dir / "ixp.trace").string());
  net::MappedTraceReader reader(mapped);
  const std::vector<net::FlowRecord>& original = world->trace().flows;
  const std::vector<classify::Label>& expected = world->labels();
  net::FlowBatch batch;
  std::vector<classify::Label> labels;
  std::size_t off = 0;
  bool flows_ok = true, labels_ok = true;
  while (reader.next_batch(batch, 8192) != 0) {
    labels.resize(batch.size());
    world->classifier().classify_batch(batch, labels);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      flows_ok &= off + i < original.size() && batch.record(i) == original[off + i];
      labels_ok &= off + i < expected.size() && labels[i] == expected[off + i];
    }
    off += batch.size();
  }
  flows_ok &= off == original.size();
  labels_ok &= off == expected.size();
  std::cout << "trace:  " << off << " flows reloaded (mmap "
            << (mapped.mapped() ? "yes" : "no") << ", batched SoA decode), seed "
            << reader.meta().seed << ", 1:" << reader.meta().sampling_rate
            << " sampling — " << (flows_ok ? "bit-identical" : "MISMATCH")
            << "\n";
  std::cout << "labels: "
            << (labels_ok ? "classification reproduced exactly" : "MISMATCH")
            << "\n";

  std::ifstream min(dir / "route-server.mrt");
  const auto records = bgp::read_mrt(min);
  bgp::RoutingTableBuilder builder;
  builder.ingest(records);
  const auto table = builder.build();
  std::cout << "mrt:    " << records.size() << " records reloaded -> "
            << table.prefixes().size() << " routed prefixes, "
            << table.edges().size() << " AS edges\n";

  std::ifstream rin(dir / "registry.rpsl");
  const auto rebuilt = data::registry_from_rpsl(data::parse_rpsl(rin));
  std::cout << "rpsl:   " << rebuilt.provider_assigned().size()
            << " provider-assigned ranges, " << rebuilt.documented_link_count()
            << " documented links ("
            << (rebuilt.provider_assigned().size() ==
                        world->whois().provider_assigned().size() &&
                    rebuilt.documented_link_count() ==
                        world->whois().documented_link_count()
                ? "matches original"
                : "MISMATCH")
            << ")\n";

  // --- durable state ----------------------------------------------------------
  // Compiled-plane cache: the first load compiles the DIR-24-8 plane and
  // stores it; the second mmaps the entry back. The digest check proves
  // the cached plane is the compile, not an approximation of it.
  state::PlaneCache cache((dir / "plane-cache").string());
  const auto first = cache.load_or_compile(world->classifier(), nullptr);
  const auto second = cache.load_or_compile(world->classifier(), nullptr);
  std::cout << "plane:  first load " << (first.stored ? "compiled+stored" : "hit")
            << ", second load " << (second.hit ? "cache hit" : "miss") << " ("
            << (first.plane.plane_digest() == second.plane.plane_digest()
                ? "digests equal"
                : "DIGEST MISMATCH")
            << ")\n";

  // Detector checkpoint/resume: run A straight through; run B checkpoints
  // at mid-stream, a fresh detector restores the checkpoint and finishes
  // the second half. Alerts and health must agree bit-for-bit.
  const std::size_t full_idx =
      scenario::Scenario::space_index(inference::Method::kFullConeOrg);
  classify::StreamingParams sp;
  sp.min_spoofed_packets = 30;
  sp.min_share = 0.02;
  const std::span<const net::FlowRecord> flows(original);
  classify::StreamingDetector straight(world->classifier(), full_idx, sp);
  const auto uninterrupted = straight.run(flows);

  const std::size_t half = flows.size() / 2;
  std::vector<classify::SpoofingAlert> resumed;
  const auto collect = [&resumed](const classify::SpoofingAlert& a) {
    resumed.push_back(a);
  };
  const std::string ckpt = (dir / "detector.ckpt").string();
  {
    classify::StreamingDetector before(world->classifier(), full_idx, sp);
    for (std::size_t i = 0; i < half; ++i) before.ingest(flows[i], collect);
    before.save(ckpt);  // "process dies" here
  }
  classify::StreamingDetector after(world->classifier(), full_idx, sp);
  after.restore(ckpt);
  for (std::size_t i = half; i < flows.size(); ++i) after.ingest(flows[i], collect);
  after.flush(collect);
  std::cout << "ckpt:   " << uninterrupted.size() << " alerts uninterrupted, "
            << resumed.size() << " across the checkpoint ("
            << (resumed == uninterrupted && after.health() == straight.health()
                ? "resume is bit-identical"
                : "MISMATCH")
            << ")\n";
  std::cout << "artifacts written to " << dir << "\n";
  return 0;
}
