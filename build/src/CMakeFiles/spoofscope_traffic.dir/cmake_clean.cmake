file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_traffic.dir/traffic/attacks.cpp.o"
  "CMakeFiles/spoofscope_traffic.dir/traffic/attacks.cpp.o.d"
  "CMakeFiles/spoofscope_traffic.dir/traffic/generator.cpp.o"
  "CMakeFiles/spoofscope_traffic.dir/traffic/generator.cpp.o.d"
  "CMakeFiles/spoofscope_traffic.dir/traffic/regular.cpp.o"
  "CMakeFiles/spoofscope_traffic.dir/traffic/regular.cpp.o.d"
  "CMakeFiles/spoofscope_traffic.dir/traffic/stray.cpp.o"
  "CMakeFiles/spoofscope_traffic.dir/traffic/stray.cpp.o.d"
  "CMakeFiles/spoofscope_traffic.dir/traffic/workload.cpp.o"
  "CMakeFiles/spoofscope_traffic.dir/traffic/workload.cpp.o.d"
  "libspoofscope_traffic.a"
  "libspoofscope_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
