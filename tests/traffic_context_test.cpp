#include "traffic/context.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/whois.hpp"
#include "net/bogon.hpp"
#include "topo/generator.hpp"

namespace spoofscope::traffic {
namespace {

struct World {
  topo::Topology topo;
  ixp::Ixp ixp;
  WorkloadParams params;
};

World make_world() {
  topo::TopologyParams tp;
  tp.num_tier1 = 3;
  tp.num_transit = 10;
  tp.num_isp = 30;
  tp.num_hosting = 18;
  tp.num_content = 9;
  tp.num_other = 20;
  auto topo = topo::generate_topology(tp, 12);
  ixp::IxpParams ip;
  ip.member_count = 45;
  auto ixp = ixp::Ixp::build(topo, ip, 13);
  return World{std::move(topo), std::move(ixp), WorkloadParams{}};
}

TEST(TrafficContext, AddrInStaysInsidePrefix) {
  util::Rng rng(1);
  const auto p = net::pfx("20.5.0.0/16");
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(p.contains(TrafficContext::addr_in(p, rng)));
  }
  const auto host = net::pfx("20.5.0.7/32");
  EXPECT_EQ(TrafficContext::addr_in(host, rng), host.address());
}

TEST(TrafficContext, AnnouncedAddrInsideOwnAllocation) {
  const auto w = make_world();
  TrafficContext ctx(w.topo, w.ixp, w.params, 2);
  util::Rng rng(3);
  for (const auto& m : w.ixp.members()) {
    for (int i = 0; i < 20; ++i) {
      const auto a = ctx.announced_addr(m.asn, rng);
      bool inside = false;
      for (const auto& p : w.topo.find(m.asn)->prefixes) inside |= p.contains(a);
      EXPECT_TRUE(inside) << "AS" << m.asn << " " << a.str();
    }
  }
}

TEST(TrafficContext, LegitimateSrcInsideGroundTruthSpace) {
  const auto w = make_world();
  TrafficContext ctx(w.topo, w.ixp, w.params, 4);
  util::Rng rng(5);
  for (const auto& m : w.ixp.members()) {
    const auto& space = ctx.ground_truth_space(m.asn);
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(space.contains(ctx.legitimate_src(m.asn, rng)))
          << "AS" << m.asn;
    }
  }
}

TEST(TrafficContext, EgressFilterSemantics) {
  const auto w = make_world();
  TrafficContext ctx(w.topo, w.ixp, w.params, 6);
  util::Rng rng(7);
  // A bogon-filtering member never lets RFC1918 out; a spoof-filtering
  // member never lets a random routed-but-foreign source out.
  for (const auto& m : w.ixp.members()) {
    const auto* info = w.topo.find(m.asn);
    const auto bogon_src = net::Ipv4Addr::from_octets(10, 1, 2, 3);
    if (info->filter.blocks_bogon) {
      EXPECT_FALSE(ctx.egress_allows(*info, bogon_src));
    }
    if (info->filter.blocks_spoofed) {
      // Find an address clearly outside the member's ground truth space.
      for (int i = 0; i < 50; ++i) {
        const net::Ipv4Addr probe(rng.next_u32());
        if (!ctx.ground_truth_space(m.asn).contains(probe) &&
            !net::is_bogon(probe)) {
          EXPECT_FALSE(ctx.egress_allows(*info, probe));
          break;
        }
      }
      // Its own space always passes.
      EXPECT_TRUE(ctx.egress_allows(*info, ctx.announced_addr(m.asn, rng)));
    }
  }
}

TEST(TrafficContext, ExitMemberIsMemberAndStable) {
  const auto w = make_world();
  TrafficContext ctx(w.topo, w.ixp, w.params, 8);
  util::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const net::Ipv4Addr dst = ctx.announced_addr(
        w.topo.asn_at(rng.index(w.topo.as_count())), rng);
    const auto member = ctx.exit_member_for(dst, rng);
    EXPECT_TRUE(w.ixp.is_member(member));
  }
  // Destination owned by a member maps to that member deterministically.
  const auto& m0 = w.ixp.members().front();
  const auto own = ctx.announced_addr(m0.asn, rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ctx.exit_member_for(own, rng), m0.asn);
  }
}

TEST(TrafficContext, DiurnalProfilePeaksInTheEvening) {
  const auto w = make_world();
  TrafficContext ctx(w.topo, w.ixp, w.params, 10);
  util::Rng rng(11);
  std::vector<double> by_hour(24, 0);
  for (int i = 0; i < 60000; ++i) {
    by_hour[(ctx.diurnal_ts(rng) % 86400) / 3600] += 1;
  }
  // The 19-21h window must clearly dominate the 3-5h trough.
  const double peak = by_hour[19] + by_hour[20] + by_hour[21];
  const double trough = by_hour[3] + by_hour[4] + by_hour[5];
  EXPECT_GT(peak, 2.5 * trough);
}

TEST(TrafficContext, TimestampsWithinWindow) {
  const auto w = make_world();
  WorkloadParams params;
  params.window_seconds = 1000;
  TrafficContext ctx(w.topo, w.ixp, params, 12);
  util::Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(ctx.uniform_ts(rng), 1000u);
    EXPECT_LT(ctx.diurnal_ts(rng), 1000u);
  }
}

TEST(TrafficContext, WeightedMemberFavoursHeavyMembers) {
  const auto w = make_world();
  TrafficContext ctx(w.topo, w.ixp, w.params, 14);
  util::Rng rng(15);
  std::unordered_map<net::Asn, int> draws;
  for (int i = 0; i < 50000; ++i) ++draws[ctx.weighted_member(rng).asn];
  // The heaviest member must be drawn far more often than the lightest.
  const ixp::Member* heavy = &w.ixp.members().front();
  const ixp::Member* light = heavy;
  for (const auto& m : w.ixp.members()) {
    if (m.traffic_weight > heavy->traffic_weight) heavy = &m;
    if (m.traffic_weight < light->traffic_weight) light = &m;
  }
  EXPECT_GT(draws[heavy->asn], draws[light->asn]);
}

TEST(TrafficContext, NtpServerPoolInsideAnnouncedSpace) {
  const auto w = make_world();
  WorkloadParams params;
  params.ntp_server_pool = 200;
  TrafficContext ctx(w.topo, w.ixp, params, 16);
  EXPECT_EQ(ctx.ntp_servers().size(), 200u);
  for (const auto& [addr, asn] : ctx.ntp_servers()) {
    const auto* info = w.topo.find(asn);
    ASSERT_NE(info, nullptr);
    bool inside = false;
    for (const auto& p : info->prefixes) inside |= p.contains(addr);
    EXPECT_TRUE(inside);
  }
}

}  // namespace
}  // namespace spoofscope::traffic
