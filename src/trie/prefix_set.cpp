#include "trie/prefix_set.hpp"

namespace spoofscope::trie {

bool PrefixSet::insert(const net::Prefix& p) {
  if (trie_.find_exact(p)) return false;
  trie_.insert(p, 1);
  return true;
}

std::vector<net::Prefix> PrefixSet::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(trie_.size());
  trie_.visit([&](const net::Prefix& p, char) { out.push_back(p); });
  return out;
}

IntervalSet PrefixSet::to_interval_set() const {
  std::vector<Interval> ivs;
  ivs.reserve(trie_.size());
  trie_.visit([&](const net::Prefix& p, char) {
    ivs.push_back({p.first(), p.last()});
  });
  return IntervalSet::from_intervals(std::move(ivs));
}

}  // namespace spoofscope::trie
