// Compiled-plane snapshot cache: a cache hit must serve the exact plane
// a fresh compile would produce (same plane_digest, same labels), a
// source change must miss (digest keying), and damaged entries must be
// rejected (strict) or recompiled around with the ErrorKind accounted
// (skip) — a cache can be cold or wrong-and-detected, never silently
// stale.
#include "state/plane_cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "classify/flat_classifier.hpp"
#include "corruption.hpp"
#include "net/prefix.hpp"
#include "state/snapshot.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::state {
namespace {

namespace fs = std::filesystem;
using classify::Classifier;
using classify::FlatClassifier;
using net::Ipv4Addr;
using net::pfx;

/// Small but structurally complete source: a /26 exercises the overflow
/// lane, and member 2's space covers only half of its routed /16 so the
/// compile produces partial rows (fallback lane) the cache must
/// reconstruct.
struct Fixture {
  Fixture() {
    // Relaxed ingest bounds so the /26 enters the table and exercises
    // the overflow lane.
    bgp::RoutingTableBuilder b({.min_length = 8, .max_length = 32});
    b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
    b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{2});
    b.ingest_route(pfx("70.0.0.0/26"), bgp::AsPath{2, 1});
    table = b.build();

    trie::IntervalSet s1;
    s1.add(pfx("50.0.0.0/16"));
    trie::IntervalSet s2;
    s2.add(pfx("60.0.0.0/17"));  // half of routed 60/16: fallback lane
    std::unordered_map<net::Asn, trie::IntervalSet> spaces;
    spaces.emplace(1, std::move(s1));
    spaces.emplace(2, std::move(s2));
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }
  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

class ScratchDir {
 public:
  // The pid suffix keeps concurrent runs from different build trees
  // (sanitizer sweeps, parallel ctest) from truncating each other's
  // mapped snapshots.
  explicit ScratchDir(const char* name)
      : path_(fs::temp_directory_path() /
              (std::string(name) + "." + std::to_string(::getpid()))) {
    fs::remove_all(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// Element-wise label comparison over a deterministic address sweep.
void expect_identical_labels(const FlatClassifier& a, const FlatClassifier& b,
                             const Classifier& oracle) {
  util::Rng rng(555);
  for (int i = 0; i < 5000; ++i) {
    const Ipv4Addr src(rng.uniform_u32(0, 0xFFFFFFFFu));
    for (const net::Asn member : {1u, 2u, 9u}) {
      const auto la = a.classify_all(src, member);
      ASSERT_EQ(la, b.classify_all(src, member))
          << "addr " << src.value() << " member " << member;
      ASSERT_EQ(la, oracle.classify_all(src, member));
    }
  }
}

TEST(PlaneCache, MissCompilesAndStoresHitServesTheSamePlane) {
  Fixture fx;
  ScratchDir dir("spoofscope_plane_cache");
  PlaneCache cache(dir.str());
  const FlatClassifier fresh = FlatClassifier::compile(*fx.classifier);
  ASSERT_GT(fresh.stats().overflow_prefixes, 0u);
  ASSERT_GT(fresh.stats().partial_rows, 0u);

  auto first = cache.load_or_compile(*fx.classifier, nullptr);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(first.stored);
  EXPECT_TRUE(fs::exists(cache.entry_path(classifier_digest(*fx.classifier))));
  EXPECT_EQ(first.plane.plane_digest(), fresh.plane_digest());

  auto second = cache.load_or_compile(*fx.classifier, nullptr);
  EXPECT_TRUE(second.hit);
  EXPECT_FALSE(second.stored);
  EXPECT_EQ(second.plane.plane_digest(), fresh.plane_digest());
  const auto& st = second.plane.stats();
  EXPECT_EQ(st.overflow_prefixes, fresh.stats().overflow_prefixes);
  EXPECT_EQ(st.partial_rows, fresh.stats().partial_rows);
  expect_identical_labels(second.plane, fresh, *fx.classifier);
}

TEST(PlaneCache, ParallelCompilePopulatesTheSameEntry) {
  Fixture fx;
  ScratchDir dir("spoofscope_plane_cache_par");
  util::ThreadPool pool(4);
  PlaneCache cache(dir.str());
  auto first = cache.load_or_compile(*fx.classifier, &pool);
  EXPECT_TRUE(first.stored);
  auto second = cache.load_or_compile(*fx.classifier, nullptr);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.plane.plane_digest(), first.plane.plane_digest());
}

TEST(PlaneCache, SourceChangeChangesTheDigestAndMisses) {
  Fixture fx;
  ScratchDir dir("spoofscope_plane_cache_key");
  PlaneCache cache(dir.str());
  const std::uint64_t before = classifier_digest(*fx.classifier);
  auto first = cache.load_or_compile(*fx.classifier, nullptr);
  EXPECT_TRUE(first.stored);

  // Extend member 1's valid space into part of routed 60/16: different
  // compile inputs AND a different compiled plane (a new partial row),
  // so the digest must move and the cache must recompile, not serve
  // stale.
  trie::IntervalSet extra;
  extra.add(pfx("60.0.128.0/24"));
  fx.classifier->mutable_space(0).extend(1, extra);
  const std::uint64_t after = classifier_digest(*fx.classifier);
  EXPECT_NE(before, after);

  auto second = cache.load_or_compile(*fx.classifier, nullptr);
  EXPECT_FALSE(second.hit);
  EXPECT_TRUE(second.stored);
  EXPECT_NE(second.plane.plane_digest(), first.plane.plane_digest());
  EXPECT_TRUE(fs::exists(cache.entry_path(after)));
  EXPECT_TRUE(fs::exists(cache.entry_path(before)));  // old entry untouched
}

TEST(PlaneCache, LoadedPlaneSurvivesEntryRemoval) {
  // The mapping is owned by the FlatClassifier, so unlinking the cache
  // entry under a live plane must not invalidate it (POSIX semantics).
  Fixture fx;
  ScratchDir dir("spoofscope_plane_cache_unlink");
  PlaneCache cache(dir.str());
  cache.load_or_compile(*fx.classifier, nullptr);
  auto hit = cache.load_or_compile(*fx.classifier, nullptr);
  ASSERT_TRUE(hit.hit);
  fs::remove_all(dir.str());
  const FlatClassifier fresh = FlatClassifier::compile(*fx.classifier);
  expect_identical_labels(hit.plane, fresh, *fx.classifier);
}

TEST(PlaneCache, CorruptEntriesAreRejectedOrRecompiledNeverServed) {
  Fixture fx;
  ScratchDir dir("spoofscope_plane_cache_fuzz");
  PlaneCache cache(dir.str());
  cache.load_or_compile(*fx.classifier, nullptr);
  const std::string entry = cache.entry_path(classifier_digest(*fx.classifier));
  std::string image;
  {
    std::ifstream in(entry, std::ios::binary);
    image.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(image.empty());
  const std::uint64_t fresh_digest =
      FlatClassifier::compile(*fx.classifier).plane_digest();

  util::Rng rng(31337);
  for (int trial = 0; trial < 8; ++trial) {
    const std::string damaged = trial % 2 == 0
                                    ? testing::truncate_bytes(image, rng)
                                    : testing::flip_bits(image, rng, 1);
    ASSERT_NE(damaged, image);
    {
      std::ofstream out(entry, std::ios::binary | std::ios::trunc);
      out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
    }
    // Strict: the damage is loud.
    EXPECT_THROW(cache.load_or_compile(*fx.classifier, nullptr), SnapshotError);

    // Skip: accounted, recompiled, entry overwritten with a good copy.
    util::IngestStats st;
    auto healed = cache.load_or_compile(*fx.classifier, nullptr,
                                        util::ErrorPolicy::kSkip, &st);
    EXPECT_FALSE(healed.hit);
    EXPECT_TRUE(healed.stored);
    EXPECT_EQ(st.records_skipped, 1u);
    EXPECT_EQ(healed.plane.plane_digest(), fresh_digest);

    auto again = cache.load_or_compile(*fx.classifier, nullptr);
    EXPECT_TRUE(again.hit);
    EXPECT_EQ(again.plane.plane_digest(), fresh_digest);
  }
}

TEST(PlaneCache, DigestIsStableAcrossEquivalentRebuilds) {
  // Two independently built but identical sources must key to the same
  // entry — the digest is a function of the inputs, not object identity.
  Fixture a, b;
  EXPECT_EQ(classifier_digest(*a.classifier), classifier_digest(*b.classifier));
}

}  // namespace
}  // namespace spoofscope::state
