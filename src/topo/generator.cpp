#include "topo/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <optional>
#include <stdexcept>
#include <tuple>

#include "net/bogon.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace spoofscope::topo {

namespace {

using net::Ipv4Addr;
using net::Prefix;
using util::Rng;

/// Carves aligned CIDR blocks out of the non-bogon IPv4 space.
///
/// /16 blocks are handed out from a shuffled free list; sub-/16 requests
/// are served by a buddy allocator that subdivides one /16 at a time.
class SpaceAllocator {
 public:
  explicit SpaceAllocator(Rng& rng) {
    free16_.reserve(1 << 16);
    for (std::uint32_t block = 0; block < (1u << 16); ++block) {
      const Prefix p(Ipv4Addr(block << 16), 16);
      bool bogon = false;
      for (const auto& b : net::bogon_prefixes()) {
        if (b.overlaps(p)) {
          bogon = true;
          break;
        }
      }
      if (!bogon) free16_.push_back(p);
    }
    rng.shuffle(free16_);
  }

  /// Remaining whole /16 blocks.
  std::size_t free16_count() const { return free16_.size(); }

  /// Allocates one /16. Throws std::runtime_error when exhausted.
  Prefix take16() {
    if (free16_.empty()) throw std::runtime_error("SpaceAllocator: out of /16 blocks");
    const Prefix p = free16_.back();
    free16_.pop_back();
    return p;
  }

  /// Allocates one block of the given length in (16, 24].
  Prefix take_sub(std::uint8_t len) {
    assert(len > 16 && len <= 24);
    // Find the shortest free block with length <= len; split down.
    for (std::uint8_t l = len; l > 16; --l) {
      auto& pool = sub_free_[l];
      if (!pool.empty()) {
        Prefix block = pool.back();
        pool.pop_back();
        return split_down(block, len);
      }
    }
    return split_down(take16(), len);
  }

 private:
  Prefix split_down(Prefix block, std::uint8_t len) {
    while (block.length() < len) {
      sub_free_[static_cast<std::uint8_t>(block.length() + 1)].push_back(block.child(1));
      block = block.child(0);
    }
    return block;
  }

  std::vector<Prefix> free16_;
  std::map<std::uint8_t, std::vector<Prefix>> sub_free_;
};

/// Role during generation (finer than BusinessType: tier-1 vs transit).
enum class Role { kTier1, kTransit, kIsp, kHosting, kContent, kOther };

BusinessType role_type(Role r) {
  switch (r) {
    case Role::kTier1:
    case Role::kTransit: return BusinessType::kNsp;
    case Role::kIsp: return BusinessType::kIsp;
    case Role::kHosting: return BusinessType::kHosting;
    case Role::kContent: return BusinessType::kContent;
    case Role::kOther: return BusinessType::kOther;
  }
  return BusinessType::kOther;
}

/// Median allocation size in /24 equivalents by role (before global
/// scaling to the routed-space target).
double median_size24(Role r) {
  switch (r) {
    case Role::kTier1: return 16384.0;
    case Role::kTransit: return 2048.0;
    case Role::kIsp: return 512.0;
    case Role::kHosting: return 192.0;
    case Role::kContent: return 96.0;
    case Role::kOther: return 24.0;
  }
  return 24.0;
}

double size_sigma(Role r) {
  switch (r) {
    case Role::kTier1: return 0.5;
    case Role::kTransit: return 0.8;
    default: return 1.0;
  }
}

struct Draft {
  AsInfo info;
  Role role = Role::kOther;
  double desired24 = 0.0;
};

}  // namespace

Topology generate_topology(const TopologyParams& params, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Draft> drafts;
  drafts.reserve(params.total_ases());

  Asn next_asn = 100;
  const auto add_group = [&](std::size_t n, Role role) {
    for (std::size_t i = 0; i < n; ++i) {
      Draft d;
      d.role = role;
      d.info.asn = next_asn++;
      d.info.type = role_type(role);
      drafts.push_back(std::move(d));
    }
  };
  add_group(params.num_tier1, Role::kTier1);
  add_group(params.num_transit, Role::kTransit);
  add_group(params.num_isp, Role::kIsp);
  add_group(params.num_hosting, Role::kHosting);
  add_group(params.num_content, Role::kContent);
  add_group(params.num_other, Role::kOther);
  if (drafts.empty()) throw std::invalid_argument("generate_topology: no ASes requested");

  // ---- organizations ----------------------------------------------------
  // Walk the AS list; each unassigned AS founds an org, which with some
  // probability absorbs a few of the following unassigned ASes.
  OrgId next_org = 1;
  std::vector<bool> org_assigned(drafts.size(), false);
  std::vector<AsLink> links;
  for (std::size_t i = 0; i < drafts.size(); ++i) {
    if (org_assigned[i]) continue;
    const OrgId org = next_org++;
    drafts[i].info.org = org;
    org_assigned[i] = true;
    if (!rng.chance(params.multi_as_org_fraction)) continue;

    const std::size_t extra =
        rng.uniform_u32(1, static_cast<std::uint32_t>(
                               std::max<std::size_t>(1, params.max_org_size - 1)));
    std::vector<std::size_t> members{i};
    std::size_t j = i + 1;
    while (members.size() < extra + 1 && j < drafts.size()) {
      if (!org_assigned[j]) {
        drafts[j].info.org = org;
        org_assigned[j] = true;
        members.push_back(j);
      }
      ++j;
    }
    // Full sibling mesh, with partial BGP visibility (Sec 3.2: internal
    // peerings of multi-AS orgs are often not exposed).
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        AsLink l;
        l.from = drafts[members[a]].info.asn;
        l.to = drafts[members[b]].info.asn;
        l.type = RelType::kSibling;
        l.visible_in_bgp = rng.chance(params.sibling_link_visible_prob);
        links.push_back(l);
      }
    }
  }

  // ---- address allocation ------------------------------------------------
  SpaceAllocator space(rng);

  double raw_sum = 0.0;
  for (auto& d : drafts) {
    d.desired24 = rng.lognormal(std::log(median_size24(d.role)), size_sigma(d.role));
    raw_sum += d.desired24;
  }
  const double target_alloc24 = std::min(
      params.target_routed_fraction * net::kTotalSlash24 /
          std::max(0.05, 1.0 - params.unannounced_fraction),
      static_cast<double>(space.free16_count()) * 256.0 * 0.95);
  // Water-fill: find the scale factor such that sum(min(raw*scale, cap))
  // hits the target, so the per-AS cap does not starve small topologies.
  const double per_as_cap =
      std::max(900.0 * 256.0,
               2.5 * target_alloc24 / static_cast<double>(drafts.size()));
  const auto total_at = [&](double s) {
    double sum = 0.0;
    for (const auto& d : drafts) sum += std::min(d.desired24 * s, per_as_cap);
    return sum;
  };
  double scale = target_alloc24 / raw_sum;
  if (total_at(scale) < target_alloc24) {
    double lo = scale, hi = scale;
    while (total_at(hi) < target_alloc24 && hi < 1e12) hi *= 2.0;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      (total_at(mid) < target_alloc24 ? lo : hi) = mid;
    }
    scale = hi;
  }

  for (auto& d : drafts) {
    double want = std::min(d.desired24 * scale, per_as_cap);
    auto want_units = static_cast<std::uint64_t>(std::max(1.0, std::round(want)));

    while (want_units >= 256 && space.free16_count() > 16) {
      d.info.prefixes.push_back(space.take16());
      want_units -= 256;
    }
    if (want_units > 0) {
      // Round the remainder up to a power of two and allocate one block.
      std::uint8_t len = 24;
      std::uint64_t blocks = 1;
      while (blocks < want_units && len > 17) {
        blocks <<= 1;
        --len;
      }
      d.info.prefixes.push_back(space.take_sub(len));
    }
    rng.shuffle(d.info.prefixes);
    d.info.announce_fraction = std::clamp(
        1.0 - params.unannounced_fraction * rng.uniform(0.3, 2.0), 0.5, 1.0);
  }

  // ---- connectivity -------------------------------------------------------
  const auto asn_of = [&](std::size_t idx) { return drafts[idx].info.asn; };
  std::vector<std::size_t> tier1s, transits, isps, hostings, contents, others;
  for (std::size_t i = 0; i < drafts.size(); ++i) {
    switch (drafts[i].role) {
      case Role::kTier1: tier1s.push_back(i); break;
      case Role::kTransit: transits.push_back(i); break;
      case Role::kIsp: isps.push_back(i); break;
      case Role::kHosting: hostings.push_back(i); break;
      case Role::kContent: contents.push_back(i); break;
      case Role::kOther: others.push_back(i); break;
    }
  }

  // Tier-1 clique (settlement-free mesh).
  for (std::size_t a = 0; a < tier1s.size(); ++a) {
    for (std::size_t b = a + 1; b < tier1s.size(); ++b) {
      links.push_back({asn_of(tier1s[a]), asn_of(tier1s[b]), RelType::kPeerToPeer,
                       /*visible=*/true, Prefix()});
    }
  }

  // Weight transits by allocation size for provider selection.
  std::vector<double> transit_weight;
  transit_weight.reserve(transits.size());
  for (const std::size_t t : transits) transit_weight.push_back(drafts[t].desired24 + 1.0);

  const auto pick_distinct = [&](const std::vector<std::size_t>& pool,
                                 const std::vector<double>* weights, std::size_t k,
                                 std::size_t self) {
    std::vector<std::size_t> out;
    if (pool.empty()) return out;
    std::optional<util::DiscreteDistribution> dist;
    if (weights && !weights->empty()) dist.emplace(*weights);
    int attempts = 0;
    while (out.size() < k && attempts < 200) {
      ++attempts;
      const std::size_t cand = dist ? pool[(*dist)(rng)] : pool[rng.index(pool.size())];
      if (cand == self) continue;
      if (std::find(out.begin(), out.end(), cand) != out.end()) continue;
      out.push_back(cand);
    }
    return out;
  };

  // Transit providers: 1-3 links into tier-1s or larger transits.
  for (std::size_t ti = 0; ti < transits.size(); ++ti) {
    const std::size_t self = transits[ti];
    const std::size_t nprov =
        1 + rng.index(std::max<std::size_t>(1, params.max_providers));
    std::vector<std::size_t> provs;
    // Mostly tier-1s; sometimes an earlier (bigger-index == arbitrary) transit.
    for (std::size_t k = 0; k < nprov; ++k) {
      if (ti > 0 && rng.chance(0.3)) {
        const std::size_t other = transits[rng.index(ti)];  // earlier transit only: keeps hierarchy acyclic
        if (other != self &&
            std::find(provs.begin(), provs.end(), other) == provs.end()) {
          provs.push_back(other);
          continue;
        }
      }
      const std::size_t t1 = tier1s[rng.index(tier1s.size())];
      if (std::find(provs.begin(), provs.end(), t1) == provs.end()) provs.push_back(t1);
    }
    for (const std::size_t p : provs) {
      links.push_back({asn_of(self), asn_of(p), RelType::kCustomerToProvider,
                       /*visible=*/true, Prefix()});
    }
    // Peering among transits (sparse mesh).
    for (std::size_t tj = ti + 1; tj < transits.size(); ++tj) {
      if (rng.chance(params.transit_peering_prob)) {
        links.push_back({asn_of(self), asn_of(transits[tj]), RelType::kPeerToPeer,
                         rng.chance(params.peer_link_visible_prob), Prefix()});
      }
    }
  }

  // Edge networks: 1-3 providers drawn from transits (weighted), rarely a
  // tier-1 directly.
  std::vector<std::size_t> edges;
  edges.insert(edges.end(), isps.begin(), isps.end());
  edges.insert(edges.end(), hostings.begin(), hostings.end());
  edges.insert(edges.end(), contents.begin(), contents.end());
  edges.insert(edges.end(), others.begin(), others.end());
  for (const std::size_t self : edges) {
    const std::size_t nprov =
        1 + rng.index(std::max<std::size_t>(1, params.max_providers));
    auto provs = pick_distinct(transits, &transit_weight, nprov, self);
    if (provs.empty() && !tier1s.empty()) provs.push_back(tier1s[rng.index(tier1s.size())]);
    if (rng.chance(0.08) && !tier1s.empty()) {
      const std::size_t t1 = tier1s[rng.index(tier1s.size())];
      if (std::find(provs.begin(), provs.end(), t1) == provs.end()) provs.push_back(t1);
    }
    for (const std::size_t p : provs) {
      links.push_back({asn_of(self), asn_of(p), RelType::kCustomerToProvider,
                       /*visible=*/true, Prefix()});
    }
  }

  // Peering at the edge: content networks peer broadly with ISPs; ISPs
  // peer moderately among themselves and with hosting.
  const auto add_edge_peerings = [&](const std::vector<std::size_t>& who,
                                     const std::vector<std::size_t>& pool,
                                     double mean) {
    if (pool.empty()) return;
    for (const std::size_t self : who) {
      const auto n = static_cast<std::size_t>(rng.exponential(1.0 / std::max(0.1, mean)));
      auto ps = pick_distinct(pool, nullptr, std::min<std::size_t>(n, pool.size() / 2 + 1), self);
      for (const std::size_t p : ps) {
        // store once with from < to to avoid duplicate mesh entries
        const Asn a = std::min(asn_of(self), asn_of(p));
        const Asn b = std::max(asn_of(self), asn_of(p));
        links.push_back({a, b, RelType::kPeerToPeer,
                         rng.chance(params.peer_link_visible_prob), Prefix()});
      }
    }
  };
  add_edge_peerings(contents, isps, params.content_peering_mean);
  {
    std::vector<std::size_t> isp_pool;
    isp_pool.insert(isp_pool.end(), isps.begin(), isps.end());
    isp_pool.insert(isp_pool.end(), hostings.begin(), hostings.end());
    add_edge_peerings(isps, isp_pool, params.isp_peering_mean);
  }

  // Deduplicate links (same unordered pair may have been generated twice).
  {
    std::sort(links.begin(), links.end(), [](const AsLink& x, const AsLink& y) {
      const auto kx = std::tuple(std::min(x.from, x.to), std::max(x.from, x.to));
      const auto ky = std::tuple(std::min(y.from, y.to), std::max(y.from, y.to));
      if (kx != ky) return kx < ky;
      return static_cast<int>(x.type) < static_cast<int>(y.type);
    });
    links.erase(std::unique(links.begin(), links.end(),
                            [](const AsLink& x, const AsLink& y) {
                              return std::min(x.from, x.to) == std::min(y.from, y.to) &&
                                     std::max(x.from, x.to) == std::max(y.from, y.to);
                            }),
                links.end());
  }

  // ---- router infrastructure prefixes -------------------------------------
  // Each c2p link gets a /24 for its point-to-point router interfaces:
  // usually from the provider's space (stray router traffic then lands in
  // Invalid), otherwise from never-announced space (lands in Unrouted).
  std::map<Asn, std::size_t> index_by_asn;
  for (std::size_t i = 0; i < drafts.size(); ++i) index_by_asn[drafts[i].info.asn] = i;
  for (auto& l : links) {
    if (l.type != RelType::kCustomerToProvider) continue;
    const AsInfo& provider = drafts[index_by_asn[l.to]].info;
    if (rng.chance(params.infra_from_provider_prob) && !provider.prefixes.empty()) {
      const Prefix& base = provider.prefixes[rng.index(provider.prefixes.size())];
      if (base.length() >= 24) {
        l.infra = base;
      } else {
        const std::uint32_t slots = std::uint32_t(1) << (24 - base.length());
        const std::uint32_t pick = rng.uniform_u32(0, slots - 1);
        l.infra = Prefix(Ipv4Addr(base.first() + (pick << 8)), 24);
      }
    } else {
      l.infra = space.take_sub(24);  // allocated to nobody -> never announced
    }
  }

  // ---- filtering ground truth ---------------------------------------------
  for (auto& d : drafts) {
    const int t = static_cast<int>(d.info.type);
    d.info.filter.blocks_bogon = rng.chance(params.bogon_filter_prob[t]);
    d.info.filter.blocks_spoofed = rng.chance(params.spoof_filter_prob[t]);
    d.info.spoofer_density =
        std::max(0.0, params.spoofer_density[t] * rng.lognormal(0.0, 0.6));
    d.info.nat_leak_density =
        std::max(0.0, params.nat_leak_density[t] * rng.lognormal(0.0, 0.6));
  }

  std::vector<AsInfo> ases;
  ases.reserve(drafts.size());
  for (auto& d : drafts) ases.push_back(std::move(d.info));

  Topology topo(std::move(ases), std::move(links));
  if (const auto problems = topo.validate(); !problems.empty()) {
    for (const auto& p : problems) util::log_error() << "generated topology: " << p;
    throw std::runtime_error("generate_topology: inconsistent topology: " + problems.front());
  }
  util::log_info() << "generated topology: " << topo.as_count() << " ASes, "
                   << topo.links().size() << " links, "
                   << topo.allocated_slash24() << " /24s allocated";
  return topo;
}

}  // namespace spoofscope::topo
