// Binary (bitwise) prefix trie with a contiguous node pool.
//
// This is the lookup structure behind the bogon matcher, the routed-space
// table and the per-AS valid-space queries: insert prefixes with attached
// values, then answer longest-prefix-match queries for 32-bit addresses.
// Nodes live in a single vector (no per-node allocation), children are
// indices; depth is bounded by 32 so lookups are a handful of cache lines.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace spoofscope::trie {

/// A map from IPv4 prefixes to values of type T supporting exact-match and
/// longest-prefix-match lookups.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Inserts (or replaces) the value for `p`; returns a reference to the
  /// stored value. References are invalidated by subsequent inserts.
  T& insert(const net::Prefix& p, T value) {
    std::int32_t n = walk_to(p, /*create=*/true);
    Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.value < 0) {
      node.value = static_cast<std::int32_t>(entries_.size());
      entries_.emplace_back(p, std::move(value));
      ++size_;
    } else {
      entries_[static_cast<std::size_t>(node.value)].second = std::move(value);
    }
    return entries_[static_cast<std::size_t>(nodes_[static_cast<std::size_t>(n)].value)].second;
  }

  /// Value stored exactly at `p`, or nullptr.
  const T* find_exact(const net::Prefix& p) const {
    const std::int32_t n = const_cast<PrefixTrie*>(this)->walk_to(p, /*create=*/false);
    if (n < 0) return nullptr;
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    return node.value < 0 ? nullptr : &entries_[static_cast<std::size_t>(node.value)].second;
  }

  T* find_exact(const net::Prefix& p) {
    return const_cast<T*>(static_cast<const PrefixTrie*>(this)->find_exact(p));
  }

  /// Longest (most specific) stored prefix covering `a`, with its value;
  /// nullptr if no stored prefix covers `a`.
  const std::pair<net::Prefix, T>* match_longest(net::Ipv4Addr a) const {
    const std::uint32_t v = a.value();
    std::int32_t n = 0;
    std::int32_t best = nodes_[0].value;
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (v >> (31 - depth)) & 1;
      n = nodes_[static_cast<std::size_t>(n)].child[bit];
      if (n < 0) break;
      const std::int32_t val = nodes_[static_cast<std::size_t>(n)].value;
      if (val >= 0) best = val;
    }
    return best < 0 ? nullptr : &entries_[static_cast<std::size_t>(best)];
  }

  /// True if any stored prefix covers `a`.
  bool covers(net::Ipv4Addr a) const { return match_longest(a) != nullptr; }

  /// Number of stored (prefix, value) pairs.
  std::size_t size() const { return size_; }

  bool empty() const { return size_ == 0; }

  /// Calls fn(prefix, value) for every stored entry, in insertion order.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const auto& [p, v] : entries_) fn(p, v);
  }

  /// All stored entries (insertion order). Stable view for iteration.
  const std::vector<std::pair<net::Prefix, T>>& entries() const { return entries_; }

  /// Number of allocated trie nodes (for memory diagnostics / benches).
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::int32_t value = -1;  ///< index into entries_, -1 if none
  };

  /// Walks to the node for `p`; creates intermediate nodes when `create`.
  /// Returns -1 if not found and !create.
  std::int32_t walk_to(const net::Prefix& p, bool create) {
    std::int32_t n = 0;
    for (int depth = 0; depth < p.length(); ++depth) {
      const int bit = p.bit(depth);
      std::int32_t next = nodes_[static_cast<std::size_t>(n)].child[bit];
      if (next < 0) {
        if (!create) return -1;
        next = static_cast<std::int32_t>(nodes_.size());
        nodes_[static_cast<std::size_t>(n)].child[bit] = next;
        nodes_.push_back(Node{});
      }
      n = next;
    }
    return n;
  }

  std::vector<Node> nodes_;
  std::vector<std::pair<net::Prefix, T>> entries_;
  std::size_t size_ = 0;
};

}  // namespace spoofscope::trie
