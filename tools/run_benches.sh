#!/usr/bin/env bash
# Build and run the core performance benchmarks, recording machine-readable
# results at the repo root as BENCH_perf_core.json.
#
# Usage: tools/run_benches.sh [extra google-benchmark flags...]
#   e.g. tools/run_benches.sh --benchmark_filter='Flat'
#
# JSON goes through --benchmark_out (not stdout) so the reproduction report
# the binary prints after the runs cannot corrupt it.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
OUT_JSON="${REPO_ROOT}/BENCH_perf_core.json"

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" >/dev/null
cmake --build "${BUILD_DIR}" --target bench_perf_core -j "$(nproc)"

"${BUILD_DIR}/bench/bench_perf_core" \
  --benchmark_out="${OUT_JSON}" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${OUT_JSON}"
