// End-to-end classification pipeline: wires together the routing-table
// datasets, the inference factory and the classifier, and aggregates
// class totals — the machinery behind Table 1.
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "classify/classifier.hpp"
#include "classify/flat_classifier.hpp"
#include "net/flow_batch.hpp"
#include "net/trace.hpp"

namespace spoofscope::classify {

/// Totals for one (method, class) cell: sampled values and the number of
/// distinct contributing members.
struct ClassTotals {
  double flows = 0;
  double packets = 0;
  double bytes = 0;
  std::size_t members = 0;
};

/// Aggregated classification outcome across a trace.
struct Aggregate {
  /// totals[space_idx][class]
  std::vector<std::array<ClassTotals, kNumClasses>> totals;
  double total_packets = 0;
  double total_bytes = 0;
  double total_flows = 0;
};

/// Incremental aggregation: accumulates (flow, label) chunks and
/// materializes the distinct-member counts on demand. This is what lets
/// the CLI stream a trace chunk-at-a-time with bounded memory instead of
/// materializing every flow; aggregate_classes is implemented on top.
class AggregateBuilder {
 public:
  explicit AggregateBuilder(std::size_t space_count);

  /// Accumulates one chunk; labels[i] must belong to flows[i].
  /// `exclude_members` drops flows injected by those members (the
  /// Sec 5.2 router-stray exclusion).
  void add(std::span<const net::FlowRecord> flows, std::span<const Label> labels,
           const std::unordered_set<Asn>& exclude_members = {});

  /// SoA twin: accumulates a FlowBatch straight from its lanes, with
  /// totals identical to add() over the gathered records.
  void add(const net::FlowBatch& batch, std::span<const Label> labels,
           const std::unordered_set<Asn>& exclude_members = {});

  /// Folds another builder's accumulation into this one (used for the
  /// deterministic chunk-order reduction of the parallel path).
  void merge(const AggregateBuilder& other);

  /// Snapshot of the aggregate so far; the builder stays usable.
  Aggregate build() const;

 private:
  Aggregate agg_;
  std::vector<std::array<std::unordered_set<Asn>, kNumClasses>> members_;
};

/// Aggregates labels over flows. Engine-agnostic: labels already carry
/// the per-space classes, so only the space count is needed.
/// `exclude_members` drops flows injected by those members (the Sec 5.2
/// router-stray exclusion).
Aggregate aggregate_classes(std::size_t space_count,
                            std::span<const net::FlowRecord> flows,
                            std::span<const Label> labels,
                            const std::unordered_set<Asn>& exclude_members = {});

/// Parallel variant: per-chunk partial Aggregates are accumulated across
/// `pool` and merged in fixed chunk order (member sets unioned at merge
/// time). Totals match the sequential version exactly: every summed
/// quantity is an integral-valued double far below 2^53, so the
/// reassociated partial sums are exact.
Aggregate aggregate_classes(std::size_t space_count,
                            std::span<const net::FlowRecord> flows,
                            std::span<const Label> labels,
                            const std::unordered_set<Asn>& exclude_members,
                            util::ThreadPool& pool);

/// Convenience overloads taking either engine for the space count.
inline Aggregate aggregate_classes(
    const Classifier& classifier, std::span<const net::FlowRecord> flows,
    std::span<const Label> labels,
    const std::unordered_set<Asn>& exclude_members = {}) {
  return aggregate_classes(classifier.space_count(), flows, labels,
                           exclude_members);
}

inline Aggregate aggregate_classes(const Classifier& classifier,
                                   std::span<const net::FlowRecord> flows,
                                   std::span<const Label> labels,
                                   const std::unordered_set<Asn>& exclude_members,
                                   util::ThreadPool& pool) {
  return aggregate_classes(classifier.space_count(), flows, labels,
                           exclude_members, pool);
}

inline Aggregate aggregate_classes(
    const FlatClassifier& classifier, std::span<const net::FlowRecord> flows,
    std::span<const Label> labels,
    const std::unordered_set<Asn>& exclude_members = {}) {
  return aggregate_classes(classifier.space_count(), flows, labels,
                           exclude_members);
}

inline Aggregate aggregate_classes(const FlatClassifier& classifier,
                                   std::span<const net::FlowRecord> flows,
                                   std::span<const Label> labels,
                                   const std::unordered_set<Asn>& exclude_members,
                                   util::ThreadPool& pool) {
  return aggregate_classes(classifier.space_count(), flows, labels,
                           exclude_members, pool);
}

}  // namespace spoofscope::classify
