// Unicast Reverse Path Forwarding baselines.
//
// The paper's operator survey names RPF as the commonly suggested
// anti-spoofing mechanism, and its pitfalls (asymmetric routing,
// multihoming) as the reason operators avoid strict mode. These filters
// implement the three standard modes against the observed routing table,
// so the paper's BGP-cone method can be compared against the deployed
// state of the art on identical traffic.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/routing_table.hpp"
#include "net/flow.hpp"

namespace spoofscope::classify {

/// The standard uRPF flavors (RFC 3704).
enum class UrpfMode : std::uint8_t {
  /// Accept if a route to the source exists at all.
  kLoose = 0,
  /// Accept if the peer appears on *some* observed path of the FIB match
  /// for the source (feasible-path uRPF).
  kFeasible = 1,
  /// Accept only if the peer itself exported a route for the FIB match
  /// (the reverse best path points back at the interface).
  kStrict = 2,
};

std::string urpf_mode_name(UrpfMode mode);

/// A uRPF check at an inter-domain interface: "would a router with this
/// routing view accept a packet with source `src` arriving from peer AS
/// `peer`?" Bogon sources are always rejected (routers pair uRPF with
/// static bogon ACLs).
class UrpfFilter {
 public:
  /// `table` must outlive the filter (the filter keeps a reference).
  UrpfFilter(const bgp::RoutingTable& table, UrpfMode mode);

  bool accepts(net::Ipv4Addr src, net::Asn peer) const;

  UrpfMode mode() const { return mode_; }

 private:
  const bgp::RoutingTable* table_;
  UrpfMode mode_;
  /// Strict mode: per prefix id, the sorted ASes that exported a route
  /// for it (first hops of its observed paths).
  std::vector<std::vector<net::Asn>> first_hops_;
};

}  // namespace spoofscope::classify
