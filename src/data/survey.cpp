#include "data/survey.hpp"

#include <sstream>

#include "util/format.hpp"

namespace spoofscope::data {

SurveyStats survey_results() { return SurveyStats{}; }

std::string format_survey(const SurveyStats& s) {
  std::ostringstream os;
  const auto row = [&](const std::string& label, double v) {
    os << "  " << util::pad_right(label, 46) << util::pad_left(util::percent(v), 8)
       << "\n";
  };
  os << "Operator survey (Sec 2.2), " << s.respondents << " networks via "
     << s.mailing_lists << " operator lists\n";
  row("suffered spoofing-enabled attacks", s.suffered_spoofing_attacks);
  row("complain to non-filtering peers", s.complained_to_peers);
  row("no source validation at all", s.no_source_validation);
  row("ingress: filter well-known ranges", s.ingress_wellknown_ranges);
  row("ingress: customer-specific filters", s.ingress_customer_specific);
  row("ingress: none", s.ingress_none);
  row("egress: customer-AS-specific filters", s.egress_customer_specific);
  row("egress: none", s.egress_none);
  row("egress: non-routable space only", s.egress_nonroutable_only);
  row("own traffic filtered before egress", s.own_traffic_filtered);
  return os.str();
}

}  // namespace spoofscope::data
