#include "traffic/regular.hpp"

#include <algorithm>
#include <cmath>

#include "net/protocols.hpp"

namespace spoofscope::traffic {

std::uint32_t regular_packet_size(util::Rng& rng) {
  // Bimodal: ~45% small control packets, ~55% near-MTU data packets.
  if (rng.chance(0.45)) return 40 + rng.uniform_u32(0, 60);
  return 1200 + rng.uniform_u32(0, 300);
}

namespace {

std::uint16_t ephemeral_port(util::Rng& rng) {
  return static_cast<std::uint16_t>(rng.uniform_u32(32768, 60999));
}

}  // namespace

void generate_regular(const TrafficContext& ctx, util::Rng& rng,
                      std::vector<net::FlowRecord>& out,
                      std::vector<Component>& components,
                      WorkloadSummary& summary) {
  using net::Proto;
  namespace ports = net::ports;

  for (std::size_t i = 0; i < ctx.params().regular_flows; ++i) {
    const auto& m_in = ctx.weighted_member(rng);
    const auto& m_out = ctx.uniform_member(rng);
    const net::Ipv4Addr src = ctx.legitimate_src(m_in.asn, rng);
    const net::Ipv4Addr dst = ctx.dst_behind(m_out.asn, rng);

    // Sampled packet counts are heavy-tailed (elephant flows dominate),
    // capped so a single flow cannot dwarf an hourly bin of the fabric.
    const auto pkts = static_cast<std::uint32_t>(
        std::min(2000.0, rng.pareto(1.0, 1.15)));
    std::uint64_t bytes = 0;

    net::FlowRecord f;
    const double app = rng.uniform();
    if (app < 0.38) {
      // Client->server web requests (small packets, DST 80/443).
      const std::uint16_t port = rng.chance(0.45) ? ports::kHttp : ports::kHttps;
      bytes = std::uint64_t(pkts) * (40 + rng.uniform_u32(0, 200));
      f = make_flow(ctx.diurnal_ts(rng), src, dst, Proto::kTcp,
                    ephemeral_port(rng), port, pkts, bytes, m_in.asn, m_out.asn);
    } else if (app < 0.74) {
      // Server->client web responses (data packets, SRC 80/443).
      const std::uint16_t port = rng.chance(0.45) ? ports::kHttp : ports::kHttps;
      bytes = 0;
      for (std::uint32_t p = 0; p < std::min(pkts, 64u); ++p) {
        bytes += regular_packet_size(rng);
      }
      if (pkts > 64) bytes = bytes * pkts / 64;
      f = make_flow(ctx.diurnal_ts(rng), src, dst, Proto::kTcp, port,
                    ephemeral_port(rng), pkts, bytes, m_in.asn, m_out.asn);
    } else if (app < 0.94) {
      // P2P / BitTorrent-style UDP with ephemeral ports on both sides.
      bytes = std::uint64_t(pkts) * (200 + rng.uniform_u32(0, 1100));
      f = make_flow(ctx.diurnal_ts(rng), src, dst, Proto::kUdp,
                    ephemeral_port(rng), ephemeral_port(rng), pkts, bytes,
                    m_in.asn, m_out.asn);
    } else if (app < 0.97) {
      // DNS and NTP background chatter.
      const bool dns = rng.chance(0.7);
      const std::uint16_t port = dns ? ports::kDns : ports::kNtp;
      const std::uint32_t small = std::min(pkts, 20u);
      bytes = std::uint64_t(small) * (70 + rng.uniform_u32(0, 120));
      f = make_flow(ctx.diurnal_ts(rng), src, dst, Proto::kUdp,
                    rng.chance(0.5) ? port : ephemeral_port(rng), port, small,
                    bytes, m_in.asn, m_out.asn);
    } else {
      // ICMP echo etc.
      const std::uint32_t small = std::min(pkts, 10u);
      bytes = std::uint64_t(small) * (64 + rng.uniform_u32(0, 64));
      f = make_flow(ctx.diurnal_ts(rng), src, dst, Proto::kIcmp, 0, 0, small,
                    bytes, m_in.asn, m_out.asn);
    }
    out.push_back(f);
    components.push_back(Component::kRegular);
    ++summary.regular;
  }
}

}  // namespace spoofscope::traffic
