// Fig 8: packet-size CDFs (8a) and the time series per class (8b) — small
// packets and bursty timing for spoofed traffic, diurnal pattern for
// regular traffic.
#include "bench/common.hpp"

#include "analysis/traffic_char.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_PacketSizeCdfs(benchmark::State& state) {
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  for (auto _ : state) {
    auto cdfs = analysis::packet_size_cdfs(w.trace().flows, w.labels(), idx);
    benchmark::DoNotOptimize(cdfs);
  }
}
BENCHMARK(BM_PacketSizeCdfs)->Unit(benchmark::kMillisecond);

void BM_ClassTimeSeries(benchmark::State& state) {
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  for (auto _ : state) {
    auto ts = analysis::class_time_series(w.trace().flows, w.labels(), idx,
                                          w.trace().meta.window_seconds);
    benchmark::DoNotOptimize(ts);
  }
}
BENCHMARK(BM_ClassTimeSeries)->Unit(benchmark::kMillisecond);

void print_reproduction() {
  bench::print_header(
      "Fig 8 (packet sizes and time-of-day behaviour)",
      "regular traffic bimodal; >80% of spoofed packets < 60 bytes; "
      "regular diurnal, Unrouted/Invalid spiky, Bogon slightly diurnal");
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);

  static const analysis::TrafficClass kAll[] = {
      analysis::TrafficClass::kBogon, analysis::TrafficClass::kUnrouted,
      analysis::TrafficClass::kInvalid, analysis::TrafficClass::kValid};
  static const char* kNames[] = {"Bogon", "Unrouted", "Invalid", "Regular"};

  std::cout << "Fig 8a — fraction of packets with mean size < 100B:\n";
  for (int c = 0; c < 4; ++c) {
    const double f = analysis::small_packet_fraction(
        w.trace().flows, w.labels(), idx, kAll[c], 100.0);
    std::cout << "  " << util::pad_right(kNames[c], 9) << util::percent(f)
              << "\n";
  }

  const auto ts = analysis::class_time_series(w.trace().flows, w.labels(), idx,
                                              w.trace().meta.window_seconds);
  std::cout << "\nFig 8b — time series character (hourly bins):\n"
            << "  " << util::pad_right("class", 10)
            << util::pad_left("diurnality", 12)
            << util::pad_left("burstiness", 12) << "\n";
  for (int c = 0; c < 4; ++c) {
    const auto& series = ts.series[static_cast<int>(kAll[c])];
    std::cout << "  " << util::pad_right(kNames[c], 10)
              << util::pad_left(
                     util::fixed(analysis::diurnality(series, ts.bin_seconds), 3),
                     12)
              << util::pad_left(util::fixed(analysis::burstiness(series), 2), 12)
              << "\n";
  }

  // First week of hourly Unrouted and Regular series, downsampled to 6h.
  std::cout << "\nfirst-week sampled-packet series (6h bins):\n";
  for (const int c : {3, 1}) {
    std::cout << "  " << util::pad_right(kNames[c], 9);
    const auto& series = ts.series[static_cast<int>(kAll[c])];
    for (std::size_t b = 0; b + 6 <= std::min<std::size_t>(series.size(), 168);
         b += 6) {
      double sum = 0;
      for (std::size_t k = 0; k < 6; ++k) sum += series[b + k];
      std::cout << " " << util::human_count(sum);
    }
    std::cout << "\n";
  }
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
