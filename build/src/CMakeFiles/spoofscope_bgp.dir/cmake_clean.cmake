file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_bgp.dir/bgp/as_path.cpp.o"
  "CMakeFiles/spoofscope_bgp.dir/bgp/as_path.cpp.o.d"
  "CMakeFiles/spoofscope_bgp.dir/bgp/collector.cpp.o"
  "CMakeFiles/spoofscope_bgp.dir/bgp/collector.cpp.o.d"
  "CMakeFiles/spoofscope_bgp.dir/bgp/message.cpp.o"
  "CMakeFiles/spoofscope_bgp.dir/bgp/message.cpp.o.d"
  "CMakeFiles/spoofscope_bgp.dir/bgp/mrt_lite.cpp.o"
  "CMakeFiles/spoofscope_bgp.dir/bgp/mrt_lite.cpp.o.d"
  "CMakeFiles/spoofscope_bgp.dir/bgp/routing_table.cpp.o"
  "CMakeFiles/spoofscope_bgp.dir/bgp/routing_table.cpp.o.d"
  "CMakeFiles/spoofscope_bgp.dir/bgp/simulator.cpp.o"
  "CMakeFiles/spoofscope_bgp.dir/bgp/simulator.cpp.o.d"
  "libspoofscope_bgp.a"
  "libspoofscope_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
