// Sec 4.5: cross-checking the passive detections against the (simulated)
// CAIDA Spoofer active measurements.
#include "bench/common.hpp"

#include "analysis/spoofer_crosscheck.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_CrossCheck(benchmark::State& state) {
  const auto counts = world().member_counts(inference::Method::kFullCone);
  for (auto _ : state) {
    auto c = analysis::cross_check_spoofer(counts, world().spoofer());
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CrossCheck);

void print_reproduction() {
  bench::print_header(
      "Sec 4.5 (cross-check with Spoofer active measurements)",
      "97 overlapping ASes; we detect spoofed traffic for 74%; Spoofer "
      "flags 30%; agreement 28% of our positives; we detect 69% of "
      "Spoofer's positives");
  const auto counts = world().member_counts(inference::Method::kFullCone);
  std::cout << analysis::format_cross_check(
      analysis::cross_check_spoofer(counts, world().spoofer()));
  std::cout << "(active measurements lower-bound spoofability: on-path "
               "filtering can eat probes; passive detection requires actual "
               "spoofing during the window)\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
