#include "analysis/venn.hpp"

#include <sstream>

#include "util/format.hpp"

namespace spoofscope::analysis {

VennCounts venn_membership(std::span<const MemberClassCounts> counts) {
  VennCounts v;
  v.member_count = counts.size();
  if (counts.empty()) return v;

  double unrouted_members = 0, unrouted_with_other = 0;
  for (const auto& mc : counts) {
    const bool b = mc.contributes(TrafficClass::kBogon);
    const bool u = mc.contributes(TrafficClass::kUnrouted);
    const bool i = mc.contributes(TrafficClass::kInvalid);
    if (!b && !u && !i) v.clean += 1;
    if (b && !u && !i) v.only_bogon += 1;
    if (!b && u && !i) v.only_unrouted += 1;
    if (!b && !u && i) v.only_invalid += 1;
    if (b && u && !i) v.bogon_unrouted += 1;
    if (b && !u && i) v.bogon_invalid += 1;
    if (!b && u && i) v.unrouted_invalid += 1;
    if (b && u && i) v.all_three += 1;
    if (u) {
      unrouted_members += 1;
      if (b || i) unrouted_with_other += 1;
    }
  }
  const double n = static_cast<double>(counts.size());
  for (double* f : {&v.clean, &v.only_bogon, &v.only_unrouted, &v.only_invalid,
                    &v.bogon_unrouted, &v.bogon_invalid, &v.unrouted_invalid,
                    &v.all_three}) {
    *f /= n;
  }
  v.unrouted_also_other =
      unrouted_members > 0 ? unrouted_with_other / unrouted_members : 0.0;
  return v;
}

std::string format_venn(const VennCounts& v) {
  std::ostringstream os;
  const auto row = [&](const std::string& label, double f) {
    os << "  " << util::pad_right(label, 28) << util::pad_left(util::percent(f), 9)
       << "\n";
  };
  os << "Member contribution Venn (Fig 5), " << v.member_count << " members\n";
  row("clean (regular only)", v.clean);
  row("Bogon only", v.only_bogon);
  row("Unrouted only", v.only_unrouted);
  row("Invalid only", v.only_invalid);
  row("Bogon+Unrouted", v.bogon_unrouted);
  row("Bogon+Invalid", v.bogon_invalid);
  row("Unrouted+Invalid", v.unrouted_invalid);
  row("all three", v.all_three);
  row("Unrouted members also B/I", v.unrouted_also_other);
  return os.str();
}

}  // namespace spoofscope::analysis
