# Empty dependencies file for spoofscope_bgp.
# This may be replaced when dependencies are built.
