# Empty compiler generated dependencies file for analysis_incidents_test.
# This may be replaced when dependencies are built.
