// Fig 5: the Venn diagram of member contributions to the three
// illegitimate classes — the filtering-consistency picture.
#include "bench/common.hpp"

#include <map>

#include "analysis/filtering_strategy.hpp"
#include "analysis/venn.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_VennMembership(benchmark::State& state) {
  const auto counts = world().member_counts(inference::Method::kFullCone);
  for (auto _ : state) {
    auto v = analysis::venn_membership(counts);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_VennMembership);

void print_reproduction() {
  bench::print_header(
      "Fig 5 (member contribution Venn diagram)",
      "18% clean; 28% contribute to all three; 9.6% Bogon only; 7.6% "
      "Invalid only; 96% of Unrouted members also send Bogon/Invalid");
  const auto counts = world().member_counts(inference::Method::kFullCone);
  std::cout << analysis::format_venn(analysis::venn_membership(counts));

  // Sec 5.1: strategy deduction and (simulation-only) its precision
  // against the ground-truth egress policies.
  std::map<analysis::FilteringStrategy, std::size_t> by_strategy;
  for (const auto& mc : counts) ++by_strategy[analysis::deduce_strategy(mc)];
  std::cout << "\nDeduced filtering strategies:\n";
  for (const auto& [s, n] : by_strategy) {
    std::cout << "  " << util::pad_right(analysis::strategy_name(s), 18) << n
              << " members ("
              << util::percent(static_cast<double>(n) / counts.size()) << ")\n";
  }
  std::cout << "\n"
            << analysis::format_strategy_accuracy(analysis::strategy_accuracy(
                   counts, world().topology()));
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
