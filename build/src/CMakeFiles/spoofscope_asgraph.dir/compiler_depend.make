# Empty compiler generated dependencies file for spoofscope_asgraph.
# This may be replaced when dependencies are built.
