#include "inference/valid_space.hpp"

#include <algorithm>

namespace spoofscope::inference {

std::string method_name(Method m) {
  switch (m) {
    case Method::kNaive: return "NAIVE";
    case Method::kCustomerCone: return "CC";
    case Method::kCustomerConeOrg: return "CC+org";
    case Method::kFullCone: return "FULL";
    case Method::kFullConeOrg: return "FULL+org";
  }
  return "?";
}

bool ValidSpace::valid(Asn member, net::Ipv4Addr a) const {
  const auto it = spaces_.find(member);
  return it != spaces_.end() && it->second.contains(a);
}

const trie::IntervalSet* ValidSpace::space_of(Asn member) const {
  const auto it = spaces_.find(member);
  return it == spaces_.end() ? nullptr : &it->second;
}

double ValidSpace::slash24_of(Asn member) const {
  const auto it = spaces_.find(member);
  return it == spaces_.end() ? 0.0 : it->second.slash24_equivalents();
}

std::vector<Asn> ValidSpace::members() const {
  std::vector<Asn> out;
  out.reserve(spaces_.size());
  for (const auto& [asn, s] : spaces_) out.push_back(asn);
  std::sort(out.begin(), out.end());
  return out;
}

void ValidSpace::extend(Asn member, const trie::IntervalSet& extra) {
  auto& space = spaces_[member];
  space = space.unite(extra);
}

}  // namespace spoofscope::inference
