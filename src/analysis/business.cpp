#include "analysis/business.hpp"

#include <sstream>

#include "util/format.hpp"
#include "util/stats.hpp"

namespace spoofscope::analysis {

std::vector<BusinessPoint> business_scatter(
    std::span<const MemberClassCounts> counts) {
  std::vector<BusinessPoint> out;
  out.reserve(counts.size());
  for (const auto& mc : counts) {
    BusinessPoint p;
    p.member = mc.member;
    p.type = mc.type;
    p.total_packets = mc.total_packets();
    p.share_bogon = mc.packet_share(TrafficClass::kBogon);
    p.share_unrouted = mc.packet_share(TrafficClass::kUnrouted);
    p.share_invalid = mc.packet_share(TrafficClass::kInvalid);
    out.push_back(p);
  }
  return out;
}

std::vector<BusinessTypeSummary> business_summary(
    std::span<const BusinessPoint> points, double significant_threshold) {
  std::vector<BusinessTypeSummary> rows(topo::kNumBusinessTypes);
  std::vector<std::vector<double>> totals(topo::kNumBusinessTypes);
  for (int t = 0; t < topo::kNumBusinessTypes; ++t) {
    rows[t].type = static_cast<topo::BusinessType>(t);
  }
  for (const auto& p : points) {
    auto& r = rows[static_cast<int>(p.type)];
    ++r.members;
    totals[static_cast<int>(p.type)].push_back(p.total_packets);
    r.significant_bogon += p.share_bogon > significant_threshold;
    r.significant_unrouted += p.share_unrouted > significant_threshold;
    r.significant_invalid += p.share_invalid > significant_threshold;
  }
  for (int t = 0; t < topo::kNumBusinessTypes; ++t) {
    auto& r = rows[t];
    if (r.members > 0) {
      r.significant_bogon /= r.members;
      r.significant_unrouted /= r.members;
      r.significant_invalid /= r.members;
      r.median_total_packets = util::quantile(totals[t], 0.5);
    }
  }
  return rows;
}

std::string format_business_summary(std::span<const BusinessTypeSummary> rows) {
  std::ostringstream os;
  os << "Business types vs illegitimate shares (Fig 6; significant = >1% of own pkts)\n";
  os << "  " << util::pad_right("type", 10) << util::pad_left("members", 8)
     << util::pad_left("median pkts", 13) << util::pad_left(">1% Bogon", 11)
     << util::pad_left(">1% Unrtd", 11) << util::pad_left(">1% Inval", 11) << "\n";
  for (const auto& r : rows) {
    os << "  " << util::pad_right(topo::business_name(r.type), 10)
       << util::pad_left(std::to_string(r.members), 8)
       << util::pad_left(util::human_count(r.median_total_packets), 13)
       << util::pad_left(util::percent(r.significant_bogon), 11)
       << util::pad_left(util::percent(r.significant_unrouted), 11)
       << util::pad_left(util::percent(r.significant_invalid), 11) << "\n";
  }
  return os.str();
}

}  // namespace spoofscope::analysis
