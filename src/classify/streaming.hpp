// Online detection for operational deployment: the conclusion notes that
// "every network on the inter-domain Internet can opt to apply [the
// method] to filter its incoming traffic, or to detect spoofing". The
// StreamingDetector consumes flows one at a time, maintains rolling
// per-member class counters over a sliding window and raises alerts when
// a member's spoofed-class rate spikes above its baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "classify/classifier.hpp"
#include "net/flow.hpp"

namespace spoofscope::classify {

class FlatClassifier;

/// An alert raised by the streaming detector.
struct SpoofingAlert {
  Asn member = net::kNoAsn;
  std::uint32_t ts = 0;            ///< when the threshold was crossed
  TrafficClass dominant_class = TrafficClass::kInvalid;
  double spoofed_packets_in_window = 0;
  double window_share = 0;         ///< spoofed share of the member's window

  friend bool operator==(const SpoofingAlert&, const SpoofingAlert&) = default;
};

/// Detection knobs.
struct StreamingParams {
  std::uint32_t window_seconds = 3600;  ///< sliding window length
  /// Minimum sampled spoofed packets within the window to alert.
  double min_spoofed_packets = 50;
  /// Minimum spoofed share of the member's own window traffic to alert.
  double min_share = 0.05;
  /// Per-member cooldown between alerts.
  std::uint32_t cooldown_seconds = 6 * 3600;
};

/// Stateful single-pass detector. Feed flows in timestamp order; alerts
/// are delivered through the callback passed to ingest().
class StreamingDetector {
 public:
  /// `classifier` must outlive the detector; `space_idx` selects the
  /// inference method (typically FULL+org).
  StreamingDetector(const Classifier& classifier, std::size_t space_idx,
                    StreamingParams params = {});

  /// Flat-engine variant: identical alerts (the engines are proven
  /// bit-identical), O(1) per-flow classification cost.
  StreamingDetector(const FlatClassifier& classifier, std::size_t space_idx,
                    StreamingParams params = {});

  /// Processes one flow; invokes `on_alert` zero or one time.
  void ingest(const net::FlowRecord& flow,
              const std::function<void(const SpoofingAlert&)>& on_alert);

  /// Convenience: run over a whole trace, collecting all alerts.
  std::vector<SpoofingAlert> run(std::span<const net::FlowRecord> flows);

  /// Flows processed so far.
  std::uint64_t processed() const { return processed_; }

 private:
  struct Sample {
    std::uint32_t ts;
    std::uint32_t packets;
    TrafficClass cls;
  };
  struct MemberWindow {
    std::deque<Sample> samples;
    double spoofed = 0;           ///< spoofed-class packets in window
    double total = 0;             ///< all packets in window
    double per_class[kNumClasses] = {0, 0, 0, 0};
    std::uint32_t last_alert_ts = 0;
    bool alerted_once = false;
  };

  const Classifier* classifier_ = nullptr;   // exactly one engine is set
  const FlatClassifier* flat_ = nullptr;
  std::size_t space_idx_;
  StreamingParams params_;
  std::unordered_map<Asn, MemberWindow> windows_;
  std::uint64_t processed_ = 0;
};

}  // namespace spoofscope::classify
