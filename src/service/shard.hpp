// One ingest shard of the resident service: a StreamingDetector pinned
// to a dedicated worker thread behind a bounded task queue. The control
// thread routes flow batches in (submit), the worker runs the SIMD
// batch classify + detect path and appends per-shard delta checkpoints
// (state::DeltaChain) at its configured cadence; alerts accumulate in
// shard-local order for the merge stage.
//
// Threading contract: submit()/flush_async()/checkpoint_async() enqueue
// under the shard mutex (blocking when the queue is full — natural
// backpressure toward the control thread); the worker drains the queue
// holding the mutex only around queue ops, so detection itself runs
// unlocked. wait_idle() barriers until the queue is empty and the
// worker is between tasks — the mutex handoff of that barrier is what
// makes the quiescent accessors (alerts(), health(), detector()) and
// plane republish race-free without per-flow synchronization.
//
// A worker exception (e.g. an injected crash during a checkpoint write)
// marks the shard dead: the error is stored, the queue is discarded,
// and wait_idle()/submit() rethrow it. Recovery is a fresh Shard over
// the same checkpoint base — resume() restores the newest consistent
// cut from the delta chain and re-feeding the shard's flow sequence
// fast-forwards through the already-processed prefix, so the restarted
// shard continues bit-identically (the rolling-restart differential
// proves it under every injected crash kind).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "classify/streaming.hpp"
#include "net/flow_batch.hpp"
#include "state/delta_chain.hpp"
#include "util/error_policy.hpp"

namespace spoofscope::service {

struct ShardConfig {
  std::size_t index = 0;        ///< this shard's slot in [0, shard_count)
  std::size_t shard_count = 1;
  std::size_t space_idx = 0;
  classify::StreamingParams params;
  /// Delta-chain base path; empty disables checkpointing.
  std::string checkpoint_base;
  /// Checkpoint after at least this many newly processed flows (0 with
  /// a base path: only explicit checkpoint()/drain cuts).
  std::uint64_t checkpoint_every = 0;
  std::size_t max_chain = 16;   ///< DeltaChain rollover length
  util::ErrorPolicy policy = util::ErrorPolicy::kStrict;
  /// submit() blocks once this many batches are queued (backpressure).
  std::size_t max_queued_batches = 8;
};

class Shard {
 public:
  /// Flat-engine shard. The shared_ptr keeps the plane alive across a
  /// wholesale republish; the plane object must only be mutated while
  /// the shard is quiescent.
  Shard(std::shared_ptr<const classify::FlatClassifier> plane, ShardConfig cfg);

  /// Trie-engine shard; `classifier` must outlive the shard.
  Shard(const classify::Classifier& classifier, ShardConfig cfg);

  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Restores the newest consistent cut from the shard's delta chain
  /// (no-op without a checkpoint base). Subsequent ingest fast-forwards
  /// through the first processed() records it is fed. Call before
  /// start(). Returns the flows the restored cut had processed (0 on a
  /// clean first run).
  std::uint64_t resume(util::IngestStats* stats = nullptr);

  /// Launches the worker thread. Idempotent.
  void start();

  /// Enqueues one routed batch (moved in). Blocks while the queue is
  /// full; rethrows the shard's stored error if the worker died.
  void submit(net::FlowBatch batch);

  /// Enqueues a detector flush (drains the reorder buffer) and, when
  /// checkpointing is configured, a final checkpoint cut.
  void flush_async();

  /// Enqueues an explicit checkpoint cut.
  void checkpoint_async();

  /// Blocks until every queued task has run and the worker is idle;
  /// rethrows the worker's stored exception if it died (preserving the
  /// original type — util::InjectedCrash stays an InjectedCrash).
  void wait_idle();

  /// Stops the worker after the queued tasks drain. Idempotent; the
  /// destructor calls it.
  void stop();

  /// True once the worker died on an exception (until replaced).
  bool dead() const;

  // Quiescent accessors: valid only after wait_idle() (or before
  // start()); the idle barrier's mutex handoff publishes the worker's
  // writes.
  const std::vector<classify::SpoofingAlert>& alerts() const { return alerts_; }
  classify::DetectorHealth health() const { return detector_.health(); }
  std::uint64_t processed() const { return detector_.processed(); }
  const ShardConfig& config() const { return cfg_; }

  /// Re-syncs the shard with the hub's current plane (quiescent only):
  /// a different plane object rebinds the detector; the same object
  /// patched in place is picked up via the detector's epoch sync on the
  /// next ingest.
  void republish(std::shared_ptr<const classify::FlatClassifier> plane);

 private:
  enum class Op { kBatch, kFlush, kCheckpoint };
  struct Task {
    Op op = Op::kBatch;
    net::FlowBatch batch;
  };

  void worker();
  void run_task(Task& task);
  void ingest(const net::FlowBatch& batch);
  void save_checkpoint();

  ShardConfig cfg_;
  std::shared_ptr<const classify::FlatClassifier> plane_;  // flat engine only
  classify::StreamingDetector detector_;
  std::optional<state::DeltaChain> chain_;
  std::uint64_t skip_records_ = 0;  ///< resume fast-forward remaining
  std::uint64_t last_saved_ = 0;
  std::vector<classify::SpoofingAlert> alerts_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< task available / queue slot free
  std::condition_variable idle_cv_;  ///< queue drained + worker idle
  std::deque<Task> queue_;
  bool busy_ = false;
  bool stopping_ = false;
  bool dead_ = false;
  std::exception_ptr error_;
  std::thread thread_;
};

}  // namespace spoofscope::service
