file(REMOVE_RECURSE
  "CMakeFiles/analysis_strategy_test.dir/analysis_strategy_test.cpp.o"
  "CMakeFiles/analysis_strategy_test.dir/analysis_strategy_test.cpp.o.d"
  "analysis_strategy_test"
  "analysis_strategy_test.pdb"
  "analysis_strategy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
