#include "analysis/filtering_strategy.hpp"

#include <sstream>

#include "util/format.hpp"

namespace spoofscope::analysis {

std::string strategy_name(FilteringStrategy s) {
  switch (s) {
    case FilteringStrategy::kClean: return "clean";
    case FilteringStrategy::kBogonLeakOnly: return "bogon-leak-only";
    case FilteringStrategy::kSemiStaticOnly: return "semi-static-only";
    case FilteringStrategy::kNoFiltering: return "no-filtering";
    case FilteringStrategy::kInconsistent: return "inconsistent";
  }
  return "?";
}

FilteringStrategy deduce_strategy(const MemberClassCounts& counts) {
  const bool b = counts.contributes(TrafficClass::kBogon);
  const bool u = counts.contributes(TrafficClass::kUnrouted);
  const bool i = counts.contributes(TrafficClass::kInvalid);
  if (!b && !u && !i) return FilteringStrategy::kClean;
  if (b && !u && !i) return FilteringStrategy::kBogonLeakOnly;
  if (!b && !u && i) return FilteringStrategy::kSemiStaticOnly;
  if (b && u && i) return FilteringStrategy::kNoFiltering;
  return FilteringStrategy::kInconsistent;
}

StrategyAccuracy strategy_accuracy(std::span<const MemberClassCounts> counts,
                                   const topo::Topology& topo) {
  StrategyAccuracy acc;
  for (const auto& mc : counts) {
    const auto* info = topo.find(mc.member);
    if (!info) continue;
    ++acc.members;
    switch (deduce_strategy(mc)) {
      case FilteringStrategy::kClean:
        ++acc.clean_deduced;
        acc.clean_truly_filtering += info->filter.blocks_spoofed;
        break;
      case FilteringStrategy::kNoFiltering:
        ++acc.none_deduced;
        acc.none_truly_unfiltered +=
            !info->filter.blocks_spoofed && !info->filter.blocks_bogon;
        break;
      case FilteringStrategy::kBogonLeakOnly:
        ++acc.bogonleak_deduced;
        acc.bogonleak_match +=
            info->filter.blocks_spoofed && !info->filter.blocks_bogon;
        break;
      default:
        break;
    }
  }
  return acc;
}

std::string format_strategy_accuracy(const StrategyAccuracy& a) {
  std::ostringstream os;
  os << "Deduction vs ground truth over " << a.members << " members (Sec 5.1 "
     << "lower-bound check):\n"
     << "  deduced clean: " << a.clean_deduced << ", truly source-validating: "
     << util::percent(a.clean_precision()) << "\n"
     << "  deduced no-filtering: " << a.none_deduced
     << ", truly unfiltered: " << util::percent(a.none_precision()) << "\n"
     << "  deduced bogon-leak-only: " << a.bogonleak_deduced
     << ", policy matches: " << util::percent(a.bogonleak_precision()) << "\n";
  return os.str();
}

}  // namespace spoofscope::analysis
