#include "bgp/routing_table.hpp"

#include <gtest/gtest.h>

#include "net/prefix.hpp"

namespace spoofscope::bgp {
namespace {

using net::Ipv4Addr;
using net::pfx;

TEST(RoutingTable, EmptyTable) {
  RoutingTableBuilder b;
  const auto t = b.build();
  EXPECT_TRUE(t.prefixes().empty());
  EXPECT_FALSE(t.is_routed(Ipv4Addr::from_octets(8, 8, 8, 8)));
  EXPECT_FALSE(t.origin_of(Ipv4Addr::from_octets(8, 8, 8, 8)));
  EXPECT_DOUBLE_EQ(t.routed_slash24(), 0.0);
}

TEST(RoutingTable, BasicIngestion) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/16"), AsPath{1, 2, 3});
  b.ingest_route(pfx("20.0.0.0/16"), AsPath{1, 4});
  const auto t = b.build();

  EXPECT_EQ(t.prefixes().size(), 2u);
  EXPECT_TRUE(t.is_routed(Ipv4Addr::from_octets(10, 0, 1, 1)));
  EXPECT_FALSE(t.is_routed(Ipv4Addr::from_octets(30, 0, 0, 1)));
  EXPECT_EQ(*t.origin_of(Ipv4Addr::from_octets(10, 0, 1, 1)), 3u);
  EXPECT_EQ(*t.origin_of(Ipv4Addr::from_octets(20, 0, 1, 1)), 4u);
}

TEST(RoutingTable, MostSpecificOriginWins) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/8"), AsPath{1, 2});
  b.ingest_route(pfx("10.5.0.0/16"), AsPath{1, 3});
  const auto t = b.build();
  EXPECT_EQ(*t.origin_of(Ipv4Addr::from_octets(10, 5, 0, 1)), 3u);
  EXPECT_EQ(*t.origin_of(Ipv4Addr::from_octets(10, 6, 0, 1)), 2u);
}

TEST(RoutingTable, LengthFilterMatchesPaper) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/7"), AsPath{1, 2});    // too short
  b.ingest_route(pfx("10.0.0.0/25"), AsPath{1, 2});   // too specific
  b.ingest_route(pfx("10.0.0.0/8"), AsPath{1, 2});    // boundary ok
  b.ingest_route(pfx("11.0.0.0/24"), AsPath{1, 2});   // boundary ok
  const auto t = b.build();
  EXPECT_EQ(t.prefixes().size(), 2u);
  EXPECT_EQ(t.dropped_by_length(), 2u);
  EXPECT_EQ(t.ingested_records(), 4u);
}

TEST(RoutingTable, DeduplicatesPathsAndPrefixes) {
  RoutingTableBuilder b;
  for (int i = 0; i < 5; ++i) {
    b.ingest_route(pfx("10.0.0.0/16"), AsPath{1, 2, 3});
  }
  b.ingest_route(pfx("10.0.0.0/16"), AsPath{4, 2, 3});
  const auto t = b.build();
  EXPECT_EQ(t.prefixes().size(), 1u);
  EXPECT_EQ(t.paths().size(), 2u);
  const auto pid = t.prefix_id(pfx("10.0.0.0/16"));
  ASSERT_TRUE(pid);
  EXPECT_EQ(t.paths_of(*pid).size(), 2u);
}

TEST(RoutingTable, MoasPrefixKeepsAllOrigins) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/16"), AsPath{1, 2, 3});
  b.ingest_route(pfx("10.0.0.0/16"), AsPath{1, 2, 4});
  const auto t = b.build();
  const auto pid = t.prefix_id(pfx("10.0.0.0/16"));
  ASSERT_TRUE(pid);
  EXPECT_EQ(t.origins_of(*pid).size(), 2u);
}

TEST(RoutingTable, DirectedEdgesFromPaths) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/16"), AsPath{1, 2, 3});
  const auto t = b.build();
  const auto& edges = t.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<Asn, Asn>{1, 2}));
  EXPECT_EQ(edges[1], (std::pair<Asn, Asn>{2, 3}));
}

TEST(RoutingTable, PrependingDoesNotCreateSelfEdges) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/16"), AsPath{1, 2, 2, 2, 3});
  const auto t = b.build();
  for (const auto& [l, r] : t.edges()) EXPECT_NE(l, r);
  EXPECT_EQ(t.edges().size(), 2u);
}

TEST(RoutingTable, AsesCollectsEveryObservedAs) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/16"), AsPath{1, 2, 3});
  b.ingest_route(pfx("20.0.0.0/16"), AsPath{4, 3});
  const auto t = b.build();
  EXPECT_EQ(t.ases(), (std::vector<Asn>{1, 2, 3, 4}));
}

TEST(RoutingTable, NaivePrefixSetsPerAs) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/16"), AsPath{1, 2, 3});
  b.ingest_route(pfx("20.0.0.0/16"), AsPath{2, 4});
  const auto t = b.build();
  // AS2 appears on the paths of both prefixes.
  EXPECT_EQ(t.prefixes_on_paths_of(2).size(), 2u);
  // AS3 only on its own.
  EXPECT_EQ(t.prefixes_on_paths_of(3).size(), 1u);
  // Unknown AS: empty.
  EXPECT_TRUE(t.prefixes_on_paths_of(999).empty());
}

TEST(RoutingTable, WithdrawDoesNotUnroute) {
  RoutingTableBuilder b;
  UpdateMessage a;
  a.kind = UpdateMessage::Kind::kAnnounce;
  a.peer = 1;
  a.prefix = pfx("10.0.0.0/16");
  a.path = AsPath{1, 2};
  b.ingest(MrtRecord{a});
  UpdateMessage w;
  w.kind = UpdateMessage::Kind::kWithdraw;
  w.peer = 1;
  w.prefix = pfx("10.0.0.0/16");
  b.ingest(MrtRecord{w});
  const auto t = b.build();
  EXPECT_TRUE(t.is_routed(Ipv4Addr::from_octets(10, 0, 0, 1)));
}

TEST(RoutingTable, RoutedSpaceMergesOverlaps) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/8"), AsPath{1, 2});
  b.ingest_route(pfx("10.1.0.0/16"), AsPath{1, 3});  // nested
  const auto t = b.build();
  EXPECT_DOUBLE_EQ(t.routed_slash24(), 65536.0);
}

TEST(RoutingTable, RibEntryIngestion) {
  RoutingTableBuilder b;
  RibEntry e;
  e.peer = 5;
  e.prefix = pfx("10.0.0.0/16");
  e.path = AsPath{5, 6};
  b.ingest(MrtRecord{e});
  const auto t = b.build();
  EXPECT_EQ(t.prefixes().size(), 1u);
  EXPECT_EQ(*t.origin_of(Ipv4Addr::from_octets(10, 0, 0, 1)), 6u);
}

TEST(RoutingTable, BuilderResetsAfterBuild) {
  RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/16"), AsPath{1, 2});
  (void)b.build();
  const auto t2 = b.build();
  EXPECT_TRUE(t2.prefixes().empty());
}

}  // namespace
}  // namespace spoofscope::bgp
