// Synthetic stand-in for CAIDA's AS-to-Organization dataset (Sec 3.2).
// Derived from the topology's ground-truth organization ids, but — like
// the WHOIS-based original — incomplete: a configurable fraction of
// multi-AS organizations is missed entirely, and individual members can
// be missing from an otherwise known group. These gaps are what the
// Sec 4.4 false-positive hunt later recovers.
#pragma once

#include <cstdint>

#include "asgraph/org_merge.hpp"
#include "topo/topology.hpp"

namespace spoofscope::data {

struct As2OrgParams {
  /// Probability that a multi-AS organization appears in the dataset.
  double org_coverage = 0.85;
  /// Probability that a member of a covered organization is listed.
  double member_coverage = 0.95;
};

/// Builds the (imperfect) as2org grouping from ground truth.
/// Deterministic in (topology, params, seed).
asgraph::OrgMap build_as2org(const topo::Topology& topo,
                             const As2OrgParams& params, std::uint64_t seed);

/// The perfect grouping (every multi-AS org, every member) — used by
/// tests and ablations.
asgraph::OrgMap ground_truth_orgs(const topo::Topology& topo);

}  // namespace spoofscope::data
