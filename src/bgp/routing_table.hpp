// Aggregation of everything the collectors saw during the measurement
// window into the datasets the detection method runs on:
//   - the routed prefix table (prefix -> origin ASes) and routed space,
//   - the set of distinct observed AS paths,
//   - the directed AS adjacency (left neighbor upstream of right),
//   - per-AS "appears on the path of" prefix sets (the Naive method).
//
// Announcements more specific than /24 or less specific than /8 are
// disregarded, as in the paper (Sec 3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/mrt_lite.hpp"
#include "trie/interval_set.hpp"
#include "trie/prefix_trie.hpp"

namespace spoofscope::bgp {

/// Immutable product of RoutingTableBuilder.
class RoutingTable {
 public:
  /// Identifier of a distinct routed prefix (index into prefixes()).
  using PrefixId = std::uint32_t;
  /// Identifier of a distinct observed AS path (index into paths()).
  using PathId = std::uint32_t;

  /// True if some routed prefix covers `a`.
  bool is_routed(net::Ipv4Addr a) const { return routed_.covers(a); }

  /// Origin of the most specific routed prefix covering `a` (one origin
  /// in case of MOAS); nullopt if unrouted.
  std::optional<Asn> origin_of(net::Ipv4Addr a) const;

  /// Id of the most specific routed prefix covering `a` (the FIB match);
  /// nullopt if unrouted.
  std::optional<PrefixId> covering_prefix(net::Ipv4Addr a) const;

  /// All distinct routed prefixes.
  const std::vector<net::Prefix>& prefixes() const { return prefixes_; }

  /// Number of distinct routed prefixes; PrefixIds are dense in
  /// [0, prefix_count()).
  std::size_t prefix_count() const { return prefixes_.size(); }

  /// Calls fn(pid, prefix) for every routed prefix in PrefixId order —
  /// the iteration the flat classification plane compiles its base table
  /// and per-member prefix-id bitsets from.
  template <typename Fn>
  void visit_prefixes(Fn&& fn) const {
    for (PrefixId pid = 0; pid < prefixes_.size(); ++pid) {
      fn(pid, prefixes_[pid]);
    }
  }

  /// Id of a routed prefix; nullopt if not in the table.
  std::optional<PrefixId> prefix_id(const net::Prefix& p) const;

  /// Origin ASes observed for prefix `pid` (>= 1; more on MOAS).
  std::span<const Asn> origins_of(PrefixId pid) const;

  /// All distinct AS paths observed.
  const std::vector<AsPath>& paths() const { return paths_; }

  /// Distinct paths observed for prefix `pid`.
  std::span<const PathId> paths_of(PrefixId pid) const;

  /// Directed AS graph edges derived from paths: (left, right) where left
  /// was observed immediately upstream (closer to the collector) of right.
  const std::vector<std::pair<Asn, Asn>>& edges() const { return edges_; }

  /// All ASes that appear anywhere in the observed paths.
  const std::vector<Asn>& ases() const { return ases_; }

  /// Ids of prefixes on whose observed paths `asn` appears (the Naive
  /// method's valid set). Empty when the AS was never observed.
  std::span<const PrefixId> prefixes_on_paths_of(Asn asn) const;

  /// Routed address space as a normalized interval set.
  const trie::IntervalSet& routed_space() const { return routed_space_; }

  /// Routed space in /24 equivalents.
  double routed_slash24() const { return routed_space_.slash24_equivalents(); }

  /// Ingestion statistics.
  std::size_t ingested_records() const { return ingested_; }
  std::size_t dropped_by_length() const { return dropped_; }

 private:
  friend class RoutingTableBuilder;

  trie::PrefixTrie<PrefixId> routed_;  // prefix -> PrefixId
  std::vector<net::Prefix> prefixes_;
  std::vector<std::vector<Asn>> prefix_origins_;   // by PrefixId
  std::vector<std::vector<PathId>> prefix_paths_;  // by PrefixId
  std::vector<AsPath> paths_;
  std::vector<std::pair<Asn, Asn>> edges_;
  std::vector<Asn> ases_;
  std::unordered_map<Asn, std::vector<PrefixId>> as_prefixes_;
  trie::IntervalSet routed_space_;
  std::size_t ingested_ = 0;
  std::size_t dropped_ = 0;
};

/// Incremental builder; ingest everything, then build() once.
class RoutingTableBuilder {
 public:
  struct Options {
    std::uint8_t min_length = 8;   ///< drop announcements shorter than this
    std::uint8_t max_length = 24;  ///< drop announcements longer than this
  };

  RoutingTableBuilder() : RoutingTableBuilder(Options{}) {}
  explicit RoutingTableBuilder(Options options);

  /// Ingests a RIB entry or update. Withdrawals are counted but do not
  /// remove anything: a prefix announced at any time in the window counts
  /// as routed (Sec 3.3).
  void ingest(const MrtRecord& record);

  void ingest(std::span<const MrtRecord> records);

  /// Core ingestion: one (prefix, path) observation.
  void ingest_route(const net::Prefix& prefix, const AsPath& path);

  /// Finalizes into an immutable RoutingTable. The builder is left empty.
  RoutingTable build();

 private:
  struct PathKey {
    std::size_t operator()(const std::vector<Asn>& hops) const;
  };

  Options options_;
  RoutingTable table_;
  std::unordered_map<std::vector<Asn>, RoutingTable::PathId, PathKey> path_ids_;
};

}  // namespace spoofscope::bgp
