// Performance characterization of the hot paths, plus the DESIGN.md
// ablations: trie LPM vs linear scan, interval-set membership vs trie,
// SCC-bitset cones vs naive per-node DFS.
#include "bench/common.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "analysis/streaming.hpp"
#include "asgraph/full_cone.hpp"
#include "bgp/collector.hpp"
#include "bgp/message.hpp"
#include "bgp/simulator.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/pipeline.hpp"
#include "classify/streaming.hpp"
#include "service/server.hpp"
#include "state/plane_cache.hpp"
#include "net/flow_batch.hpp"
#include "net/mapped_trace.hpp"
#include "net/trace.hpp"
#include "topo/generator.hpp"
#include "traffic/workload.hpp"
#include "net/bogon.hpp"
#include "trie/prefix_set.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace spoofscope;
using bench::world;

/// The flat plane compiled once from the shared bench scenario.
const classify::FlatClassifier& flat_world() {
  static const classify::FlatClassifier flat =
      classify::FlatClassifier::compile(world().classifier());
  return flat;
}

/// The bench trace serialized once and mmapped back: what a production
/// ingest pipeline reads. The temp file is unlinked immediately (the
/// mapping keeps it alive), so no artifact is left behind.
const net::MappedTrace& mapped_world_trace() {
  static const net::MappedTrace trace = [] {
    const auto path = std::filesystem::temp_directory_path() /
                      "spoofscope-bench-e2e.trace";
    {
      std::ofstream out(path, std::ios::binary);
      net::write_trace(out, world().trace());
    }
    net::MappedTrace t(path.string());
    std::filesystem::remove(path);
    return t;
  }();
  return trace;
}

// --- classification hot path -----------------------------------------------

void BM_ClassifySingle(benchmark::State& state) {
  const auto& w = world();
  const auto member = w.ixp().members().front().asn;
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.classifier().classify(net::Ipv4Addr(rng.next_u32()), member, 3));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifySingle);

void BM_ClassifyAllMethods(benchmark::State& state) {
  const auto& w = world();
  const auto member = w.ixp().members().front().asn;
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.classifier().classify_all(net::Ipv4Addr(rng.next_u32()), member));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyAllMethods);

// --- flat engine: same queries on the compiled DIR-24-8 plane ---------------

void BM_FlatClassifySingle(benchmark::State& state) {
  const auto& flat = flat_world();
  const auto member = world().ixp().members().front().asn;
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flat.classify(net::Ipv4Addr(rng.next_u32()), member, 3));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatClassifySingle);

void BM_FlatClassifyAllMethods(benchmark::State& state) {
  const auto& flat = flat_world();
  const auto member = world().ixp().members().front().asn;
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flat.classify_all(net::Ipv4Addr(rng.next_u32()), member));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatClassifyAllMethods);

void BM_FlatClassifyAllMethodsMemberView(benchmark::State& state) {
  // The per-member lookup hoisted entirely out of the loop: the cost an
  // ingest pipeline pays per flow once it holds a MemberView.
  const auto& flat = flat_world();
  const auto view = flat.member_view(world().ixp().members().front().asn);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flat.classify_all(net::Ipv4Addr(rng.next_u32()), view));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatClassifyAllMethodsMemberView);

void BM_FlatClassifyTrace(benchmark::State& state) {
  const auto& w = world();
  const auto& flat = flat_world();
  for (auto _ : state) {
    auto labels = classify::classify_trace(flat, w.trace().flows);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.trace().flows.size()));
}
BENCHMARK(BM_FlatClassifyTrace)->Unit(benchmark::kMillisecond);

void BM_FlatClassifyTraceParallel(benchmark::State& state) {
  const auto& w = world();
  const auto& flat = flat_world();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto labels = classify::classify_trace(flat, w.trace().flows, pool);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.trace().flows.size()));
}
BENCHMARK(BM_FlatClassifyTraceParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()  // worker-thread time is invisible to cpu_time
    ->Unit(benchmark::kMillisecond);

void BM_FlatCompile(benchmark::State& state) {
  // The one-off cost the flat engine trades for O(1) lookups.
  const auto& w = world();
  for (auto _ : state) {
    auto flat = classify::FlatClassifier::compile(w.classifier());
    benchmark::DoNotOptimize(flat);
  }
}
BENCHMARK(BM_FlatCompile)->Unit(benchmark::kMillisecond);

void BM_FlatCompileParallel(benchmark::State& state) {
  const auto& w = world();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto flat = classify::FlatClassifier::compile(w.classifier(), pool);
    benchmark::DoNotOptimize(flat);
  }
}
BENCHMARK(BM_FlatCompileParallel)
    ->ArgName("threads")
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Builds the oscillating 100-route batch pair for the plane-patch
/// benchmarks. `scattered` false models flap/TE churn — each pair
/// withdraws a routed prefix and announces its first-half split at the
/// same address, so every canonical rank is preserved and the patch
/// stays on its in-place path. `scattered` true is the worst case:
/// withdrawals strided across the table plus brand-new announcements,
/// shifting nearly every rank and forcing the remap + record-copy path.
void build_patch_batches(bool scattered,
                         std::vector<bgp::UpdateMessage>& forward,
                         std::vector<bgp::UpdateMessage>& inverse) {
  const auto& routed = world().table().prefixes();
  const std::set<net::Prefix> in_table(routed.begin(), routed.end());
  const auto add = [](std::vector<bgp::UpdateMessage>& batch,
                      bgp::UpdateMessage::Kind kind, const net::Prefix& p) {
    bgp::UpdateMessage u;
    u.kind = kind;
    u.prefix = p;
    u.path = bgp::AsPath{65000};
    batch.push_back(u);
  };
  using Kind = bgp::UpdateMessage::Kind;
  if (scattered) {
    // 50 strided withdrawals of routed prefixes ...
    for (std::size_t i = 0; i < 50; ++i) {
      const net::Prefix& p = routed[(i * 97) % routed.size()];
      add(forward, Kind::kWithdraw, p);
      add(inverse, Kind::kAnnounce, p);
    }
    // ... plus 50 announcements of /16s not already in the table (the
    // scenario allocator roams the whole non-bogon space, so dedup).
    for (std::uint32_t block = 0; forward.size() < 100; ++block) {
      const net::Prefix p(net::Ipv4Addr(block << 16), 16);
      if (in_table.count(p) != 0) continue;
      add(forward, Kind::kAnnounce, p);
      add(inverse, Kind::kWithdraw, p);
    }
    return;
  }
  // 50 withdraw-the-/N + announce-its-first-/N+1 pairs: both sort to the
  // same canonical rank, so no other prefix renumbers.
  std::size_t pairs = 0;
  for (std::size_t i = 0; pairs < 50; i += 97) {
    const net::Prefix& p = routed[i % routed.size()];
    if (p.length() > 23) continue;
    const net::Prefix split(net::Ipv4Addr(p.first()),
                            static_cast<std::uint8_t>(p.length() + 1));
    if (in_table.count(split) != 0) continue;
    add(forward, Kind::kWithdraw, p);
    add(forward, Kind::kAnnounce, split);
    add(inverse, Kind::kWithdraw, split);
    add(inverse, Kind::kAnnounce, p);
    ++pairs;
  }
}

void BM_FlatPlanePatchImpl(benchmark::State& state, bool scattered) {
  // Churn survival: apply a 100-route announce/withdraw batch in place
  // instead of recompiling the whole plane. Iterations alternate a batch
  // with its exact inverse so the plane oscillates between two states
  // and every iteration pays a full 100-route patch.
  auto flat = classify::FlatClassifier::compile(world().classifier());
  std::vector<bgp::UpdateMessage> forward, inverse;
  build_patch_batches(scattered, forward, inverse);
  util::ThreadPool pool(0);  // hardware concurrency, like compile()
  classify::FlatClassifier::UpdateApplyOptions opts;
  opts.pool = &pool;
  flat.apply_updates({}, opts);  // take ownership outside the timed loop
  bool flip = false;
  for (auto _ : state) {
    const auto stats = flat.apply_updates(flip ? inverse : forward, opts);
    benchmark::DoNotOptimize(stats);
    flip = !flip;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}

void BM_FlatPlanePatch(benchmark::State& state) {
  BM_FlatPlanePatchImpl(state, /*scattered=*/false);
}
BENCHMARK(BM_FlatPlanePatch)->Unit(benchmark::kMillisecond);

void BM_FlatPlanePatchScattered(benchmark::State& state) {
  BM_FlatPlanePatchImpl(state, /*scattered=*/true);
}
BENCHMARK(BM_FlatPlanePatchScattered)->Unit(benchmark::kMillisecond);

// --- ablation: trie LPM vs linear scan for the bogon check ------------------

void BM_BogonTrieLookup(benchmark::State& state) {
  trie::PrefixSet bogons;
  for (const auto& p : net::bogon_prefixes()) bogons.insert(p);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bogons.covers(net::Ipv4Addr(rng.next_u32())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BogonTrieLookup);

void BM_BogonLinearScan(benchmark::State& state) {
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::is_bogon(net::Ipv4Addr(rng.next_u32())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BogonLinearScan);

// --- ablation: routed-table LPM --------------------------------------------

void BM_RoutedTrieLpm(benchmark::State& state) {
  const auto& table = world().table();
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.is_routed(net::Ipv4Addr(rng.next_u32())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutedTrieLpm);

// --- ablation: interval-set membership (valid-space check) ------------------

void BM_ValidSpaceMembership(benchmark::State& state) {
  const auto& w = world();
  const auto& space = w.classifier().space(3);  // FULL
  const auto member = w.ixp().members().front().asn;
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.valid(member, net::Ipv4Addr(rng.next_u32())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValidSpaceMembership);

// --- ablation: SCC-bitset cones vs naive DFS ---------------------------------

std::size_t dfs_cone_size(const asgraph::AsGraph& g, std::size_t start) {
  std::vector<bool> seen(g.node_count(), false);
  std::vector<std::uint32_t> stack{static_cast<std::uint32_t>(start)};
  seen[start] = true;
  std::size_t n = 0;
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    ++n;
    for (const auto w : g.successors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return n;
}

void BM_ConeBitsetConstructionPlusQueries(benchmark::State& state) {
  const auto graph =
      asgraph::AsGraph::from_routing_table(world().table());
  for (auto _ : state) {
    asgraph::FullCone cone{asgraph::AsGraph(graph)};
    std::size_t total = 0;
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      total += cone.cone_size(graph.asn_at(i));
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ConeBitsetConstructionPlusQueries)->Unit(benchmark::kMillisecond);

void BM_ConePerNodeDfs(benchmark::State& state) {
  const auto graph = asgraph::AsGraph::from_routing_table(world().table());
  for (auto _ : state) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      total += dfs_cone_size(graph, i);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ConePerNodeDfs)->Unit(benchmark::kMillisecond);

// --- substrate construction costs -------------------------------------------

void BM_TopologyGeneration(benchmark::State& state) {
  const auto params = bench::bench_params().topology;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto topo = topo::generate_topology(params, seed++);
    benchmark::DoNotOptimize(topo);
  }
}
BENCHMARK(BM_TopologyGeneration)->Unit(benchmark::kMillisecond);

void BM_BgpPropagationPerOrigin(benchmark::State& state) {
  static const auto topo =
      topo::generate_topology(bench::bench_params().topology, 7);
  static const bgp::Simulator sim(topo);
  std::size_t i = 0;
  for (auto _ : state) {
    auto res = sim.propagate(topo.asn_at(i++ % topo.as_count()));
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BgpPropagationPerOrigin);

void BM_WorkloadGeneration(benchmark::State& state) {
  static const auto topo =
      topo::generate_topology(bench::bench_params().topology, 7);
  static const auto ixp =
      ixp::Ixp::build(topo, bench::bench_params().ixp, 8);
  static const auto whois = data::build_whois(topo, {}, 9);
  auto params = bench::bench_params().workload;
  params.regular_flows = 50'000;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto w = traffic::generate_workload(topo, ixp, whois, params, seed++);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

// --- batched data plane ------------------------------------------------------

void BM_BatchDecode(benchmark::State& state) {
  // mmap-to-FlowBatch decode rate: header validated once, then record
  // checksum + SoA scatter per flow, lanes reused across chunks.
  const auto& trace = mapped_world_trace();
  net::FlowBatch batch;
  std::int64_t records = 0;
  for (auto _ : state) {
    net::MappedTraceReader reader(trace);
    while (reader.next_batch(batch, 8192) > 0) {
      records += static_cast<std::int64_t>(batch.size());
      benchmark::DoNotOptimize(batch.src().data());
    }
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_BatchDecode)->Unit(benchmark::kMillisecond);

/// The bench trace as one big SoA batch (built once per binary).
const net::FlowBatch& world_batch() {
  static const net::FlowBatch batch = [] {
    net::FlowBatch b;
    b.reserve(world().trace().flows.size());
    for (const auto& f : world().trace().flows) b.push_back(f);
    return b;
  }();
  return batch;
}

void BM_FlatClassifyBatch(benchmark::State& state) {
  // The batch kernel alone (batch already decoded), on the auto-selected
  // SIMD kernel: upper bound of the batched plane, and the number to
  // compare against BM_FlatClassifyTrace's per-record loop. The
  // per-kernel comparison lives in BM_FlatClassifyBatchKernel.
  const auto& flat = flat_world();
  const auto& batch = world_batch();
  std::vector<classify::Label> labels(batch.size());
  for (auto _ : state) {
    flat.classify_batch(batch, labels);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_FlatClassifyBatch)->Unit(benchmark::kMillisecond);

void flat_classify_batch_kernel(benchmark::State& state,
                                classify::SimdKernel kernel) {
  // One registration per kernel usable on this host, so a single Release
  // run records the scalar baseline and the SIMD speedup side by side.
  const auto& flat = flat_world();
  const auto& batch = world_batch();
  std::vector<classify::Label> labels(batch.size());
  for (auto _ : state) {
    flat.classify_batch(batch, labels, kernel);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}

const int kKernelBenchesRegistered = [] {
  for (const auto k : classify::usable_simd_kernels()) {
    const std::string name = std::string("BM_FlatClassifyBatchKernel/simd:") +
                             classify::simd_kernel_name(k);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [k](benchmark::State& st) { flat_classify_batch_kernel(st, k); })
        ->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

void BM_FlatClassifyBatchPrefetch(benchmark::State& state) {
  // kPrefetchDistance sweep for the scalar fallback kernel (the hot path
  // on non-AVX2/NEON hosts); the winner is compiled into
  // flat_classifier.cpp and the numbers recorded in DESIGN.md §13.
  const auto& flat = flat_world();
  const auto& batch = world_batch();
  std::vector<classify::Label> labels(batch.size());
  const auto dist = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    flat.classify_batch_scalar(batch, labels, dist);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_FlatClassifyBatchPrefetch)
    ->ArgName("dist")
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

// --- end-to-end throughput ----------------------------------------------------

void BM_EndToEndTraceClassification(benchmark::State& state) {
  // The production ingest pipeline on one thread: mmapped trace ->
  // batched decode -> prefetched flat classification -> lane-wise
  // aggregation. (Historically this bench ran the per-record trie
  // engine over pre-decoded flows; see
  // BM_EndToEndTraceClassificationPerRecordTrie for that baseline.)
  const auto& trace = mapped_world_trace();
  const auto& flat = flat_world();
  const std::size_t spaces = world().classifier().space_count();
  net::FlowBatch batch;
  std::vector<classify::Label> labels;
  std::int64_t records = 0;
  for (auto _ : state) {
    net::MappedTraceReader reader(trace);
    classify::AggregateBuilder builder(spaces);
    while (reader.next_batch(batch, 8192) > 0) {
      labels.resize(batch.size());
      flat.classify_batch(batch, labels);
      builder.add(batch, labels);
      records += static_cast<std::int64_t>(batch.size());
    }
    auto agg = builder.build();
    benchmark::DoNotOptimize(agg);
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_EndToEndTraceClassification)->Unit(benchmark::kMillisecond);

void BM_EndToEndTraceClassificationScalarKernel(benchmark::State& state) {
  // Same pipeline pinned to the scalar batch kernel: the end-to-end lift
  // attributable to SIMD is this number against
  // BM_EndToEndTraceClassification.
  const auto& trace = mapped_world_trace();
  const auto& flat = flat_world();
  const std::size_t spaces = world().classifier().space_count();
  net::FlowBatch batch;
  std::vector<classify::Label> labels;
  std::int64_t records = 0;
  for (auto _ : state) {
    net::MappedTraceReader reader(trace);
    classify::AggregateBuilder builder(spaces);
    while (reader.next_batch(batch, 8192) > 0) {
      labels.resize(batch.size());
      flat.classify_batch(batch, labels, classify::SimdKernel::kScalar);
      builder.add(batch, labels);
      records += static_cast<std::int64_t>(batch.size());
    }
    auto agg = builder.build();
    benchmark::DoNotOptimize(agg);
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_EndToEndTraceClassificationScalarKernel)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndTraceClassificationPerRecordTrie(benchmark::State& state) {
  // The pre-batching baseline this PR is measured against.
  const auto& w = world();
  for (auto _ : state) {
    auto labels = classify::classify_trace(w.classifier(), w.trace().flows);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.trace().flows.size()));
}
BENCHMARK(BM_EndToEndTraceClassificationPerRecordTrie)
    ->Unit(benchmark::kMillisecond);

// --- streaming report: throughput + constant-memory evidence -----------------

/// Process-lifetime peak resident set in KiB (getrusage; ru_maxrss is
/// KiB on Linux, bytes on macOS). 0 where getrusage is unavailable.
long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
#ifdef __APPLE__
  return static_cast<long>(ru.ru_maxrss / 1024);
#else
  return static_cast<long>(ru.ru_maxrss);
#endif
#else
  return 0;
#endif
}

/// Current resident set in KiB (Linux /proc/self/statm; 0 elsewhere).
/// Unlike peak_rss_kb this can shrink, so deltas around a bench loop
/// measure the memory the loop actually retained.
long current_rss_kb() {
#if defined(__linux__)
  std::ifstream in("/proc/self/statm");
  long pages_total = 0;
  long pages_resident = 0;
  in >> pages_total >> pages_resident;
  return pages_resident * (::sysconf(_SC_PAGESIZE) / 1024);
#else
  return 0;
#endif
}

/// Writes the bench trace repeated `mult` times as one valid v2 trace
/// file and returns its path. Built at the byte level — header patched
/// to declare mult x records, record bytes written mult times — so a
/// 10x trace never materializes 10x flows in RAM (which would pollute
/// the peak-RSS measurement this file exists for).
std::filesystem::path multiplied_trace_file(int mult) {
  const auto path =
      std::filesystem::temp_directory_path() /
      ("spoofscope-bench-report-" + std::to_string(mult) + "x.trace");
  std::ostringstream buf;
  net::write_trace(buf, world().trace());
  const std::string bytes = buf.str();
  std::string header = bytes.substr(0, net::format::kHeaderSizeV2);
  auto* h = reinterpret_cast<std::uint8_t*>(header.data());
  net::format::put_u64(
      h + 24, static_cast<std::uint64_t>(world().trace().flows.size()) *
                  static_cast<std::uint64_t>(mult));
  net::format::put_u32(h + net::format::kHeaderBody,
                       net::format::fnv1a32(h, net::format::kHeaderBody));
  std::ofstream out(path, std::ios::binary);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (int i = 0; i < mult; ++i) {
    out.write(bytes.data() + header.size(),
              static_cast<std::streamsize>(bytes.size() - header.size()));
  }
  if (!out) throw std::runtime_error("bench: cannot write " + path.string());
  return path;
}

void BM_ReportStreaming(benchmark::State& state) {
  // The full `spoofscope report` data path: mmapped trace -> batched
  // decode -> flat classification -> all streaming analysis builders
  // (production caps), with consumed pages released as the pass
  // advances. Arg is the trace-length multiplier; the rss counters are
  // the machine-checked constant-memory evidence (growth must not
  // scale with trace_mult).
  const int mult = static_cast<int>(state.range(0));
  const auto path = multiplied_trace_file(mult);
  const auto& flat = flat_world();
  const std::size_t spaces = world().classifier().space_count();
  std::int64_t records = 0;
  const long rss_before = current_rss_kb();
  for (auto _ : state) {
    net::MappedTrace trace(path.string());
    net::MappedTraceReader reader(trace);
    analysis::ReportOptions opts;
    opts.limits = analysis::ReportLimits::production();
    analysis::StreamingReport report(spaces, opts);
    net::FlowBatch batch;
    std::vector<classify::Label> labels;
    while (reader.next_batch(batch, 8192) > 0) {
      labels.resize(batch.size());
      flat.classify_batch(batch, labels);
      report.add(batch, labels);
      reader.drop_consumed();
      records += static_cast<std::int64_t>(batch.size());
    }
    auto result = report.finish();
    benchmark::DoNotOptimize(result.aggregate.total_flows);
  }
  state.counters["peak_rss_kb"] =
      benchmark::Counter(static_cast<double>(peak_rss_kb()));
  state.counters["rss_growth_kb"] = benchmark::Counter(
      static_cast<double>(std::max(0L, current_rss_kb() - rss_before)));
  state.SetItemsProcessed(records);
  std::filesystem::remove(path);
}
BENCHMARK(BM_ReportStreaming)
    ->ArgName("trace_mult")
    ->Arg(1)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

// --- durable state plane -----------------------------------------------------

/// Scratch path for state-plane benches; removed after each bench loop.
std::filesystem::path state_scratch(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

/// A detector that has ingested the whole bench trace — the state size a
/// long-running deployment checkpoints.
classify::StreamingDetector populated_detector() {
  classify::StreamingParams sp;
  sp.reorder_skew_seconds = 60;
  classify::StreamingDetector d(flat_world(), 0, sp);
  d.run(world().trace().flows);
  return d;
}

void BM_DetectorSave(benchmark::State& state) {
  // Crash-safe checkpoint cost: serialize + fsync + rename per save.
  const auto det = populated_detector();
  const auto path = state_scratch("spoofscope-bench-det.ckpt");
  for (auto _ : state) {
    det.save(path.string());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_DetectorSave)->Unit(benchmark::kMillisecond);

void BM_DetectorRestore(benchmark::State& state) {
  const auto path = state_scratch("spoofscope-bench-det.ckpt");
  populated_detector().save(path.string());
  classify::StreamingParams sp;
  sp.reorder_skew_seconds = 60;
  for (auto _ : state) {
    classify::StreamingDetector d(flat_world(), 0, sp);
    const bool ok = d.restore(path.string());
    benchmark::DoNotOptimize(ok);
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_DetectorRestore)->Unit(benchmark::kMillisecond);

void BM_FlatPlaneCacheLoad(benchmark::State& state) {
  // The cache-hit cold start (mmap + checksum/digest validation) — the
  // number to hold against BM_FlatCompile, which is what a cold start
  // costs without the cache.
  const auto dir = state_scratch("spoofscope-bench-plane-cache");
  std::filesystem::remove_all(dir);
  state::PlaneCache cache(dir.string());
  cache.load_or_compile(world().classifier(), nullptr);  // populate
  for (auto _ : state) {
    auto loaded = cache.load_or_compile(world().classifier(), nullptr);
    benchmark::DoNotOptimize(loaded.plane);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_FlatPlaneCacheLoad)->Unit(benchmark::kMillisecond);

// --- resident service --------------------------------------------------------

/// The bench trace pre-decoded into routing-round-sized batches, so the
/// serve bench measures shard fan-out + classify + detect, not decode.
const std::vector<net::FlowBatch>& world_trace_batches() {
  static const std::vector<net::FlowBatch> batches = [] {
    std::vector<net::FlowBatch> out;
    net::MappedTraceReader reader(mapped_world_trace());
    net::FlowBatch batch;
    while (reader.next_batch(batch, 8192) > 0) {
      out.push_back(batch);
      batch.clear();
    }
    return out;
  }();
  return batches;
}

void BM_ServeThroughput(benchmark::State& state) {
  // Whole-service ingest throughput at N shards: control thread routes
  // pre-decoded batches, shard workers run the SIMD classify + detect
  // path in parallel. run_benches.sh gates 4-shard >= 2x single-shard
  // on machines with >= 4 cores (the shards are the scaling unit the
  // ISSUE's acceptance criterion measures).
  static const auto plane = std::make_shared<classify::FlatClassifier>(
      classify::FlatClassifier::compile(world().classifier()));
  const auto& batches = world_trace_batches();
  std::int64_t records = 0;
  for (auto _ : state) {
    service::ServerConfig cfg;
    cfg.shards = static_cast<std::size_t>(state.range(0));
    cfg.params.window_seconds = 1800;
    service::Server server(plane, cfg);
    server.start();
    for (const auto& batch : batches) {
      server.submit_batch(batch);
      records += static_cast<std::int64_t>(batch.size());
    }
    server.barrier();
    const auto drained = server.drain();
    benchmark::DoNotOptimize(drained.alerts);
    server.stop();
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_ServeThroughput)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- parallel engine scaling -------------------------------------------------

void BM_ClassifyTraceParallel(benchmark::State& state) {
  const auto& w = world();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto labels =
        classify::classify_trace(w.classifier(), w.trace().flows, pool);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.trace().flows.size()));
}
BENCHMARK(BM_ClassifyTraceParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_AggregateClassesParallel(benchmark::State& state) {
  const auto& w = world();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto agg = classify::aggregate_classes(w.classifier(), w.trace().flows,
                                           w.labels(), {}, pool);
    benchmark::DoNotOptimize(agg);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.trace().flows.size()));
}
BENCHMARK(BM_AggregateClassesParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_BuildValidSpacesParallel(benchmark::State& state) {
  const auto& w = world();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const auto members = w.ixp().member_asns();
  for (auto _ : state) {
    auto space = w.factory().build(inference::Method::kFullConeOrg, members,
                                   pool);
    benchmark::DoNotOptimize(space);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(members.size()));
}
BENCHMARK(BM_BuildValidSpacesParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- internet-scale parallel generation --------------------------------------

/// Thread-count points for the scenario-generation benches: 1, 2, and
/// hardware concurrency when it is a distinct third point. Registered
/// via Apply so a 1-core box still gets a (trivially gated) baseline.
void scaling_thread_args(benchmark::internal::Benchmark* b) {
  b->ArgName("threads");
  b->Arg(1);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw >= 2) b->Arg(2);
  if (hw > 2) b->Arg(hw);
}

void BM_TopologyGenerateParallel(benchmark::State& state) {
  // Chunk-parallel KaGen-style generation. chunk_ases is part of the
  // output contract, so it is pinned here: every thread count generates
  // the same ~7-chunk world and the timings are comparable.
  auto params = bench::bench_params().topology;
  params.chunk_ases = 64;
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto topo = topo::generate_topology(params, 7, pool);
    benchmark::DoNotOptimize(topo);
  }
}
BENCHMARK(BM_TopologyGenerateParallel)
    ->Apply(scaling_thread_args)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_BgpPropagationParallel(benchmark::State& state) {
  // The internet-scale propagation data path: every plan group fanned
  // over the pool, records streamed per chunk (propagate_collect), with
  // a full-feed spec consuming them. items_per_second = plan groups/s;
  // tools/run_benches.sh gates the threads:1 -> threads:max speedup.
  static const auto topo =
      topo::generate_topology(bench::bench_params().topology, 7);
  static const bgp::Simulator sim(topo);
  static const auto plan = bgp::make_announcement_plan(topo, {}, 11);
  bgp::CollectorSpec spec;
  spec.name = "bench-full-feed";
  for (std::size_t i = 0; i < 8; ++i) spec.feeders.push_back(topo.asn_at(i));
  const std::array<bgp::CollectorSpec, 1> specs{spec};
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::int64_t groups = 0;
  std::size_t records = 0;
  for (auto _ : state) {
    records = 0;
    bgp::propagate_collect(
        sim, plan, specs, pool,
        [&](std::size_t, const bgp::MrtRecord&) { ++records; });
    groups += static_cast<std::int64_t>(plan.groups.size());
  }
  benchmark::DoNotOptimize(records);
  state.SetItemsProcessed(groups);
}
BENCHMARK(BM_BgpPropagationParallel)
    ->Apply(scaling_thread_args)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ScenarioEndToEnd(benchmark::State& state) {
  // Full internet-scale world (ScenarioParams::internet(): 80K ASes,
  // on the order of a million announced prefixes) end to end through
  // build_scenario. The rss counters are the bounded-memory evidence:
  // streamed chunked propagation must keep the build inside a fixed
  // route-state budget instead of materializing 80K propagation
  // results. All-origins propagation is inherently O(ASes x links), so
  // SPOOFSCOPE_BENCH_INTERNET_FACTOR (default 8) divides the AS
  // populations; set it to 1 for the real thing (minutes of CPU).
  const char* env = std::getenv("SPOOFSCOPE_BENCH_INTERNET_FACTOR");
  const int factor = env != nullptr ? std::max(1, std::atoi(env)) : 8;
  auto params = scenario::ScenarioParams::internet();
  params.threads = static_cast<std::size_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  auto shrink = [factor](std::size_t& n, std::size_t floor) {
    n = std::max(floor, n / static_cast<std::size_t>(factor));
  };
  shrink(params.topology.num_tier1, 1);
  shrink(params.topology.num_transit, 1);
  shrink(params.topology.num_isp, 1);
  shrink(params.topology.num_hosting, 1);
  shrink(params.topology.num_content, 1);
  shrink(params.topology.num_other, 1);
  shrink(params.ixp.member_count, 8);
  const long rss_before = current_rss_kb();
  for (auto _ : state) {
    auto w = scenario::build_scenario(params);
    state.counters["ases"] =
        benchmark::Counter(static_cast<double>(w->topology().as_count()));
    state.counters["table_prefixes"] =
        benchmark::Counter(static_cast<double>(w->table().prefix_count()));
    benchmark::DoNotOptimize(w);
  }
  state.counters["scale_factor"] =
      benchmark::Counter(static_cast<double>(factor));
  state.counters["peak_rss_kb"] =
      benchmark::Counter(static_cast<double>(peak_rss_kb()));
  state.counters["rss_growth_kb"] = benchmark::Counter(
      static_cast<double>(std::max(0L, current_rss_kb() - rss_before)));
}
/// Registered only when SPOOFSCOPE_BENCH_INTERNET=1: even scaled down
/// it costs whole minutes of CPU, which would dominate every default
/// bench run. tools/run_benches.sh prints how to enable it.
const bool scenario_end_to_end_registered = [] {
  const char* enabled = std::getenv("SPOOFSCOPE_BENCH_INTERNET");
  if (enabled == nullptr || std::string_view(enabled) != "1") return false;
  benchmark::RegisterBenchmark("BM_ScenarioEndToEnd", BM_ScenarioEndToEnd)
      ->Iterations(1)
      ->UseRealTime()
      ->Unit(benchmark::kSecond);
  return true;
}();

void print_reproduction() {
  bench::print_header(
      "performance characterization (no paper counterpart)",
      "the paper's pipeline must keep up with a 5 Tb/s fabric's sampled "
      "flow stream; numbers above are this implementation's budget");
  std::cout << "See the benchmark timings above: classification must stay\n"
            << "well under a microsecond per flow for IXP-scale deployments.\n";

  const auto stats = flat_world().stats();
  const double mib = 1024.0 * 1024.0;
  std::cout << "\nflat engine compile report (DIR-24-8 plane):\n"
            << "  base-class table : " << stats.table_bytes / mib
            << " MiB (2^24 x u32)\n"
            << "  member bitsets   : " << stats.bitset_bytes / mib << " MiB ("
            << stats.members << " members x 8 spaces over " << stats.prefixes
            << " prefixes)\n"
            << "  overflow lane    : " << stats.overflow_prefixes
            << " prefixes longer than /24 in " << stats.overflow_slots
            << " /24 slots\n"
            << "  partial rows     : " << stats.partial_rows
            << " (member,space) rows needing the IntervalSet fallback\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
