file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_analysis.dir/analysis/addr_structure.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/addr_structure.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/attack_patterns.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/attack_patterns.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/business.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/business.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/export.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/export.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/filtering_strategy.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/filtering_strategy.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/incidents.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/incidents.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/member_stats.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/member_stats.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/method_eval.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/method_eval.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/portmix.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/portmix.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/spoofer_crosscheck.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/spoofer_crosscheck.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/table1.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/table1.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/traffic_char.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/traffic_char.cpp.o.d"
  "CMakeFiles/spoofscope_analysis.dir/analysis/venn.cpp.o"
  "CMakeFiles/spoofscope_analysis.dir/analysis/venn.cpp.o.d"
  "libspoofscope_analysis.a"
  "libspoofscope_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
