#include "bgp/as_path.hpp"

#include <gtest/gtest.h>

namespace spoofscope::bgp {
namespace {

TEST(AsPath, EmptyPath) {
  const AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.length(), 0u);
}

TEST(AsPath, BasicAccessors) {
  const AsPath p{100, 200, 300};
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.first(), 100u);
  EXPECT_EQ(p.origin(), 300u);
  EXPECT_EQ(p.at(1), 200u);
}

TEST(AsPath, ParseValid) {
  const auto p = AsPath::parse("3320 1299 64500");
  ASSERT_TRUE(p);
  EXPECT_EQ(*p, (AsPath{3320, 1299, 64500}));
}

TEST(AsPath, ParseToleratesWhitespace) {
  const auto p = AsPath::parse("  100  200 ");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 2u);
}

TEST(AsPath, ParseEmptyIsEmptyPath) {
  const auto p = AsPath::parse("");
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->empty());
}

TEST(AsPath, ParseRejectsGarbage) {
  EXPECT_FALSE(AsPath::parse("100 abc"));
  EXPECT_FALSE(AsPath::parse("100 0 200"));  // ASN 0 reserved
  EXPECT_FALSE(AsPath::parse("-5"));
}

TEST(AsPath, Contains) {
  const AsPath p{1, 2, 3};
  EXPECT_TRUE(p.contains(2));
  EXPECT_FALSE(p.contains(4));
}

TEST(AsPath, Duplicates) {
  EXPECT_FALSE((AsPath{1, 2, 3}).has_duplicates());
  EXPECT_TRUE((AsPath{1, 2, 1}).has_duplicates());
  EXPECT_TRUE((AsPath{5, 5}).has_duplicates());  // prepending
}

TEST(AsPath, Prepend) {
  const AsPath p{2, 3};
  const AsPath q = p.prepend(1);
  EXPECT_EQ(q, (AsPath{1, 2, 3}));
  EXPECT_EQ(p, (AsPath{2, 3}));  // original unchanged
}

TEST(AsPath, RoundTripString) {
  const AsPath p{64500, 3356, 15169};
  EXPECT_EQ(p.str(), "64500 3356 15169");
  EXPECT_EQ(*AsPath::parse(p.str()), p);
}

}  // namespace
}  // namespace spoofscope::bgp
