// Fig 5: which members contribute traffic to which of the three
// illegitimate classes — the Venn diagram of filtering consistency.
#pragma once

#include <span>
#include <string>

#include "analysis/member_stats.hpp"

namespace spoofscope::analysis {

/// Fractions of members in each region of the {Bogon, Unrouted, Invalid}
/// Venn diagram. All eight regions sum to 1.
struct VennCounts {
  std::size_t member_count = 0;
  double clean = 0;            ///< none of the three classes
  double only_bogon = 0;
  double only_unrouted = 0;
  double only_invalid = 0;
  double bogon_unrouted = 0;   ///< exactly bogon + unrouted
  double bogon_invalid = 0;
  double unrouted_invalid = 0;
  double all_three = 0;

  /// Of the members contributing Unrouted, the fraction that also
  /// contribute Bogon or Invalid (96% in the paper).
  double unrouted_also_other = 0;
};

VennCounts venn_membership(std::span<const MemberClassCounts> counts);

/// Text rendering of the diagram regions.
std::string format_venn(const VennCounts& v);

}  // namespace spoofscope::analysis
