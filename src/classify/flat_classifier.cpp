#include "classify/flat_classifier.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "net/bogon.hpp"

namespace spoofscope::classify {

namespace {

/// Packs the same class for every configured space.
Label uniform_label(std::size_t num_spaces, TrafficClass c) {
  Label label = 0;
  for (std::size_t i = 0; i < num_spaces; ++i) {
    label |= static_cast<Label>(c) << (2 * i);
  }
  return label;
}

}  // namespace

FlatClassifier FlatClassifier::compile(const Classifier& source) {
  return compile_impl(source, nullptr);
}

FlatClassifier FlatClassifier::compile(const Classifier& source,
                                       util::ThreadPool& pool) {
  return compile_impl(source, &pool);
}

FlatClassifier FlatClassifier::compile_impl(const Classifier& source,
                                            util::ThreadPool* pool) {
  FlatClassifier flat;
  flat.table_ = &source.table();
  flat.spaces_.reserve(source.space_count());
  for (std::size_t i = 0; i < source.space_count(); ++i) {
    flat.spaces_.push_back(source.shared_space(i));
  }
  flat.all_bogon_ = uniform_label(flat.spaces_.size(), TrafficClass::kBogon);
  flat.all_unrouted_ = uniform_label(flat.spaces_.size(), TrafficClass::kUnrouted);
  flat.all_invalid_ = uniform_label(flat.spaces_.size(), TrafficClass::kInvalid);

  const bgp::RoutingTable& table = *flat.table_;

  // --- base-class table ------------------------------------------------
  // Zero-init == kKindUnrouted everywhere; then paint routed prefixes in
  // ascending length order so more-specifics overwrite their covering
  // blocks (the DIR-24-8 full expansion of the FIB), then the bogon
  // ranges (the classification cascade checks bogons first, and every
  // /8–/24 bogon covers whole /24 blocks). Prefixes longer than /24
  // break per-/24 homogeneity: their blocks become overflow entries that
  // re-run the exact trie lookups per address.
  flat.base_.assign(std::size_t{1} << 24, 0u);
  std::vector<std::pair<net::Prefix, std::uint32_t>> routed;
  routed.reserve(table.prefix_count());
  table.visit_prefixes([&](bgp::RoutingTable::PrefixId pid,
                           const net::Prefix& p) { routed.emplace_back(p, pid); });
  std::sort(routed.begin(), routed.end(),
            [](const auto& a, const auto& b) {
              return a.first.length() < b.first.length();
            });

  const auto paint = [&](const net::Prefix& p, std::uint32_t entry) {
    const std::size_t first = p.first() >> 8;
    const std::size_t last = p.last() >> 8;
    std::fill(flat.base_.begin() + first, flat.base_.begin() + last + 1, entry);
  };
  for (const auto& [p, pid] : routed) {
    if (p.length() <= 24) {
      paint(p, (kKindRouted << kKindShift) | pid);
    } else {
      ++flat.stats_.overflow_prefixes;
      flat.base_[p.first() >> 8] = kKindOverflow << kKindShift;
    }
  }
  for (const auto& p : net::bogon_prefixes()) {
    flat.bogons_.insert(p);
    if (p.length() <= 24) {
      paint(p, kKindBogon << kKindShift);
    } else {
      ++flat.stats_.overflow_prefixes;
      flat.base_[p.first() >> 8] = kKindOverflow << kKindShift;
    }
  }
  for (const std::uint32_t e : flat.base_) {
    if ((e >> kKindShift) == kKindOverflow) ++flat.stats_.overflow_slots;
  }

  // --- per (member, prefix) membership records --------------------------
  // Slot order is the sorted union of every space's members, so the
  // compiled plane is independent of hash-map iteration order.
  for (const auto& space : flat.spaces_) {
    const auto asns = space->members();
    flat.members_.insert(flat.members_.end(), asns.begin(), asns.end());
  }
  std::sort(flat.members_.begin(), flat.members_.end());
  flat.members_.erase(std::unique(flat.members_.begin(), flat.members_.end()),
                      flat.members_.end());

  std::size_t probe_cap = 16;
  while (probe_cap < flat.members_.size() * 2) probe_cap <<= 1;
  flat.probe_mask_ = static_cast<std::uint32_t>(probe_cap - 1);
  flat.probe_keys_.assign(probe_cap, 0);
  flat.probe_slots_.assign(probe_cap, MemberView::kNoSlot);
  for (std::size_t slot = 0; slot < flat.members_.size(); ++slot) {
    std::uint32_t h =
        (static_cast<std::uint32_t>(flat.members_[slot]) * 2654435761u) &
        flat.probe_mask_;
    while (flat.probe_slots_[h] != MemberView::kNoSlot) {
      h = (h + 1) & flat.probe_mask_;
    }
    flat.probe_keys_[h] = flat.members_[slot];
    flat.probe_slots_[h] = static_cast<std::uint32_t>(slot);
  }

  const std::size_t num_spaces = flat.spaces_.size();
  flat.num_prefixes_ = table.prefix_count();
  flat.records_.assign(flat.members_.size() * flat.num_prefixes_, 0);
  flat.fallback_.assign(flat.members_.size() * num_spaces, nullptr);

  // Each member's record row (all methods interleaved) is written by
  // exactly one lane, so the fan-out is race-free and deterministic.
  const auto build_rows = [&](std::size_t slot_begin, std::size_t slot_end) {
    for (std::size_t slot = slot_begin; slot < slot_end; ++slot) {
      const Asn member = flat.members_[slot];
      std::uint16_t* row = flat.records_.data() + slot * flat.num_prefixes_;
      for (std::size_t s = 0; s < num_spaces; ++s) {
        const trie::IntervalSet* space = flat.spaces_[s]->space_of(member);
        if (!space || space->empty()) continue;
        table.visit_prefixes([&](bgp::RoutingTable::PrefixId pid,
                                 const net::Prefix& p) {
          if (space->contains_range(p.first(), p.last())) {
            row[pid] |= static_cast<std::uint16_t>(1u << s);
          } else if (space->intersects_range(p.first(), p.last())) {
            row[pid] |= static_cast<std::uint16_t>(1u << (8 + s));
            flat.fallback_[slot * num_spaces + s] = space;
          }
        });
      }
    }
  };
  if (pool) {
    pool->parallel_for(0, flat.members_.size(), build_rows);
  } else {
    build_rows(0, flat.members_.size());
  }

  for (const auto* fb : flat.fallback_) {
    if (fb) ++flat.stats_.partial_rows;
  }
  flat.stats_.table_bytes = flat.base_.size() * sizeof(std::uint32_t);
  flat.stats_.bitset_bytes = flat.records_.size() * sizeof(std::uint16_t);
  flat.stats_.prefixes = flat.num_prefixes_;
  flat.stats_.members = flat.members_.size();
  return flat;
}

FlatClassifier::MemberView FlatClassifier::member_view(Asn member) const {
  MemberView view;
  view.member_ = member;
  std::uint32_t h =
      (static_cast<std::uint32_t>(member) * 2654435761u) & probe_mask_;
  while (probe_slots_[h] != MemberView::kNoSlot) {
    if (probe_keys_[h] == member) {
      view.slot_ = probe_slots_[h];
      break;
    }
    h = (h + 1) & probe_mask_;
  }
  return view;
}

TrafficClass FlatClassifier::class_in_space(net::Ipv4Addr src,
                                            std::uint32_t pid,
                                            std::uint32_t slot,
                                            std::size_t space_idx) const {
  const std::uint16_t rec = records_[slot * num_prefixes_ + pid];
  if (rec & (1u << space_idx)) return TrafficClass::kValid;
  if ((rec & (1u << (8 + space_idx))) &&
      fallback_[slot * spaces_.size() + space_idx]->contains(src)) {
    return TrafficClass::kValid;
  }
  return TrafficClass::kInvalid;
}

Label FlatClassifier::classify_routed(net::Ipv4Addr src, std::uint32_t pid,
                                      const MemberView& view) const {
  if (!view.known()) return all_invalid_;
  const std::uint16_t rec = records_[view.slot_ * num_prefixes_ + pid];
  std::uint32_t valid = rec & 0xFFu;
  if (std::uint32_t partial = rec >> 8; partial != 0) [[unlikely]] {
    const trie::IntervalSet* const* fb =
        fallback_.data() + view.slot_ * spaces_.size();
    do {
      const int s = std::countr_zero(partial);
      if (fb[s]->contains(src)) valid |= 1u << s;
      partial &= partial - 1;
    } while (partial != 0);
  }
  // Spread the valid mask's bit m to bit 2m; ORed over the all-Invalid
  // pattern this flips Invalid (0b10) to Valid (0b11) per method.
  std::uint32_t x = valid;
  x = (x | (x << 4)) & 0x0F0Fu;
  x = (x | (x << 2)) & 0x3333u;
  x = (x | (x << 1)) & 0x5555u;
  return static_cast<Label>(all_invalid_ | x);
}

Label FlatClassifier::classify_overflow(net::Ipv4Addr src,
                                        const MemberView& view) const {
  // Exact lane for /24 blocks broken by a longer-than-/24 prefix: re-run
  // the cascade's trie lookups per address.
  if (bogons_.covers(src)) return all_bogon_;
  const auto pid = table_->covering_prefix(src);
  if (!pid) return all_unrouted_;
  return classify_routed(src, *pid, view);
}

Label FlatClassifier::classify_all(net::Ipv4Addr src,
                                   const MemberView& view) const {
  const std::uint32_t entry = base_[src.value() >> 8];
  switch (entry >> kKindShift) {
    case kKindUnrouted: return all_unrouted_;
    case kKindBogon: return all_bogon_;
    case kKindRouted: return classify_routed(src, entry & kPayloadMask, view);
    default: return classify_overflow(src, view);
  }
}

TrafficClass FlatClassifier::classify(net::Ipv4Addr src, const MemberView& view,
                                      std::size_t space_idx) const {
  const std::uint32_t entry = base_[src.value() >> 8];
  switch (entry >> kKindShift) {
    case kKindUnrouted: return TrafficClass::kUnrouted;
    case kKindBogon: return TrafficClass::kBogon;
    case kKindRouted:
      return view.known() ? class_in_space(src, entry & kPayloadMask,
                                           view.slot_, space_idx)
                          : TrafficClass::kInvalid;
    default:
      return Classifier::unpack(classify_overflow(src, view), space_idx);
  }
}

namespace {

template <typename Out>
void flat_classify_range(const FlatClassifier& classifier,
                         std::span<const net::FlowRecord> flows,
                         std::size_t begin, std::size_t end, Out&& out) {
  std::unordered_map<Asn, FlatClassifier::MemberView> views;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& f = flows[i];
    auto it = views.find(f.member_in);
    if (it == views.end()) {
      it = views.emplace(f.member_in, classifier.member_view(f.member_in)).first;
    }
    out(i, classifier.classify_all(f.src, it->second));
  }
}

}  // namespace

std::vector<Label> classify_trace(const FlatClassifier& classifier,
                                  std::span<const net::FlowRecord> flows) {
  std::vector<Label> labels(flows.size());
  flat_classify_range(classifier, flows, 0, flows.size(),
                      [&](std::size_t i, Label l) { labels[i] = l; });
  return labels;
}

std::vector<Label> classify_trace(const FlatClassifier& classifier,
                                  std::span<const net::FlowRecord> flows,
                                  util::ThreadPool& pool) {
  std::vector<Label> labels(flows.size());
  pool.parallel_for(0, flows.size(), [&](std::size_t b, std::size_t e) {
    flat_classify_range(classifier, flows, b, e,
                        [&](std::size_t i, Label l) { labels[i] = l; });
  });
  return labels;
}

}  // namespace spoofscope::classify
