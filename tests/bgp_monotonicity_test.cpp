// Monotonicity properties of the propagation model: removing visibility
// (hiding links, restricting first hops) must never create reachability,
// and route-class preference must never degrade when information is
// added. These guard the simulator against subtle policy bugs.
#include <gtest/gtest.h>

#include "bgp/simulator.hpp"
#include "topo/generator.hpp"

namespace spoofscope::bgp {
namespace {

topo::TopologyParams small_params() {
  topo::TopologyParams p;
  p.num_tier1 = 3;
  p.num_transit = 8;
  p.num_isp = 18;
  p.num_hosting = 10;
  p.num_content = 6;
  p.num_other = 10;
  return p;
}

class MonotonicityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonotonicityTest, SelectiveAnnouncementOnlyShrinksReachability) {
  const auto topo = generate_topology(small_params(), GetParam());
  const Simulator sim(topo);
  for (std::size_t i = 0; i < topo.as_count(); i += 5) {
    const net::Asn origin = topo.asn_at(i);
    const auto full = sim.propagate(origin);
    const auto providers = topo.providers_of(origin);
    if (providers.empty()) continue;
    const std::vector<net::Asn> only_first{providers[0]};
    const auto restricted = sim.propagate(origin, only_first);
    for (std::size_t j = 0; j < topo.as_count(); ++j) {
      // Anything reachable under selective announcement must have been
      // reachable under full announcement.
      if (restricted.reachable(j)) {
        EXPECT_TRUE(full.reachable(j))
            << "origin AS" << origin << " target " << topo.asn_at(j);
      }
    }
    EXPECT_LE(restricted.reachable_count(), full.reachable_count());
  }
}

TEST_P(MonotonicityTest, HidingLinksOnlyShrinksReachability) {
  const auto topo = generate_topology(small_params(), GetParam() ^ 0x99);
  // Build a copy with every peering link invisible.
  std::vector<topo::AsInfo> ases(topo.ases().begin(), topo.ases().end());
  std::vector<topo::AsLink> links(topo.links().begin(), topo.links().end());
  for (auto& l : links) {
    if (l.type == topo::RelType::kPeerToPeer) l.visible_in_bgp = false;
  }
  const topo::Topology hidden(std::move(ases), std::move(links));

  const Simulator full_sim(topo);
  const Simulator hidden_sim(hidden);
  for (std::size_t i = 0; i < topo.as_count(); i += 7) {
    const net::Asn origin = topo.asn_at(i);
    const auto full = full_sim.propagate(origin);
    const auto part = hidden_sim.propagate(origin);
    for (std::size_t j = 0; j < topo.as_count(); ++j) {
      if (part.reachable(j)) {
        EXPECT_TRUE(full.reachable(j));
      }
    }
  }
}

TEST_P(MonotonicityTest, PathsNeverWorseThanProviderDetour) {
  // Route-class preference: if an AS has a customer route, no propagation
  // result may report a peer or provider route for it.
  const auto topo = generate_topology(small_params(), GetParam() ^ 0x7);
  const Simulator sim(topo);
  for (std::size_t i = 0; i < topo.as_count(); i += 9) {
    const auto res = sim.propagate(topo.asn_at(i));
    for (std::size_t j = 0; j < topo.as_count(); ++j) {
      if (!res.reachable(j)) continue;
      const auto cls = res.route_class(j);
      if (cls != RouteClass::kCustomer) continue;
      // A customer route implies the origin sits below j in the c2p
      // hierarchy (reachable via customer/sibling chains).
      const AsPath path = res.path_at(j);
      EXPECT_GE(path.length(), 1u);
    }
  }
}

TEST_P(MonotonicityTest, ReachabilityIsSymmetricInConnectedComponents) {
  // In this model every visible link is bidirectional for reachability:
  // if A reaches B then B reaches A (possibly via a different path class).
  const auto topo = generate_topology(small_params(), GetParam() ^ 0x31);
  const Simulator sim(topo);
  const net::Asn a = topo.asn_at(0);
  const net::Asn b = topo.asn_at(topo.as_count() - 1);
  const auto from_a = sim.propagate(a);
  const auto from_b = sim.propagate(b);
  EXPECT_EQ(from_a.reachable(*topo.index_of(b)),
            from_b.reachable(*topo.index_of(a)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest,
                         ::testing::Values(3, 14, 159, 2653));

}  // namespace
}  // namespace spoofscope::bgp
