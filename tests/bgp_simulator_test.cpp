#include "bgp/simulator.hpp"

#include <gtest/gtest.h>

#include "topo/generator.hpp"

namespace spoofscope::bgp {
namespace {

using topo::AsInfo;
using topo::AsLink;
using topo::BusinessType;
using topo::RelType;
using topo::Topology;

AsInfo mk(Asn asn, topo::OrgId org = 0) {
  AsInfo a;
  a.asn = asn;
  a.org = org == 0 ? asn : org;
  return a;
}

/// Reference topology:
///
///   10 ----- 11          tier-1 peering
///   A        A    (provider fan-out)
///  20 21----+  22        20 cust of 10; 21 cust of 10 and 11; 22 cust of 11
///  |    \      /
///  30    +-31-+           30 cust of 20; 31 cust of 21 and 22
///   \______/              30 peers 31
///          40             40 sibling of 31 (same org 500)
Topology reference_topology() {
  std::vector<AsInfo> ases{mk(10), mk(11), mk(20), mk(21), mk(22),
                           mk(30), mk(31, 500), mk(40, 500)};
  // give 31's org to both siblings
  ases[6].org = 500;
  ases[7].org = 500;
  std::vector<AsLink> links{
      {10, 11, RelType::kPeerToPeer, true, {}},
      {20, 10, RelType::kCustomerToProvider, true, {}},
      {21, 10, RelType::kCustomerToProvider, true, {}},
      {21, 11, RelType::kCustomerToProvider, true, {}},
      {22, 11, RelType::kCustomerToProvider, true, {}},
      {30, 20, RelType::kCustomerToProvider, true, {}},
      {31, 21, RelType::kCustomerToProvider, true, {}},
      {31, 22, RelType::kCustomerToProvider, true, {}},
      {30, 31, RelType::kPeerToPeer, true, {}},
      {31, 40, RelType::kSibling, true, {}},
  };
  return Topology(std::move(ases), std::move(links));
}

AsPath path_of(const Topology& t, const PropagationResult& r, Asn at) {
  return r.path_at(*t.index_of(at));
}

TEST(Simulator, OriginHasTrivialPath) {
  const auto t = reference_topology();
  const Simulator sim(t);
  const auto r = sim.propagate(30);
  EXPECT_EQ(path_of(t, r, 30), (AsPath{30}));
  EXPECT_EQ(r.route_class(*t.index_of(30)), RouteClass::kOrigin);
}

TEST(Simulator, CustomerRoutesFlowUp) {
  const auto t = reference_topology();
  const Simulator sim(t);
  const auto r = sim.propagate(30);
  EXPECT_EQ(path_of(t, r, 20), (AsPath{20, 30}));
  EXPECT_EQ(path_of(t, r, 10), (AsPath{10, 20, 30}));
  EXPECT_EQ(r.route_class(*t.index_of(10)), RouteClass::kCustomer);
}

TEST(Simulator, PeerRoutesOneHopAcrossClique) {
  const auto t = reference_topology();
  const Simulator sim(t);
  const auto r = sim.propagate(30);
  // 11 learns 30's route from its peer 10.
  EXPECT_EQ(path_of(t, r, 11), (AsPath{11, 10, 20, 30}));
  EXPECT_EQ(r.route_class(*t.index_of(11)), RouteClass::kPeer);
}

TEST(Simulator, ProviderRoutesFlowDown) {
  const auto t = reference_topology();
  const Simulator sim(t);
  const auto r = sim.propagate(30);
  // 22 gets the route from its provider 11, which holds a peer route.
  EXPECT_EQ(path_of(t, r, 22), (AsPath{22, 11, 10, 20, 30}));
  EXPECT_EQ(r.route_class(*t.index_of(22)), RouteClass::kProvider);
}

TEST(Simulator, PeerRoutePreferredOverProviderRoute) {
  const auto t = reference_topology();
  const Simulator sim(t);
  const auto r = sim.propagate(30);
  // 31 could reach 30 via providers (21 or 22) but prefers the direct
  // peering with 30.
  EXPECT_EQ(path_of(t, r, 31), (AsPath{31, 30}));
  EXPECT_EQ(r.route_class(*t.index_of(31)), RouteClass::kPeer);
}

TEST(Simulator, CustomerRoutePreferredOverEverything) {
  const auto t = reference_topology();
  const Simulator sim(t);
  const auto r = sim.propagate(31);
  // 21 hears 31 directly as its customer; also via 10/11 — customer wins.
  EXPECT_EQ(path_of(t, r, 21), (AsPath{21, 31}));
  EXPECT_EQ(r.route_class(*t.index_of(21)), RouteClass::kCustomer);
  // 30 prefers the peer route to 31 over the provider path.
  EXPECT_EQ(path_of(t, r, 30), (AsPath{30, 31}));
}

TEST(Simulator, SiblingTransparency) {
  const auto t = reference_topology();
  const Simulator sim(t);
  // 40 only connects via its sibling 31.
  const auto r = sim.propagate(40);
  EXPECT_EQ(path_of(t, r, 31), (AsPath{31, 40}));
  // 21 sees the route through the sibling link as a customer route.
  EXPECT_EQ(path_of(t, r, 21), (AsPath{21, 31, 40}));
  EXPECT_EQ(r.route_class(*t.index_of(21)), RouteClass::kCustomer);
  // And 40 reaches everything in reverse.
  const auto r2 = sim.propagate(30);
  EXPECT_EQ(path_of(t, r2, 40), (AsPath{40, 31, 30}));
}

TEST(Simulator, ShortestPathTieBrokenByLowerAsn) {
  const auto t = reference_topology();
  const Simulator sim(t);
  const auto r = sim.propagate(31);
  // 10 has two customer routes of equal length: via 21 ("10 21 31").
  // There is no equal-length alternative via 11 for a customer route at
  // 10, but 11 has two: "11 21 31" and "11 22 31" -> prefer next hop 21.
  EXPECT_EQ(path_of(t, r, 11), (AsPath{11, 21, 31}));
}

TEST(Simulator, EveryAsReachableInConnectedTopology) {
  const auto t = reference_topology();
  const Simulator sim(t);
  for (const auto& as : t.ases()) {
    const auto r = sim.propagate(as.asn);
    EXPECT_EQ(r.reachable_count(), t.as_count()) << "origin AS" << as.asn;
  }
}

TEST(Simulator, SelectiveAnnouncementRestrictsFirstHop) {
  const auto t = reference_topology();
  const Simulator sim(t);
  const std::vector<Asn> only21{21};
  const auto r = sim.propagate(31, only21);
  // 22 no longer hears its customer directly; it falls back to the
  // provider path through 11.
  EXPECT_EQ(path_of(t, r, 22), (AsPath{22, 11, 21, 31}));
  EXPECT_EQ(r.route_class(*t.index_of(22)), RouteClass::kProvider);
  // The peer 30 lost its direct route too.
  EXPECT_EQ(path_of(t, r, 30), (AsPath{30, 20, 10, 21, 31}));
  // The sibling 40 as well: it now routes via 31's provider? No — sibling
  // export was also suppressed, so 40 reaches 31's prefix via nothing
  // else; 40 is only connected through 31.
  EXPECT_FALSE(r.reachable(*t.index_of(40)));
}

TEST(Simulator, InvisibleLinksCarryNoRoutes) {
  auto ases = std::vector<AsInfo>{mk(1), mk(2), mk(3)};
  // 2 is customer of 1 (visible); 2 peers 3 invisibly; 3 is customer of 1.
  std::vector<AsLink> links{
      {2, 1, RelType::kCustomerToProvider, true, {}},
      {3, 1, RelType::kCustomerToProvider, true, {}},
      {2, 3, RelType::kPeerToPeer, /*visible=*/false, {}},
  };
  const Topology t(std::move(ases), std::move(links));
  const Simulator sim(t);
  const auto r = sim.propagate(3);
  // 2 must route via 1, not via the invisible peering.
  EXPECT_EQ(path_of(t, r, 2), (AsPath{2, 1, 3}));
}

TEST(Simulator, DisconnectedAsUnreachable) {
  auto ases = std::vector<AsInfo>{mk(1), mk(2), mk(3)};
  std::vector<AsLink> links{{2, 1, RelType::kCustomerToProvider, true, {}}};
  const Topology t(std::move(ases), std::move(links));
  const Simulator sim(t);
  const auto r = sim.propagate(1);
  EXPECT_TRUE(r.reachable(*t.index_of(2)));
  EXPECT_FALSE(r.reachable(*t.index_of(3)));
  EXPECT_TRUE(r.path_at(*t.index_of(3)).empty());
}

TEST(Simulator, UnknownOriginThrows) {
  const auto t = reference_topology();
  const Simulator sim(t);
  EXPECT_THROW(sim.propagate(9999), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property sweep over generated topologies: all produced paths must be
// valley-free w.r.t. the ground-truth relationships, loop-free, and have
// length consistent with the hop counter.
// ---------------------------------------------------------------------------

class SimulatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

/// Checks the Gao-Rexford pattern along the announcement direction:
/// (up|sibling)* (peer)? (down|sibling)*.
bool valley_free(const Topology& t, const AsPath& path) {
  // Walk from the origin towards the observer.
  int phase = 0;  // 0 = ascending, 1 = after the peer step / descending
  for (std::size_t i = path.length(); i-- > 1;) {
    const Asn from = path.at(i);      // exporter
    const Asn to = path.at(i - 1);    // receiver
    RelType rel{};
    bool from_is_customer = false;
    bool found = false;
    for (const auto& l : t.links()) {
      if ((l.from == from && l.to == to) || (l.from == to && l.to == from)) {
        rel = l.type;
        from_is_customer = (l.from == from && l.type == RelType::kCustomerToProvider);
        found = true;
        break;
      }
    }
    if (!found) return false;  // path uses a non-existent link
    if (rel == RelType::kSibling) continue;
    if (rel == RelType::kPeerToPeer) {
      if (phase == 1) return false;  // at most one peer step, then down only
      phase = 1;
      continue;
    }
    // c2p link: the step is "up" iff the exporter is the customer side.
    if (from_is_customer) {
      if (phase == 1) return false;  // cannot go up after the peer/descent
    } else {
      phase = 1;  // started descending
    }
  }
  return true;
}

TEST_P(SimulatorPropertyTest, GeneratedTopologyPathsAreValleyFree) {
  topo::TopologyParams params;
  params.num_tier1 = 3;
  params.num_transit = 8;
  params.num_isp = 15;
  params.num_hosting = 10;
  params.num_content = 5;
  params.num_other = 9;
  const auto t = generate_topology(params, GetParam());
  const Simulator sim(t);

  for (std::size_t i = 0; i < t.as_count(); i += 3) {
    const auto r = sim.propagate(t.asn_at(i));
    for (std::size_t j = 0; j < t.as_count(); ++j) {
      if (!r.reachable(j)) continue;
      const AsPath p = r.path_at(j);
      EXPECT_FALSE(p.has_duplicates()) << p.str();
      EXPECT_EQ(p.length(), r.routes()[j].hops + 1u) << p.str();
      EXPECT_EQ(p.first(), t.asn_at(j));
      EXPECT_EQ(p.origin(), t.asn_at(i));
      EXPECT_TRUE(valley_free(t, p)) << "valley in path " << p.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace spoofscope::bgp
