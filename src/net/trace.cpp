#include "net/trace.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>

#include "net/flow_batch.hpp"
#include "net/trace_format.hpp"

namespace spoofscope::net {

namespace {

/// Stream refill granularity: large enough that syscall and copy costs
/// amortize over thousands of records per refill.
constexpr std::size_t kReadBlock = 1 << 18;

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  std::array<std::uint8_t, format::kHeaderSizeV2> header{};
  format::put_u32(header.data() + 0, format::kMagic);
  format::put_u32(header.data() + 4, format::kVersionV2);
  format::put_u32(header.data() + 8, trace.meta.sampling_rate);
  format::put_u32(header.data() + 12, trace.meta.window_seconds);
  format::put_u64(header.data() + 16, trace.meta.seed);
  format::put_u64(header.data() + 24, trace.flows.size());
  format::put_u32(header.data() + format::kHeaderBody,
                  format::fnv1a32(header.data(), format::kHeaderBody));
  out.write(reinterpret_cast<const char*>(header.data()), header.size());

  std::array<std::uint8_t, format::kRecordSizeV2> rec;
  for (const auto& f : trace.flows) {
    if (f.member_in > 0xffff || f.member_out > 0xffff) {
      throw std::runtime_error("write_trace: member ASN exceeds 16-bit record field");
    }
    format::encode_record(f, rec.data());
    format::put_u32(rec.data() + format::kPayloadSize,
                    format::fnv1a32(rec.data(), format::kPayloadSize));
    out.write(reinterpret_cast<const char*>(rec.data()), rec.size());
  }
  if (!out) throw std::runtime_error("write_trace: stream failure");
}

TraceReader::TraceReader(std::istream& in, util::ErrorPolicy policy,
                         util::IngestStats* stats)
    : in_(&in), policy_(policy), stats_(stats ? stats : &own_stats_) {
  // Pull in at most the largest header; a v1 stream's 4 surplus bytes
  // simply stay in the buffer as the first record bytes.
  while (buf_.size() < format::kHeaderSizeV2 && *in_) {
    char chunk[format::kHeaderSizeV2];
    in_->read(chunk, static_cast<std::streamsize>(format::kHeaderSizeV2 -
                                                  buf_.size()));
    const std::size_t got = static_cast<std::size_t>(in_->gcount());
    buf_.insert(buf_.end(), chunk, chunk + got);
    if (got == 0) break;
  }
  const format::Header h =
      format::parse_header(std::span<const std::uint8_t>(buf_), policy_, *stats_);
  if (!h.ok) {
    done_ = true;
    buf_.clear();
    return;
  }
  meta_.sampling_rate = h.sampling_rate;
  meta_.window_seconds = h.window_seconds;
  meta_.seed = h.seed;
  declared_ = h.declared;
  header_ok_ = true;
  pos_ = h.size;
  scanner_ = format::RecordScanner(h, policy_, stats_);
}

void TraceReader::refill() {
  // Compact the consumed prefix (at most one partial record when called),
  // then top the window back up to the block size.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  while (buf_.size() < kReadBlock && !eof_) {
    char chunk[1 << 16];
    const std::size_t want = kReadBlock - buf_.size();
    in_->read(chunk, static_cast<std::streamsize>(
                         want < sizeof(chunk) ? want : sizeof(chunk)));
    const std::size_t got = static_cast<std::size_t>(in_->gcount());
    buf_.insert(buf_.end(), chunk, chunk + got);
    if (got == 0) eof_ = true;
  }
}

std::optional<FlowRecord> TraceReader::next() {
  if (done_) return std::nullopt;
  std::optional<FlowRecord> result;
  const auto sink = [&result](const std::uint8_t* p) {
    result = format::decode_record(p);
  };
  for (;;) {
    const std::span<const std::uint8_t> window(buf_.data() + pos_,
                                               buf_.size() - pos_);
    pos_ += scanner_.scan(window, 1, sink);
    if (result || scanner_.done()) break;
    if (eof_) {
      // No further bytes will arrive: account the unconsumed tail.
      const std::size_t tail = buf_.size() - pos_;
      pos_ = buf_.size();
      scanner_.finish(tail);
      break;
    }
    refill();
  }
  if (scanner_.done()) done_ = true;
  return result;
}

std::size_t TraceReader::next_batch(FlowBatch& out, std::size_t max_records) {
  out.clear();
  if (done_ || max_records == 0) return 0;
  const auto sink = [&out](const std::uint8_t* p) {
    out.push_back(format::decode_record(p));
  };
  for (;;) {
    const std::span<const std::uint8_t> window(buf_.data() + pos_,
                                               buf_.size() - pos_);
    pos_ += scanner_.scan(window, max_records - out.size(), sink);
    if (out.size() == max_records || scanner_.done()) break;
    if (eof_) {
      const std::size_t tail = buf_.size() - pos_;
      pos_ = buf_.size();
      scanner_.finish(tail);
      break;
    }
    refill();
  }
  if (scanner_.done()) done_ = true;
  return out.size();
}

Trace read_trace(std::istream& in, util::ErrorPolicy policy,
                 util::IngestStats* stats) {
  TraceReader reader(in, policy, stats);
  Trace trace;
  trace.meta = reader.meta();
  if (reader.header_ok()) {
    trace.flows.reserve(static_cast<std::size_t>(
        reader.declared_count() < (1u << 20) ? reader.declared_count()
                                             : (1u << 20)));
  }
  while (auto f = reader.next()) trace.flows.push_back(*f);
  return trace;
}

Trace read_trace(std::istream& in) {
  return read_trace(in, util::ErrorPolicy::kStrict, nullptr);
}

}  // namespace spoofscope::net
