#include "classify/classifier.hpp"

#include <stdexcept>
#include <unordered_map>

#include "net/bogon.hpp"
#include "net/flow_batch.hpp"

namespace spoofscope::classify {

namespace {

/// Packs one 2-bit class per configured space into a Label.
template <typename ClassOf>
Label pack_label(std::size_t num_spaces, ClassOf&& class_of) {
  Label label = 0;
  for (std::size_t i = 0; i < num_spaces; ++i) {
    label |= static_cast<Label>(class_of(i)) << (2 * i);
  }
  return label;
}

std::vector<std::shared_ptr<const inference::ValidSpace>> share_all(
    std::vector<inference::ValidSpace> spaces) {
  std::vector<std::shared_ptr<const inference::ValidSpace>> shared;
  shared.reserve(spaces.size());
  for (auto& s : spaces) {
    shared.push_back(std::make_shared<const inference::ValidSpace>(std::move(s)));
  }
  return shared;
}

}  // namespace

std::string class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kBogon: return "Bogon";
    case TrafficClass::kUnrouted: return "Unrouted";
    case TrafficClass::kInvalid: return "Invalid";
    case TrafficClass::kValid: return "Valid";
  }
  return "?";
}

std::string engine_name(Engine e) {
  switch (e) {
    case Engine::kTrie: return "trie";
    case Engine::kFlat: return "flat";
  }
  return "?";
}

std::optional<Engine> parse_engine(std::string_view name) {
  if (name == "trie") return Engine::kTrie;
  if (name == "flat") return Engine::kFlat;
  return std::nullopt;
}

Classifier::Classifier(const bgp::RoutingTable& table,
                       std::vector<inference::ValidSpace> spaces)
    : Classifier(table, share_all(std::move(spaces))) {}

Classifier::Classifier(
    const bgp::RoutingTable& table,
    std::vector<std::shared_ptr<const inference::ValidSpace>> spaces)
    : table_(&table), spaces_(std::move(spaces)) {
  if (spaces_.empty() || spaces_.size() > 8) {
    throw std::invalid_argument("Classifier: need between 1 and 8 valid spaces");
  }
  for (const auto& s : spaces_) {
    if (!s) throw std::invalid_argument("Classifier: null valid space");
  }
  for (const auto& p : net::bogon_prefixes()) bogons_.insert(p);
}

inference::ValidSpace& Classifier::mutable_space(std::size_t i) {
  auto& slot = spaces_[i];
  if (slot.use_count() != 1) {
    slot = std::make_shared<const inference::ValidSpace>(*slot);
  }
  return const_cast<inference::ValidSpace&>(*slot);
}

Classifier::MemberView Classifier::member_view(Asn member) const {
  MemberView view;
  view.member_ = member;
  for (std::size_t i = 0; i < spaces_.size(); ++i) {
    view.spaces_[i] = spaces_[i]->space_of(member);
  }
  return view;
}

TrafficClass Classifier::classify(net::Ipv4Addr src, Asn member,
                                  std::size_t space_idx) const {
  if (bogons_.covers(src)) return TrafficClass::kBogon;
  if (!table_->is_routed(src)) return TrafficClass::kUnrouted;
  if (!spaces_[space_idx]->valid(member, src)) return TrafficClass::kInvalid;
  return TrafficClass::kValid;
}

Label Classifier::classify_all(net::Ipv4Addr src, Asn member) const {
  // The bogon and routed checks are method-independent: one shared class.
  if (bogons_.covers(src)) {
    return pack_label(spaces_.size(),
                      [](std::size_t) { return TrafficClass::kBogon; });
  }
  if (!table_->is_routed(src)) {
    return pack_label(spaces_.size(),
                      [](std::size_t) { return TrafficClass::kUnrouted; });
  }
  return pack_label(spaces_.size(), [&](std::size_t i) {
    return spaces_[i]->valid(member, src) ? TrafficClass::kValid
                                          : TrafficClass::kInvalid;
  });
}

Label Classifier::classify_all(net::Ipv4Addr src, const MemberView& view) const {
  if (bogons_.covers(src)) {
    return pack_label(spaces_.size(),
                      [](std::size_t) { return TrafficClass::kBogon; });
  }
  if (!table_->is_routed(src)) {
    return pack_label(spaces_.size(),
                      [](std::size_t) { return TrafficClass::kUnrouted; });
  }
  return pack_label(spaces_.size(), [&](std::size_t i) {
    const trie::IntervalSet* s = view.spaces_[i];
    return s && s->contains(src) ? TrafficClass::kValid
                                 : TrafficClass::kInvalid;
  });
}

namespace {

/// Shared trace loop for both overloads: member views are resolved once
/// per distinct member and reused across the (interleaved) flow stream.
template <typename Out>
void classify_range(const Classifier& classifier,
                    std::span<const net::FlowRecord> flows, std::size_t begin,
                    std::size_t end, Out&& out) {
  std::unordered_map<Asn, Classifier::MemberView> views;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& f = flows[i];
    auto it = views.find(f.member_in);
    if (it == views.end()) {
      it = views.emplace(f.member_in, classifier.member_view(f.member_in)).first;
    }
    out(i, classifier.classify_all(f.src, it->second));
  }
}

/// Lane-level twin of classify_range for SoA batches.
void classify_lanes(const Classifier& classifier,
                    std::span<const std::uint32_t> src,
                    std::span<const Asn> member_in, std::size_t begin,
                    std::size_t end, Label* out) {
  std::unordered_map<Asn, Classifier::MemberView> views;
  for (std::size_t i = begin; i < end; ++i) {
    const Asn member = member_in[i];
    auto it = views.find(member);
    if (it == views.end()) {
      it = views.emplace(member, classifier.member_view(member)).first;
    }
    out[i] = classifier.classify_all(net::Ipv4Addr(src[i]), it->second);
  }
}

}  // namespace

void Classifier::classify_batch(const net::FlowBatch& batch,
                                std::span<Label> out) const {
  if (out.size() != batch.size()) {
    throw std::invalid_argument("classify_batch: label span size mismatch");
  }
  classify_lanes(*this, batch.src(), batch.member_in(), 0, batch.size(),
                 out.data());
}

void Classifier::classify_batch(const net::FlowBatch& batch,
                                std::span<Label> out,
                                util::ThreadPool& pool) const {
  if (out.size() != batch.size()) {
    throw std::invalid_argument("classify_batch: label span size mismatch");
  }
  Label* labels = out.data();
  pool.parallel_for(0, batch.size(), [&](std::size_t b, std::size_t e) {
    classify_lanes(*this, batch.src(), batch.member_in(), b, e, labels);
  });
}

std::vector<Label> Classifier::classify_batch(const net::FlowBatch& batch) const {
  std::vector<Label> labels(batch.size());
  classify_batch(batch, labels);
  return labels;
}

std::vector<Label> classify_trace(const Classifier& classifier,
                                  std::span<const net::FlowRecord> flows) {
  std::vector<Label> labels(flows.size());
  classify_range(classifier, flows, 0, flows.size(),
                 [&](std::size_t i, Label l) { labels[i] = l; });
  return labels;
}

std::vector<Label> classify_trace(const Classifier& classifier,
                                  std::span<const net::FlowRecord> flows,
                                  util::ThreadPool& pool) {
  std::vector<Label> labels(flows.size());
  pool.parallel_for(0, flows.size(), [&](std::size_t b, std::size_t e) {
    classify_range(classifier, flows, b, e,
                   [&](std::size_t i, Label l) { labels[i] = l; });
  });
  return labels;
}

}  // namespace spoofscope::classify
