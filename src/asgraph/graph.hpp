// The *observed* AS graph: nodes are ASes seen in BGP data, directed edges
// (left -> right) come from adjacent pairs on AS paths, with the left AS
// considered upstream of the right one (Sec 3.2, Full Cone construction).
// Unlike topo::Topology (ground truth) this graph may contain cycles and
// misses everything invisible to the collectors.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/routing_table.hpp"

namespace spoofscope::asgraph {

using net::Asn;

/// Immutable directed graph over densely indexed AS nodes.
class AsGraph {
 public:
  /// Builds from explicit nodes and directed (upstream, downstream) edges.
  /// Edges referencing ASes not in `nodes` are added as new nodes.
  /// Duplicate edges and self-loops are dropped.
  AsGraph(std::vector<Asn> nodes, std::vector<std::pair<Asn, Asn>> edges);

  /// The graph the Full Cone method runs on: every AS and every directed
  /// adjacency observed in the routing data.
  static AsGraph from_routing_table(const bgp::RoutingTable& table);

  /// A copy of this graph with extra directed edges added (used to inject
  /// the full mesh between multi-AS organization members).
  AsGraph with_extra_edges(std::span<const std::pair<Asn, Asn>> extra) const;

  std::size_t node_count() const { return nodes_.size(); }
  Asn asn_at(std::size_t i) const { return nodes_[i]; }
  std::optional<std::size_t> index_of(Asn asn) const;

  /// Downstream neighbors (the "children" direction of the Full Cone).
  std::span<const std::uint32_t> successors(std::size_t i) const { return succ_[i]; }

  /// Upstream neighbors.
  std::span<const std::uint32_t> predecessors(std::size_t i) const { return pred_[i]; }

  std::size_t edge_count() const { return edge_count_; }

  /// All nodes' ASNs (dense order).
  const std::vector<Asn>& nodes() const { return nodes_; }

  /// All directed edges as (upstream ASN, downstream ASN).
  std::vector<std::pair<Asn, Asn>> edges() const;

 private:
  std::vector<Asn> nodes_;
  std::unordered_map<Asn, std::size_t> index_;
  std::vector<std::vector<std::uint32_t>> succ_;
  std::vector<std::vector<std::uint32_t>> pred_;
  std::size_t edge_count_ = 0;
};

}  // namespace spoofscope::asgraph
