// mmap-backed trace source: maps a trace file read-only and exposes its
// bytes as one contiguous span, so the batch decoder scans records in
// place — the only per-record copies left are the decoded lane values
// landing in a FlowBatch. Falls back to a read()-filled heap buffer when
// mmap is unavailable (non-POSIX build, unmappable file, pipe), with
// identical observable behaviour.
//
// Ownership rules: MappedTrace owns the mapping (or fallback buffer) and
// must outlive every span handed out, including any MappedTraceReader
// over it. Readers never copy record bytes; batches own their decoded
// lanes and outlive nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/trace.hpp"
#include "net/trace_format.hpp"
#include "util/error_policy.hpp"

namespace spoofscope::net {

class FlowBatch;

class MappedTrace {
 public:
  /// Maps `path` read-only (falling back to reading it into memory).
  /// Throws std::runtime_error if the file cannot be opened or read.
  explicit MappedTrace(const std::string& path);

  /// Wraps an in-memory byte buffer in the same interface — the
  /// read()-fallback representation, constructible directly for tests
  /// and non-file sources.
  static MappedTrace from_buffer(std::vector<std::uint8_t> bytes);

  ~MappedTrace();

  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  /// The complete file contents (header + records), zero-copy when
  /// mapped() is true.
  std::span<const std::uint8_t> bytes() const { return {data_, size_}; }

  /// True when the bytes come from an actual mmap (false: heap buffer).
  bool mapped() const { return map_ != nullptr; }

  /// Advises the kernel that every page fully contained in
  /// [begin, end) will not be needed again, releasing its physical
  /// memory — the discipline a single-pass reader uses to keep resident
  /// set size independent of trace length. Purely advisory: the bytes
  /// remain addressable (a later access refaults them from the file).
  /// No-op for fallback buffers and on platforms without madvise.
  void drop_pages(std::size_t begin, std::size_t end) const;

 private:
  MappedTrace() = default;
  void release();

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_ = nullptr;  ///< mmap base when mapped, else nullptr
  std::vector<std::uint8_t> fallback_;
};

/// Batch reader over a MappedTrace: same header validation, record
/// scanning, resync and stats accounting as TraceReader (both drive
/// format::RecordScanner), but the scan window is the whole mapping, so
/// there is no refill loop and no byte shuffling.
class MappedTraceReader {
 public:
  /// Validates the header once. `trace` and `stats` (optional) must
  /// outlive the reader.
  explicit MappedTraceReader(const MappedTrace& trace,
                             util::ErrorPolicy policy = util::ErrorPolicy::kStrict,
                             util::IngestStats* stats = nullptr);

  const TraceMeta& meta() const { return meta_; }
  std::uint64_t declared_count() const { return declared_; }
  bool header_ok() const { return header_ok_; }

  /// Next record, or std::nullopt at end of stream (per-record
  /// convenience; differential tests pit it against TraceReader::next).
  std::optional<FlowRecord> next();

  /// Clears `out` and refills it with up to `max_records` records
  /// decoded straight from the mapping. Returns records delivered; 0
  /// means end of stream.
  std::size_t next_batch(FlowBatch& out, std::size_t max_records);

  /// Releases the physical pages behind every byte this reader has
  /// already consumed (MappedTrace::drop_pages of the consumed prefix,
  /// tracked incrementally so repeated calls touch each page once).
  /// Call between batches on a single-pass ingest to keep peak RSS
  /// independent of trace length; safe at any point, including after
  /// end of stream.
  void drop_consumed();

  const util::IngestStats& stats() const { return *stats_; }

 private:
  void finish_if_exhausted(std::size_t got, std::size_t want);

  util::ErrorPolicy policy_;
  const MappedTrace* trace_ = nullptr;
  std::size_t dropped_ = 0;  ///< consumed-prefix bytes already released
  util::IngestStats own_stats_;
  util::IngestStats* stats_;
  TraceMeta meta_;
  std::uint64_t declared_ = 0;
  bool header_ok_ = false;
  bool done_ = false;
  format::RecordScanner scanner_;
  std::span<const std::uint8_t> rest_;  ///< unconsumed record bytes (view)
};

}  // namespace spoofscope::net
