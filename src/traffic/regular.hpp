// Regular (legitimate) inter-domain traffic: the bulk of the fabric's
// volume, with realistic diurnal pattern, application mix and bimodal
// packet sizes (Sec 6.1).
#pragma once

#include <vector>

#include "traffic/context.hpp"

namespace spoofscope::traffic {

/// Appends params().regular_flows sampled flow records.
void generate_regular(const TrafficContext& ctx, util::Rng& rng,
                      std::vector<net::FlowRecord>& out,
                      std::vector<Component>& components,
                      WorkloadSummary& summary);

/// Draws a data-plane packet size from the fabric's bimodal distribution
/// (small ACK/control packets vs MTU-sized data packets). Exposed for
/// reuse by the amplifier-response generator and tests.
std::uint32_t regular_packet_size(util::Rng& rng);

}  // namespace spoofscope::traffic
