#include "net/flow.hpp"

#include <gtest/gtest.h>

#include "net/protocols.hpp"

namespace spoofscope::net {
namespace {

TEST(FlowRecord, MeanPacketSize) {
  FlowRecord f;
  f.packets = 4;
  f.bytes = 240;
  EXPECT_DOUBLE_EQ(f.mean_packet_size(), 60.0);
}

TEST(FlowRecord, MeanPacketSizeZeroPackets) {
  FlowRecord f;
  EXPECT_DOUBLE_EQ(f.mean_packet_size(), 0.0);
}

TEST(FlowRecord, StrContainsEndpoints) {
  FlowRecord f;
  f.src = Ipv4Addr::from_octets(1, 2, 3, 4);
  f.dst = Ipv4Addr::from_octets(5, 6, 7, 8);
  f.proto = Proto::kUdp;
  f.member_in = 65001;
  const std::string s = f.str();
  EXPECT_NE(s.find("1.2.3.4"), std::string::npos);
  EXPECT_NE(s.find("5.6.7.8"), std::string::npos);
  EXPECT_NE(s.find("UDP"), std::string::npos);
  EXPECT_NE(s.find("AS65001"), std::string::npos);
}

TEST(Protocols, Names) {
  EXPECT_EQ(proto_name(Proto::kTcp), "TCP");
  EXPECT_EQ(proto_name(Proto::kUdp), "UDP");
  EXPECT_EQ(proto_name(Proto::kIcmp), "ICMP");
}

TEST(Protocols, PortServiceNames) {
  EXPECT_EQ(port_service_name(80), "http");
  EXPECT_EQ(port_service_name(443), "https");
  EXPECT_EQ(port_service_name(123), "ntp");
  EXPECT_EQ(port_service_name(27015), "steam");
  EXPECT_EQ(port_service_name(12345), "other");
}

TEST(Protocols, TrackedPorts) {
  EXPECT_TRUE(is_tracked_port(80));
  EXPECT_TRUE(is_tracked_port(123));
  EXPECT_TRUE(is_tracked_port(28960));
  EXPECT_FALSE(is_tracked_port(22));
}

TEST(Constants, WindowLengths) {
  EXPECT_EQ(kSecondsPerWeek, 604800u);
  EXPECT_EQ(kFourWeeks, 2419200u);
}

}  // namespace
}  // namespace spoofscope::net
