// The paper's core contribution: sequential classification of each flow's
// source address (Fig 3) into Bogon -> Unrouted -> Invalid -> valid,
// mutually exclusive, evaluated under several valid-space inference
// methods at once (the bogon and routed checks are method-independent).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bgp/routing_table.hpp"
#include "inference/valid_space.hpp"
#include "net/flow.hpp"
#include "trie/prefix_set.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::classify {

using net::Asn;

/// The four traffic classes of Sec 4.2.
enum class TrafficClass : std::uint8_t {
  kBogon = 0,     ///< reserved source ranges
  kUnrouted = 1,  ///< routable but not announced during the window
  kInvalid = 2,   ///< routed, but not a valid source for the member
  kValid = 3,     ///< everything else (not analyzed further)
};

inline constexpr int kNumClasses = 4;

/// Display name matching the paper ("Bogon", "Unrouted", ...).
std::string class_name(TrafficClass c);

/// Compact per-flow label: 2 bits per configured valid space.
using Label = std::uint16_t;

/// Classifies sources against the bogon list, the routed table and a set
/// of per-member valid spaces (one per inference method under study).
class Classifier {
 public:
  /// At most 8 valid spaces fit a Label. Throws std::invalid_argument on
  /// more.
  Classifier(const bgp::RoutingTable& table,
             std::vector<inference::ValidSpace> spaces);

  /// Fig 3 for a single method (index into the configured spaces).
  TrafficClass classify(net::Ipv4Addr src, Asn member, std::size_t space_idx) const;

  /// All methods at once, packed. Use unpack() to extract per-method
  /// classes.
  Label classify_all(net::Ipv4Addr src, Asn member) const;

  /// Extracts the class for one method from a packed label.
  static TrafficClass unpack(Label label, std::size_t space_idx) {
    return static_cast<TrafficClass>((label >> (2 * space_idx)) & 0x3);
  }

  std::size_t space_count() const { return spaces_.size(); }
  const inference::ValidSpace& space(std::size_t i) const { return spaces_[i]; }

  /// Mutable access for the Sec 4.4 false-positive workflow (extending a
  /// member's valid space and re-classifying).
  inference::ValidSpace& mutable_space(std::size_t i) { return spaces_[i]; }

  const bgp::RoutingTable& table() const { return *table_; }

 private:
  trie::PrefixSet bogons_;
  const bgp::RoutingTable* table_;
  std::vector<inference::ValidSpace> spaces_;
};

/// Runs the classifier over a whole trace; labels[i] belongs to flows[i].
std::vector<Label> classify_trace(const Classifier& classifier,
                                  std::span<const net::FlowRecord> flows);

/// Parallel variant: contiguous chunks of the flow span are classified
/// across `pool` into a pre-sized label vector, so labels[i] always
/// belongs to flows[i] and the result is element-wise identical to the
/// sequential version regardless of thread count. Safe because the
/// Classifier is read-only after construction (no atomics needed).
std::vector<Label> classify_trace(const Classifier& classifier,
                                  std::span<const net::FlowRecord> flows,
                                  util::ThreadPool& pool);

}  // namespace spoofscope::classify
