file(REMOVE_RECURSE
  "CMakeFiles/live_filter.dir/live_filter.cpp.o"
  "CMakeFiles/live_filter.dir/live_filter.cpp.o.d"
  "live_filter"
  "live_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
