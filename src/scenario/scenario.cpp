#include "scenario/scenario.hpp"

#include <algorithm>

#include "bgp/simulator.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace spoofscope::scenario {

namespace {

/// Runs the BGP machinery: propagation, collectors (full feeds at
/// NSP-heavy vantage points) plus the IXP route server, aggregated into
/// one routing table. Propagation fans out over `pool` chunk-at-a-time
/// (bgp::propagate_collect), so route state never exceeds one chunk of
/// plan groups no matter how many prefixes the plan announces.
bgp::RoutingTable build_table(const topo::Topology& topology,
                              const ixp::Ixp& ixp, const ScenarioParams& params,
                              util::ThreadPool& pool) {
  const bgp::Simulator sim(topology);
  const auto plan =
      bgp::make_announcement_plan(topology, params.plan, params.seed ^ 0xb1a);

  util::Rng rng(params.seed ^ 0xc011ec7);
  // Feeder candidates, weighted towards transit networks (the typical
  // RIS/RouteViews peers).
  std::vector<net::Asn> candidates;
  std::vector<double> weights;
  for (const auto& as : topology.ases()) {
    candidates.push_back(as.asn);
    weights.push_back(as.type == topo::BusinessType::kNsp ? 10.0 : 1.0);
  }
  const util::DiscreteDistribution pick{weights};

  // A collector cannot have more distinct feeders than there are
  // candidate ASes; without the clamp the rejection-sampling loop below
  // would spin forever on small topologies.
  std::size_t feeders_per_collector = params.feeders_per_collector;
  if (feeders_per_collector > candidates.size()) {
    util::log_warn() << "feeders_per_collector=" << params.feeders_per_collector
                     << " exceeds the " << candidates.size()
                     << " candidate ASes; clamping";
    feeders_per_collector = candidates.size();
  }

  std::vector<bgp::CollectorSpec> specs;
  specs.reserve(params.num_collectors + 1);
  for (std::size_t c = 0; c < params.num_collectors; ++c) {
    bgp::CollectorSpec spec;
    spec.name = "rrc" + std::to_string(c);
    spec.full_feed = true;
    while (spec.feeders.size() < feeders_per_collector) {
      const net::Asn f = candidates[pick(rng)];
      if (std::find(spec.feeders.begin(), spec.feeders.end(), f) ==
          spec.feeders.end()) {
        spec.feeders.push_back(f);
      }
    }
    specs.push_back(std::move(spec));
  }

  // The IXP route server: member routes only (peer-exportable).
  bgp::CollectorSpec rs;
  rs.name = "ixp-route-server";
  rs.feeders = ixp.route_server_feeders();
  rs.full_feed = false;
  if (!rs.feeders.empty()) specs.push_back(std::move(rs));

  // Stream into the builder: full feeds at paper scale are tens of
  // millions of records.
  bgp::RoutingTableBuilder builder;
  bgp::propagate_collect(
      sim, plan, specs, pool,
      [&builder](std::size_t, const bgp::MrtRecord& r) { builder.ingest(r); });
  return builder.build();
}

std::vector<inference::ValidSpace> build_spaces(
    const inference::ValidSpaceFactory& factory, const ixp::Ixp& ixp,
    util::ThreadPool& pool) {
  const auto members = ixp.member_asns();
  std::vector<inference::ValidSpace> spaces;
  spaces.reserve(inference::kNumMethods);
  for (int m = 0; m < inference::kNumMethods; ++m) {
    spaces.push_back(
        factory.build(static_cast<inference::Method>(m), members, pool));
  }
  return spaces;
}

}  // namespace

ScenarioParams ScenarioParams::small() {
  ScenarioParams p;
  p.topology.num_tier1 = 3;
  p.topology.num_transit = 10;
  p.topology.num_isp = 40;
  p.topology.num_hosting = 25;
  p.topology.num_content = 12;
  p.topology.num_other = 30;
  p.ixp.member_count = 60;
  p.num_collectors = 3;
  p.feeders_per_collector = 5;
  p.ark.num_traces = 4000;
  p.workload.regular_flows = 30000;
  p.workload.nat_leak_flows = 400;
  p.workload.background_noise_flows = 350;
  p.workload.random_spoof_events = 10;
  p.workload.flood_flows_mean = 60;
  p.workload.flood_flows_cap = 500;
  p.workload.ntp_campaigns = 6;
  p.workload.ntp_flows_mean = 120;
  p.workload.ntp_flows_cap = 800;
  p.workload.ntp_server_pool = 250;
  p.workload.steam_flood_events = 2;
  p.workload.steam_flows_cap = 300;
  p.workload.router_stray_flows = 450;
  p.workload.uncommon_setup_flows_per_member = 120;
  return p;
}

ScenarioParams ScenarioParams::internet() {
  ScenarioParams p;
  // Paper Sec 3: ~57K ASes visible at the IXP, ~600K routed prefixes
  // internet-wide; round up to an 80K-AS population whose allocation
  // grid (/20 blocks) yields on the order of a million announced
  // prefixes once the plan deaggregates.
  p.topology.num_tier1 = 16;
  p.topology.num_transit = 2384;
  p.topology.num_isp = 36000;
  p.topology.num_hosting = 14000;
  p.topology.num_content = 4800;
  p.topology.num_other = 22800;
  // A 0.15 pairwise mesh over 2384 transits would dominate the link
  // count; real transit peering is degree-bounded.
  p.topology.transit_peering_prob = 0.015;
  p.topology.alloc_block_slash24 = 16;
  // Keep the number of distinct propagations (origins x first-hop
  // policies) near the origin count.
  p.plan.selective_prob = 0.02;
  p.num_collectors = 6;
  p.feeders_per_collector = 8;
  p.threads = 0;  // hardware concurrency: serial generation is pointless here
  return p;
}

ScenarioParams ScenarioParams::paper() {
  ScenarioParams p;
  // The paper ingests 34 collectors with hundreds of feeders; give the
  // detection method comparable AS-graph visibility.
  p.num_collectors = 12;
  p.feeders_per_collector = 24;
  p.ixp.route_server_fraction = 0.9;
  // Concentrate the BCP38-noncompliant setups on fewer, heavier members
  // so the paper's top-40 investigation covers most of the false-positive
  // volume (it removed 59.9% of Invalid bytes).
  p.whois.provider_assigned_prob = 0.035;
  p.workload.uncommon_setup_flows_per_member = 1500;
  return p;
}

Scenario::Scenario(const ScenarioParams& params)
    : params_(params),
      pool_(params.threads),
      topology_(topo::generate_topology(params.topology, params.seed, pool_)),
      ixp_(ixp::Ixp::build(topology_, params.ixp, params.seed ^ 0x1c9)),
      table_(build_table(topology_, ixp_, params, pool_)),
      orgs_(data::build_as2org(topology_, params.as2org, params.seed ^ 0x02c)),
      whois_(data::build_whois(topology_, params.whois, params.seed ^ 0x3b0)),
      ark_(data::run_ark_campaign(topology_, params.ark, params.seed ^ 0xa2c)),
      spoofer_(data::run_spoofer_campaign(topology_, params.spoofer,
                                          params.seed ^ 0x5b0)),
      factory_(table_, orgs_),
      classifier_(table_, build_spaces(factory_, ixp_, pool_)),
      workload_(traffic::generate_workload(topology_, ixp_, whois_,
                                           params.workload,
                                           params.seed ^ 0x7aff1c)) {
  if (params_.engine == classify::Engine::kFlat) {
    flat_ = std::make_unique<classify::FlatClassifier>(
        classify::FlatClassifier::compile(classifier_, pool_));
    labels_ = classify::classify_trace(*flat_, workload_.trace.flows, pool_,
                                       params_.simd);
  } else {
    labels_ = classify::classify_trace(classifier_, workload_.trace.flows,
                                       pool_);
  }
  util::log_info() << "scenario ready: " << topology_.as_count() << " ASes, "
                   << ixp_.member_count() << " members, "
                   << table_.prefixes().size() << " routed prefixes, "
                   << workload_.trace.flows.size() << " sampled flows ("
                   << classify::engine_name(params_.engine) << " engine)";
}

std::vector<analysis::MemberClassCounts> Scenario::member_counts(
    inference::Method m) const {
  return analysis::per_member_counts(workload_.trace.flows, labels_,
                                     space_index(m), ixp_);
}

std::unique_ptr<Scenario> build_scenario(const ScenarioParams& params) {
  return std::make_unique<Scenario>(params);
}

}  // namespace spoofscope::scenario
