// Cross-shard merge: fuses per-shard detector verdicts and health into
// the service-wide view, plus the operator-facing formatting shared by
// the one-shot `detect` command and the resident `serve` daemon — both
// modes emit the same alert lines, the same health line and the same
// stats-json schema, so monitoring built against one works against the
// other unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "classify/streaming.hpp"

namespace spoofscope::service {

/// Folds per-shard (or per-vantage) health snapshots into one: event
/// counters and current-depth gauges sum (each event happened on
/// exactly one shard), high-water marks take the max (the service-wide
/// peak is at least any shard's peak). A single-element span is the
/// identity, which is how the one-shot detect path uses it.
classify::DetectorHealth merge_health(
    std::span<const classify::DetectorHealth> parts);

/// The service-wide snapshot the control socket's `stats-json` returns.
struct ServiceStats {
  std::size_t shards = 0;
  std::uint64_t processed = 0;  ///< flows ingested across all shards
  std::uint64_t alerts = 0;
  std::uint64_t segments = 0;   ///< trace segments submitted
  std::uint64_t plane_epoch = 0;
  classify::DetectorHealth merged;
  std::vector<classify::DetectorHealth> per_shard;
};

/// {"shards":...,"processed":...,"alerts":...,"segments":...,
///  "plane_epoch":...,"detector":{...},"per_shard":[{...},...]} — the
/// "detector" object is classify::to_json of the merged health, the
/// exact schema `detect --stats-json` writes.
std::string to_json(const ServiceStats& stats);

/// The alert line both detect and serve print:
/// "alert: member AS7 ts=42 dominant=Bogon spoofed-pkts=128 share=12.5%".
std::string format_alert(const classify::SpoofingAlert& alert);

/// The health line both detect and serve print:
/// "health: regressions=0 late_drops=0 ...".
std::string format_health(const classify::DetectorHealth& health);

/// Canonical service-wide alert order: (ts, member). Within one shard
/// alerts already emerge in released order; across shards this is the
/// deterministic interleaving the merge presents. A member alerts at
/// most once per cooldown window, so the key is unique in practice.
void sort_alerts(std::vector<classify::SpoofingAlert>& alerts);

}  // namespace spoofscope::service
