#!/usr/bin/env bash
# Full verification sweep:
#   1. tier-1: default build + complete ctest suite
#   2. ThreadSanitizer build, running the concurrency-sensitive suites
#      (the parallel engine oracles including the flat/trie and batch
#      differentials, the thread pool, the streaming detector and the
#      corruption differential suite, which classifies on a shared pool,
#      the state suites, which resume/compile across thread counts, and
#      the streaming-analysis oracle, which shards reports across pools)
#   3. AddressSanitizer build, same suites plus the trie/interval code,
#      the byte-level corruption/resync and batch-decode paths, the
#      snapshot container + checkpoint/plane-cache fuzz suites, and the
#      bounded-table/quantile-sketch analysis suites (LRU eviction and
#      compactor reallocation are where lifetime bugs would hide)
#   4. UndefinedBehaviorSanitizer build over the parser fuzz and
#      robustness suites (the code that chews on hostile bytes),
#      including the mmap/batch reader differential and the snapshot
#      parser, which reinterprets mapped cache entries, plus the
#      streaming-analysis oracle (sketch rank arithmetic, ratio
#      histogram binning and eviction folds over adversarial batches)
#   5. portable build guard: -DSPOOFSCOPE_DISABLE_SIMD=ON compiles only
#      the scalar batch kernel — what a target with neither AVX2 nor
#      NEON gets — and the batch differentials must still pass on it
#   6. serve smoke: the resident sharded daemon boots on a generated
#      world and every control verb is driven through a real socket
#      session, ending in a clean shutdown (the service suites — shard
#      differential, rolling restart, control units — also run under
#      TSan and ASan in stages 2 and 3)
#   7. fault injection: the crash/churn differential suite re-runs under
#      all three sanitizer builds with a widened injector seed sweep
#      (SPOOFSCOPE_FAULT_SEEDS), and the plane-churn fuzz runs its full
#      1000-step sweep (SPOOFSCOPE_CHURN_STEPS) against the fresh-compile
#      digest oracle
#
# The batch-classification suites run twice per sanitizer stage: once
# with SPOOFSCOPE_SIMD=auto (the vector kernel this host supports) and
# once pinned to SPOOFSCOPE_SIMD=scalar, so every sanitizer inspects
# both sides of the kernel differential.
#
# Usage: tools/check.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc)"

# Suites that drive FlatClassifier::classify_batch and therefore get the
# auto/scalar double run.
BATCH_SUITES=(
  classify_batch_oracle_test
  classify_simd_kernel_test
  classify_flat_oracle_test
)

is_batch_suite() {
  local bin="$1" b
  for b in "${BATCH_SUITES[@]}"; do
    [[ "${bin}" == "${b}" ]] && return 0
  done
  return 1
}

run_suite() {
  local dir="$1"
  shift
  for bin in "$@"; do
    if is_batch_suite "${bin}"; then
      for kernel in auto scalar; do
        echo "--- ${dir}/tests/${bin} (SPOOFSCOPE_SIMD=${kernel})"
        SPOOFSCOPE_SIMD="${kernel}" "${REPO_ROOT}/${dir}/tests/${bin}"
      done
    else
      echo "--- ${dir}/tests/${bin}"
      "${REPO_ROOT}/${dir}/tests/${bin}"
    fi
  done
}

echo "=== tier-1: default build + full ctest ==="
cmake -S "${REPO_ROOT}" -B "${REPO_ROOT}/build" >/dev/null
cmake --build "${REPO_ROOT}/build" -j "${JOBS}"
ctest --test-dir "${REPO_ROOT}/build" --output-on-failure -j "${JOBS}"

TSAN_SUITES=(
  topo_parallel_determinism_test
  bgp_collector_test
  classify_parallel_oracle_test
  classify_flat_oracle_test
  classify_batch_oracle_test
  classify_simd_kernel_test
  classify_streaming_test
  classify_streaming_degraded_test
  robustness_differential_test
  util_thread_pool_test
  scenario_multiseed_test
  state_resume_test
  state_plane_cache_test
  state_delta_chain_test
  state_fault_injection_test
  classify_plane_update_test
  analysis_streaming_oracle_test
  service_control_test
  service_differential_test
  service_restart_test
)

echo "=== ThreadSanitizer: parallel + flat/trie differential suites ==="
cmake -S "${REPO_ROOT}" -B "${REPO_ROOT}/build-tsan" \
  -DSPOOFSCOPE_SANITIZE=thread >/dev/null
cmake --build "${REPO_ROOT}/build-tsan" -j "${JOBS}" --target "${TSAN_SUITES[@]}"
run_suite build-tsan "${TSAN_SUITES[@]}"

ASAN_SUITES=(
  topo_parallel_determinism_test
  classify_parallel_oracle_test
  classify_flat_oracle_test
  classify_batch_oracle_test
  classify_simd_kernel_test
  trie_interval_set_test
  trie_property_test
  classify_test
  parser_fuzz_test
  robustness_differential_test
  classify_streaming_degraded_test
  net_trace_batch_test
  state_snapshot_test
  state_resume_test
  state_plane_cache_test
  state_delta_chain_test
  state_fault_injection_test
  classify_plane_update_test
  util_stats_test
  analysis_streaming_oracle_test
  service_control_test
  service_differential_test
  service_restart_test
)

echo "=== AddressSanitizer: classification + trie + corruption suites ==="
cmake -S "${REPO_ROOT}" -B "${REPO_ROOT}/build-asan" \
  -DSPOOFSCOPE_SANITIZE=address >/dev/null
cmake --build "${REPO_ROOT}/build-asan" -j "${JOBS}" --target "${ASAN_SUITES[@]}"
run_suite build-asan "${ASAN_SUITES[@]}"

UBSAN_SUITES=(
  parser_fuzz_test
  robustness_differential_test
  classify_batch_oracle_test
  classify_simd_kernel_test
  classify_streaming_degraded_test
  net_trace_test
  net_trace_batch_test
  bgp_mrt_lite_test
  data_rpsl_test
  state_snapshot_test
  state_plane_cache_test
  state_delta_chain_test
  state_fault_injection_test
  util_stats_test
  analysis_streaming_oracle_test
)

echo "=== UndefinedBehaviorSanitizer: parser + robustness suites ==="
cmake -S "${REPO_ROOT}" -B "${REPO_ROOT}/build-ubsan" \
  -DSPOOFSCOPE_SANITIZE=undefined >/dev/null
cmake --build "${REPO_ROOT}/build-ubsan" -j "${JOBS}" --target "${UBSAN_SUITES[@]}"
run_suite build-ubsan "${UBSAN_SUITES[@]}"

PORTABLE_SUITES=(
  classify_batch_oracle_test
  classify_simd_kernel_test
)

echo "=== portable guard: scalar-only build (SPOOFSCOPE_DISABLE_SIMD) ==="
cmake -S "${REPO_ROOT}" -B "${REPO_ROOT}/build-portable" \
  -DSPOOFSCOPE_DISABLE_SIMD=ON >/dev/null
cmake --build "${REPO_ROOT}/build-portable" -j "${JOBS}" \
  --target "${PORTABLE_SUITES[@]}"
run_suite build-portable "${PORTABLE_SUITES[@]}"

echo "=== serve smoke: resident daemon over the control socket ==="
# Boots the sharded service on a generated world and drives every
# control verb through a real Unix-domain socket session: submit,
# health, stats-json, alerts, checkpoint, drain, an unknown verb (must
# answer "err ..."), then shutdown — and requires a clean daemon exit.
SERVE_OUT="$(mktemp -d "${TMPDIR:-/tmp}/spoofscope-check-serve.XXXXXX")"
"${REPO_ROOT}/build/tools/spoofscope" generate --seed 7 --out "${SERVE_OUT}/world"
"${REPO_ROOT}/build/tools/spoofscope" serve \
  --mrt "${SERVE_OUT}/world/route-server.mrt" \
  --trace "${SERVE_OUT}/world/ixp.trace" \
  --socket "${SERVE_OUT}/ctl.sock" --shards 4 \
  --checkpoint-dir "${SERVE_OUT}/ckpt" --checkpoint-every 5000 &
SERVE_PID=$!
python3 - "${SERVE_OUT}/ctl.sock" "${SERVE_OUT}/world/ixp.trace" <<'PY'
import socket, sys, time

sock_path, trace = sys.argv[1], sys.argv[2]
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
for _ in range(400):
    try:
        s.connect(sock_path)
        break
    except OSError:
        time.sleep(0.025)
else:
    sys.exit("FAIL serve smoke: control socket never came up")
f = s.makefile("rw")

def rpc(line):
    f.write(line + "\n")
    f.flush()
    out = []
    while True:
        resp = f.readline()
        if not resp:
            sys.exit(f"FAIL serve smoke: connection closed during {line!r}")
        resp = resp.rstrip("\n")
        out.append(resp)
        if resp.startswith(("ok", "err")):
            return out

def expect(line, prefix):
    out = rpc(line)
    if not out[-1].startswith(prefix):
        sys.exit(f"FAIL serve smoke: {line!r} answered {out[-1]!r}, "
                 f"want {prefix!r}")
    return out

submitted = expect(f"submit {trace}", "ok submitted flows=")
health = expect("health", "ok shards=4 processed=")
if not health[0].startswith("health: "):
    sys.exit(f"FAIL serve smoke: no health line, got {health[0]!r}")
stats = expect("stats-json", "ok")
if '"detector":{' not in stats[0] or '"shards":4' not in stats[0]:
    sys.exit(f"FAIL serve smoke: stats-json schema: {stats[0][:200]}")
alerts = expect("alerts", "ok alerts=")
expect("checkpoint", "ok checkpoint shards=4")
expect("drain", "ok drained processed=")
expect("bogus", "err unknown command: bogus")
expect("shutdown", "ok shutting-down")
print(f"serve smoke: {submitted[-1]}; {alerts[-1]}")
PY
wait "${SERVE_PID}"
rm -rf "${SERVE_OUT}"

echo "=== internet-scale generate under TSan + ASan ==="
# Drives the chunk-parallel topology generator and the streamed parallel
# route propagation end to end through the CLI on a scaled-down internet
# preset: --scale-factor 16 keeps sanitizer runtime in check while the
# world still spans multiple AS chunks (5000 ASes / chunk_ases=2048) and
# multiple propagation chunks, with 4 worker threads racing for real.
for tree in build-tsan build-asan; do
  cmake --build "${REPO_ROOT}/${tree}" -j "${JOBS}" --target spoofscope_cli
  GEN_OUT="$(mktemp -d "${TMPDIR:-/tmp}/spoofscope-check-gen.XXXXXX")"
  echo "--- ${tree}/tools/spoofscope generate --scale internet --scale-factor 16 --threads 4"
  "${REPO_ROOT}/${tree}/tools/spoofscope" generate --scale internet \
    --scale-factor 16 --threads 4 --seed 7 --out "${GEN_OUT}"
  rm -rf "${GEN_OUT}"
done

echo "=== fault injection: widened seed sweep across all sanitizers ==="
FAULT_SEEDS="1 2 3 4 5 6 7 8"
for tree in build-tsan build-asan build-ubsan; do
  echo "--- ${tree}/tests/state_fault_injection_test (SPOOFSCOPE_FAULT_SEEDS=${FAULT_SEEDS})"
  SPOOFSCOPE_FAULT_SEEDS="${FAULT_SEEDS}" \
    "${REPO_ROOT}/${tree}/tests/state_fault_injection_test"
done
echo "--- build/tests/classify_plane_update_test (SPOOFSCOPE_CHURN_STEPS=1000)"
SPOOFSCOPE_CHURN_STEPS=1000 "${REPO_ROOT}/build/tests/classify_plane_update_test"

echo "=== all checks passed ==="
