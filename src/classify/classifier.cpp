#include "classify/classifier.hpp"

#include <stdexcept>

#include "net/bogon.hpp"

namespace spoofscope::classify {

namespace {

/// Packs one 2-bit class per configured space into a Label.
template <typename ClassOf>
Label pack_label(std::size_t num_spaces, ClassOf&& class_of) {
  Label label = 0;
  for (std::size_t i = 0; i < num_spaces; ++i) {
    label |= static_cast<Label>(class_of(i)) << (2 * i);
  }
  return label;
}

}  // namespace

std::string class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kBogon: return "Bogon";
    case TrafficClass::kUnrouted: return "Unrouted";
    case TrafficClass::kInvalid: return "Invalid";
    case TrafficClass::kValid: return "Valid";
  }
  return "?";
}

Classifier::Classifier(const bgp::RoutingTable& table,
                       std::vector<inference::ValidSpace> spaces)
    : table_(&table), spaces_(std::move(spaces)) {
  if (spaces_.empty() || spaces_.size() > 8) {
    throw std::invalid_argument("Classifier: need between 1 and 8 valid spaces");
  }
  for (const auto& p : net::bogon_prefixes()) bogons_.insert(p);
}

TrafficClass Classifier::classify(net::Ipv4Addr src, Asn member,
                                  std::size_t space_idx) const {
  if (bogons_.covers(src)) return TrafficClass::kBogon;
  if (!table_->is_routed(src)) return TrafficClass::kUnrouted;
  if (!spaces_[space_idx].valid(member, src)) return TrafficClass::kInvalid;
  return TrafficClass::kValid;
}

Label Classifier::classify_all(net::Ipv4Addr src, Asn member) const {
  // The bogon and routed checks are method-independent: one shared class.
  if (bogons_.covers(src)) {
    return pack_label(spaces_.size(),
                      [](std::size_t) { return TrafficClass::kBogon; });
  }
  if (!table_->is_routed(src)) {
    return pack_label(spaces_.size(),
                      [](std::size_t) { return TrafficClass::kUnrouted; });
  }
  return pack_label(spaces_.size(), [&](std::size_t i) {
    return spaces_[i].valid(member, src) ? TrafficClass::kValid
                                         : TrafficClass::kInvalid;
  });
}

std::vector<Label> classify_trace(const Classifier& classifier,
                                  std::span<const net::FlowRecord> flows) {
  std::vector<Label> labels;
  labels.reserve(flows.size());
  for (const auto& f : flows) {
    labels.push_back(classifier.classify_all(f.src, f.member_in));
  }
  return labels;
}

std::vector<Label> classify_trace(const Classifier& classifier,
                                  std::span<const net::FlowRecord> flows,
                                  util::ThreadPool& pool) {
  std::vector<Label> labels(flows.size());
  pool.parallel_for(0, flows.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      labels[i] = classifier.classify_all(flows[i].src, flows[i].member_in);
    }
  });
  return labels;
}

}  // namespace spoofscope::classify
