# Empty dependencies file for bench_fig8_traffic_char.
# This may be replaced when dependencies are built.
