// Differential harness for the compiled flat classification plane: for
// several scenario seeds, thread counts and both engines, the
// FlatClassifier must reproduce the trie engine bit-identically — per-flow
// labels, aggregate cells, extracted incidents and streaming alerts. Also
// exercises the two escape hatches the flat plane keeps for correctness:
// the interval-set fallback lane (ValidSpace::extend with ranges that
// don't align to routed prefixes) and the overflow lane (prefixes longer
// than /24 when the Sec 3.3 ingest invariant is relaxed).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "analysis/incidents.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/pipeline.hpp"
#include "classify/streaming.hpp"
#include "scenario/scenario.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::classify {
namespace {

/// Thread counts under test; 0 resolves to the hardware concurrency.
constexpr std::size_t kThreadCounts[] = {1, 2, 0};

void expect_same_aggregate(const Aggregate& a, const Aggregate& b,
                           const char* what) {
  EXPECT_EQ(a.total_flows, b.total_flows) << what;
  EXPECT_EQ(a.total_packets, b.total_packets) << what;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << what;
  ASSERT_EQ(a.totals.size(), b.totals.size()) << what;
  for (std::size_t s = 0; s < a.totals.size(); ++s) {
    for (int c = 0; c < kNumClasses; ++c) {
      EXPECT_EQ(a.totals[s][c].flows, b.totals[s][c].flows)
          << what << " space=" << s << " class=" << c;
      EXPECT_EQ(a.totals[s][c].packets, b.totals[s][c].packets)
          << what << " space=" << s << " class=" << c;
      EXPECT_EQ(a.totals[s][c].bytes, b.totals[s][c].bytes)
          << what << " space=" << s << " class=" << c;
      EXPECT_EQ(a.totals[s][c].members, b.totals[s][c].members)
          << what << " space=" << s << " class=" << c;
    }
  }
}

class FlatOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatOracleTest, LabelsIdenticalToTrieEngineAcrossThreadCounts) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;

  const auto oracle = classify_trace(w->classifier(), flows);
  EXPECT_EQ(w->labels(), oracle);  // scenario pool path == sequential

  for (const std::size_t compile_threads : kThreadCounts) {
    util::ThreadPool compile_pool(compile_threads);
    const auto flat = FlatClassifier::compile(w->classifier(), compile_pool);

    const auto seq = classify_trace(flat, flows);
    ASSERT_EQ(seq.size(), oracle.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      ASSERT_EQ(seq[i], oracle[i])
          << "first mismatch at flow " << i << " (" << flows[i].str()
          << ") compile_threads=" << compile_threads;
    }

    for (const std::size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      const auto par = classify_trace(flat, flows, pool);
      ASSERT_EQ(par, oracle) << "threads=" << threads;
    }
  }
}

TEST_P(FlatOracleTest, SingleMethodAndRandomProbesAgree) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam() ^ 0x11a7;
  const auto w = scenario::build_scenario(params);
  const auto flat = FlatClassifier::compile(w->classifier());

  util::Rng rng(GetParam());
  const auto members = w->ixp().member_asns();
  for (int i = 0; i < 20000; ++i) {
    const net::Ipv4Addr src(rng.next_u32());
    // Known members, plus an AS that is certainly not a member.
    const Asn member = (i % 7 == 0) ? Asn{0xdeadbeef}
                                    : members[i % members.size()];
    ASSERT_EQ(flat.classify_all(src, member),
              w->classifier().classify_all(src, member))
        << src.str() << " member " << member;
    const std::size_t s = i % w->classifier().space_count();
    ASSERT_EQ(flat.classify(src, member, s),
              w->classifier().classify(src, member, s))
        << src.str() << " member " << member << " space " << s;
  }
}

TEST_P(FlatOracleTest, ScenarioEngineKnobProducesIdenticalLabels) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam() ^ 0x5eed;
  const auto trie_world = scenario::build_scenario(params);
  EXPECT_EQ(trie_world->flat_classifier(), nullptr);

  params.engine = Engine::kFlat;
  params.threads = 2;  // flat compile + classify through the pool
  const auto flat_world = scenario::build_scenario(params);
  ASSERT_NE(flat_world->flat_classifier(), nullptr);
  EXPECT_EQ(flat_world->labels(), trie_world->labels());
}

TEST_P(FlatOracleTest, AggregatesIncidentsAndStreamingAlertsIdentical) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam() ^ 0xa66;
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;
  const auto flat = FlatClassifier::compile(w->classifier());

  const auto trie_labels = classify_trace(w->classifier(), flows);
  const auto flat_labels = classify_trace(flat, flows);
  ASSERT_EQ(flat_labels, trie_labels);

  const auto seq = aggregate_classes(w->classifier(), flows, trie_labels);
  std::unordered_set<Asn> exclude{w->ixp().members().front().asn};
  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    expect_same_aggregate(
        seq, aggregate_classes(flat, flows, flat_labels, {}, pool),
        "flat aggregate");
    expect_same_aggregate(
        aggregate_classes(w->classifier(), flows, trie_labels, exclude),
        aggregate_classes(flat, flows, flat_labels, exclude, pool),
        "flat aggregate with exclusion");
  }

  for (std::size_t s = 0; s < w->classifier().space_count(); ++s) {
    const auto trie_inc = analysis::extract_incidents(flows, trie_labels, s);
    const auto flat_inc = analysis::extract_incidents(flows, flat_labels, s);
    ASSERT_EQ(trie_inc.size(), flat_inc.size()) << "space " << s;
    for (std::size_t i = 0; i < trie_inc.size(); ++i) {
      EXPECT_EQ(trie_inc[i].kind, flat_inc[i].kind);
      EXPECT_EQ(trie_inc[i].victim, flat_inc[i].victim);
      EXPECT_EQ(trie_inc[i].packets, flat_inc[i].packets);
      EXPECT_EQ(trie_inc[i].members, flat_inc[i].members);
    }
  }

  StreamingParams sp;
  sp.min_spoofed_packets = 20;  // alert often enough to be a real check
  StreamingDetector trie_det(w->classifier(), 4, sp);
  StreamingDetector flat_det(flat, 4, sp);
  const auto trie_alerts = trie_det.run(flows);
  const auto flat_alerts = flat_det.run(flows);
  EXPECT_GT(trie_det.processed(), 0u);
  ASSERT_EQ(flat_alerts, trie_alerts);
}

TEST_P(FlatOracleTest, ExtendWithUnalignedRangesUsesFallbackLane) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam() ^ 0xfa11;
  const auto w = scenario::build_scenario(params);
  auto& classifier = w->classifier();
  const auto& prefixes = w->table().prefixes();
  ASSERT_FALSE(prefixes.empty());
  const auto members = w->ixp().member_asns();

  // Extend several members with ranges that deliberately do NOT align to
  // routed prefixes: a strict sub-range of a routed prefix (partial
  // coverage -> fallback lane) and an off-by-3 straddle of another.
  for (std::size_t m = 0; m < 5 && m < members.size(); ++m) {
    const auto& p = prefixes[(m * 13) % prefixes.size()];
    trie::IntervalSet extra;
    if (p.last() - p.first() >= 8) {
      extra.add(p.first() + 1, p.first() + (p.last() - p.first()) / 2);
    }
    const auto& q = prefixes[(m * 29 + 7) % prefixes.size()];
    extra.add(q.first() + 3 > q.last() ? q.first() : q.first() + 3,
              q.last() + (q.last() < 0xFFFFFFFFu - 700 ? 700 : 0));
    classifier.mutable_space(4).extend(members[m], extra);
  }

  const auto flat = FlatClassifier::compile(classifier);
  EXPECT_GT(flat.stats().partial_rows, 0u)
      << "unaligned extend must engage the interval-set fallback lane";

  // Sweep the trace plus targeted probes inside the extended ranges.
  const auto& flows = w->trace().flows;
  ASSERT_EQ(classify_trace(flat, flows), classify_trace(classifier, flows));
  util::Rng rng(GetParam() ^ 0xfa11);
  for (int i = 0; i < 20000; ++i) {
    const auto& p = prefixes[rng.next_u32() % prefixes.size()];
    const net::Ipv4Addr src(p.first() +
                            rng.next_u32() % (p.last() - p.first() + 1));
    const Asn member = members[rng.next_u32() % members.size()];
    ASSERT_EQ(flat.classify_all(src, member),
              classifier.classify_all(src, member))
        << src.str() << " member " << member;
  }
}

TEST_P(FlatOracleTest, CompiledPlaneIsImmuneToLaterCopyOnWriteExtends) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam() ^ 0xc0;
  const auto w = scenario::build_scenario(params);
  auto& classifier = w->classifier();
  const auto flat = FlatClassifier::compile(classifier);

  // Find a routed address that is Invalid for a member, then whitelist
  // it. The live classifier flips to Valid; the compiled snapshot keeps
  // the pre-extend answer (copy-on-write protects its shared spaces).
  const auto members = w->ixp().member_asns();
  const auto& prefixes = w->table().prefixes();
  for (const Asn member : members) {
    for (const auto& p : prefixes) {
      const net::Ipv4Addr src(p.first());
      if (classifier.classify(src, member, 4) != TrafficClass::kInvalid) {
        continue;
      }
      trie::IntervalSet extra;
      extra.add(p.first(), p.last());
      classifier.mutable_space(4).extend(member, extra);
      EXPECT_EQ(classifier.classify(src, member, 4), TrafficClass::kValid);
      EXPECT_EQ(flat.classify(src, member, 4), TrafficClass::kInvalid)
          << "compiled snapshot must not see post-compile mutations";
      // Recompiling picks the extension up.
      const auto recompiled = FlatClassifier::compile(classifier);
      EXPECT_EQ(recompiled.classify(src, member, 4), TrafficClass::kValid);
      return;
    }
  }
  FAIL() << "no Invalid (member, prefix) pair found to exercise CoW";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatOracleTest,
                         ::testing::Values(1, 7, 20170205));

// --- overflow lane: prefixes longer than /24 --------------------------------

TEST(FlatOverflow, LongerThanSlash24PrefixesStayCorrectViaOverflowLane) {
  // Relax the Sec 3.3 ingest bounds so /26 and /30 announcements enter
  // the table, breaking /24 homogeneity for their blocks.
  bgp::RoutingTableBuilder builder({.min_length = 8, .max_length = 32});
  const Asn origin = 65001, other = 65002;
  builder.ingest_route(net::pfx("10.0.0.0/8"), bgp::AsPath({65010, origin}));
  builder.ingest_route(net::pfx("20.1.2.0/24"), bgp::AsPath({65010, origin}));
  builder.ingest_route(net::pfx("20.1.2.64/26"), bgp::AsPath({65010, other}));
  builder.ingest_route(net::pfx("30.7.7.128/30"), bgp::AsPath({65010, other}));
  const auto table = builder.build();

  // `origin` may source the /8 and the /24; `other` only its longer-
  // than-/24 carve-outs.
  std::unordered_map<Asn, trie::IntervalSet> spaces;
  spaces[origin].add(net::pfx("10.0.0.0/8"));
  spaces[origin].add(net::pfx("20.1.2.0/24"));
  spaces[other].add(net::pfx("20.1.2.64/26"));
  spaces[other].add(net::pfx("30.7.7.128/30"));
  std::vector<inference::ValidSpace> vs;
  vs.emplace_back(inference::Method::kFullCone, std::move(spaces));
  const Classifier trie_engine(table, std::move(vs));
  const auto flat = FlatClassifier::compile(trie_engine);

  EXPECT_EQ(flat.stats().overflow_prefixes, 2u);
  EXPECT_EQ(flat.stats().overflow_slots, 2u);  // 20.1.2.0/24 and 30.7.7.128/24

  // Exhaustive sweep over every address of the affected /24 blocks plus
  // probes elsewhere: overflow lane must equal the trie engine exactly.
  const auto check = [&](net::Ipv4Addr src) {
    for (const Asn member : {origin, other, Asn{65099}}) {
      ASSERT_EQ(flat.classify_all(src, member),
                trie_engine.classify_all(src, member))
          << src.str() << " member " << member;
    }
  };
  for (std::uint32_t a = net::pfx("20.1.2.0/24").first();
       a <= net::pfx("20.1.2.0/24").last(); ++a) {
    check(net::Ipv4Addr(a));
  }
  for (std::uint32_t a = net::pfx("30.7.7.0/24").first();
       a <= net::pfx("30.7.7.0/24").last(); ++a) {
    check(net::Ipv4Addr(a));
  }
  check(net::Ipv4Addr::from_octets(10, 1, 2, 3));     // routed /8
  check(net::Ipv4Addr::from_octets(99, 9, 9, 9));     // unrouted
  check(net::Ipv4Addr::from_octets(192, 168, 1, 1));  // bogon
}

TEST(FlatEngine, EngineNamesRoundTrip) {
  EXPECT_EQ(engine_name(Engine::kTrie), "trie");
  EXPECT_EQ(engine_name(Engine::kFlat), "flat");
  EXPECT_EQ(parse_engine("trie"), Engine::kTrie);
  EXPECT_EQ(parse_engine("flat"), Engine::kFlat);
  EXPECT_EQ(parse_engine("dir24"), std::nullopt);
}

TEST(FlatEngine, StatsReportPlausibleFootprint) {
  auto params = scenario::ScenarioParams::small();
  const auto w = scenario::build_scenario(params);
  const auto flat = FlatClassifier::compile(w->classifier());
  const auto& st = flat.stats();
  EXPECT_EQ(st.table_bytes, (std::size_t{1} << 24) * sizeof(std::uint32_t));
  EXPECT_EQ(st.prefixes, w->table().prefix_count());
  EXPECT_GT(st.members, 0u);
  EXPECT_GT(st.bitset_bytes, 0u);
  EXPECT_EQ(st.overflow_prefixes, 0u);  // /8–/24 invariant holds here
  EXPECT_EQ(st.overflow_slots, 0u);
}

}  // namespace
}  // namespace spoofscope::classify
