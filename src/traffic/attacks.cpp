#include "traffic/attacks.hpp"

#include <algorithm>
#include <cmath>

#include "net/protocols.hpp"
#include "traffic/regular.hpp"

namespace spoofscope::traffic {

namespace {

using net::Proto;
namespace ports = net::ports;

/// Picks a member likely to host attackers: weighted by spoofer density,
/// restricted to members whose ground truth lets spoofed packets out.
const topo::AsInfo* pick_attacker(const TrafficContext& ctx, util::Rng& rng) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    const auto& m = ctx.uniform_member(rng);
    const auto* info = ctx.topo().find(m.asn);
    if (info->filter.blocks_spoofed) continue;
    if (rng.uniform() < info->spoofer_density) return info;
  }
  return nullptr;
}

/// A victim address: usually inside a hosting/content member's announced
/// space (the popular targets), otherwise anywhere announced.
bool announces_addr(const topo::AsInfo& as, net::Ipv4Addr addr) {
  for (const auto& p : as.prefixes) {
    if (p.contains(addr)) return true;
  }
  return false;
}

net::Ipv4Addr pick_victim(const TrafficContext& ctx, util::Rng& rng) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const auto& m = ctx.uniform_member(rng);
    const auto* info = ctx.topo().find(m.asn);
    const bool preferred = info->type == topo::BusinessType::kHosting ||
                           info->type == topo::BusinessType::kContent;
    if (preferred || rng.chance(0.15)) return ctx.announced_addr(m.asn, rng);
  }
  return ctx.announced_addr(ctx.uniform_member(rng).asn, rng);
}

std::uint16_t ephemeral(util::Rng& rng) {
  return static_cast<std::uint16_t>(rng.uniform_u32(1024, 65535));
}

}  // namespace

void generate_random_spoof_floods(const TrafficContext& ctx, util::Rng& rng,
                                  std::vector<net::FlowRecord>& out,
                                  std::vector<Component>& components,
                                  WorkloadSummary& summary) {
  for (std::size_t e = 0; e < ctx.params().random_spoof_events; ++e) {
    const auto* attacker = pick_attacker(ctx, rng);
    if (!attacker) continue;
    const net::Ipv4Addr victim = pick_victim(ctx, rng);
    const Asn member_out = ctx.exit_member_for(victim, rng);

    // Event timing: a burst of minutes to hours, anywhere in the window.
    const std::uint32_t start = ctx.uniform_ts(rng);
    const std::uint32_t duration = rng.uniform_u32(300, 6 * 3600);
    const auto flows = static_cast<std::size_t>(std::min(
        static_cast<double>(ctx.params().flood_flows_cap),
        rng.pareto(static_cast<double>(ctx.params().flood_flows_mean) * 0.5, 1.3)));

    const bool syn_flood = rng.chance(0.9);
    const std::uint16_t dport = rng.chance(0.5) ? ports::kHttp : ports::kHttps;
    for (std::size_t i = 0; i < flows; ++i) {
      const net::Ipv4Addr src(rng.next_u32());  // uniform over all of IPv4
      if (!ctx.egress_allows(*attacker, src)) continue;
      const std::uint32_t ts = std::min(ctx.params().window_seconds - 1,
                                        start + rng.uniform_u32(0, duration));
      const std::uint32_t pkts = 1 + (rng.chance(0.15) ? 1 : 0);
      const std::uint64_t bytes = std::uint64_t(pkts) * (40 + rng.uniform_u32(0, 20));
      if (syn_flood) {
        out.push_back(make_flow(ts, src, victim, Proto::kTcp, ephemeral(rng),
                                dport, pkts, bytes, attacker->asn, member_out));
      } else {
        out.push_back(make_flow(ts, src, victim, Proto::kUdp, ephemeral(rng),
                                ephemeral(rng), pkts, bytes, attacker->asn,
                                member_out));
      }
      components.push_back(Component::kRandomSpoof);
      ++summary.random_spoof;
    }
  }
}

void generate_ntp_amplification(const TrafficContext& ctx, util::Rng& rng,
                                std::vector<net::FlowRecord>& out,
                                std::vector<Component>& components,
                                WorkloadSummary& summary) {
  const auto& servers = ctx.ntp_servers();
  if (servers.empty() || ctx.params().ntp_campaigns == 0) return;

  // The dominant attacker member emits most trigger volume.
  const auto* dominant = pick_attacker(ctx, rng);

  for (std::size_t c = 0; c < ctx.params().ntp_campaigns; ++c) {
    const topo::AsInfo* attacker =
        (dominant && rng.chance(ctx.params().ntp_dominant_share))
            ? dominant
            : pick_attacker(ctx, rng);
    if (!attacker) continue;

    NtpCampaign campaign;
    campaign.attacker_member = attacker->asn;
    // The trigger's source address IS the victim: a victim inside the
    // attacker's own announced space would be a legitimately sourced
    // packet mislabelled as spoofed ground truth (and reflecting an
    // attack onto your own prefix is not source spoofing), so re-draw
    // until the victim is foreign to the attacker.
    campaign.victim = pick_victim(ctx, rng);
    for (int attempt = 0;
         attempt < 16 && announces_addr(*attacker, campaign.victim);
         ++attempt) {
      campaign.victim = pick_victim(ctx, rng);
    }
    campaign.distributed = rng.chance(0.4);

    // Strategy: concentrated campaigns hammer a handful of amplifiers;
    // distributed ones spray uniformly over thousands (Fig 11b).
    const std::size_t namp =
        campaign.distributed
            ? rng.uniform_u32(800, static_cast<std::uint32_t>(
                                       std::max<std::size_t>(801, servers.size())))
            : rng.uniform_u32(5, 120);
    std::vector<std::size_t> amp_idx;
    amp_idx.reserve(namp);
    for (std::size_t i = 0; i < namp; ++i) amp_idx.push_back(rng.index(servers.size()));
    std::sort(amp_idx.begin(), amp_idx.end());
    amp_idx.erase(std::unique(amp_idx.begin(), amp_idx.end()), amp_idx.end());
    campaign.amplifiers_contacted = amp_idx.size();

    const std::uint32_t start = ctx.uniform_ts(rng);
    const std::uint32_t duration = rng.uniform_u32(1800, 12 * 3600);
    const std::size_t total_flows = static_cast<std::size_t>(
        std::min(static_cast<double>(ctx.params().ntp_flows_cap),
                 rng.pareto(static_cast<double>(ctx.params().ntp_flows_mean) * 0.5,
                            1.3)));

    const util::ZipfDistribution amp_pick(amp_idx.size(),
                                          campaign.distributed ? 0.05 : 1.3);
    // Whether the amplifier->victim return path crosses the fabric is a
    // property of routing, fixed per (victim, amplifier) pair.
    std::vector<bool> response_visible(amp_idx.size());
    for (std::size_t a = 0; a < amp_idx.size(); ++a) {
      response_visible[a] = rng.chance(ctx.params().ntp_response_visibility);
    }
    for (std::size_t i = 0; i < total_flows; ++i) {
      const std::size_t amp_slot = amp_pick(rng);
      const auto& [amp_addr, amp_asn] = servers[amp_idx[amp_slot]];
      if (!ctx.egress_allows(*attacker, campaign.victim)) break;
      const std::uint32_t ts = std::min(ctx.params().window_seconds - 1,
                                        start + rng.uniform_u32(0, duration));
      const std::uint32_t pkts = 1 + (rng.chance(0.2) ? 1 : 0);
      const std::uint64_t bytes = std::uint64_t(pkts) * (40 + rng.uniform_u32(0, 50));
      const Asn amp_member = ctx.exit_member_for(amp_addr, rng);
      out.push_back(make_flow(ts, campaign.victim, amp_addr, Proto::kUdp,
                              ephemeral(rng), ports::kNtp, pkts, bytes,
                              attacker->asn, amp_member));
      components.push_back(Component::kNtpTrigger);
      ++summary.ntp_trigger;
      summary.ntp_amplifiers_contacted.push_back(amp_addr);

      // Response path: amplifier -> victim, ~10x bytes, visible for a
      // subset of pairs (both directions must cross the fabric).
      if (response_visible[amp_slot]) {
        const Asn victim_member = ctx.exit_member_for(campaign.victim, rng);
        const std::uint64_t rbytes = bytes * (8 + rng.uniform_u32(0, 6));
        out.push_back(make_flow(
            std::min(ctx.params().window_seconds - 1, ts + rng.uniform_u32(0, 2)),
            amp_addr, campaign.victim, Proto::kUdp, ports::kNtp, ephemeral(rng),
            pkts, rbytes, amp_member, victim_member));
        components.push_back(Component::kNtpResponse);
        ++summary.ntp_response;
      }
    }
    summary.ntp_campaigns.push_back(campaign);
  }

  std::sort(summary.ntp_amplifiers_contacted.begin(),
            summary.ntp_amplifiers_contacted.end());
  summary.ntp_amplifiers_contacted.erase(
      std::unique(summary.ntp_amplifiers_contacted.begin(),
                  summary.ntp_amplifiers_contacted.end()),
      summary.ntp_amplifiers_contacted.end());
}

void generate_steam_floods(const TrafficContext& ctx, util::Rng& rng,
                           std::vector<net::FlowRecord>& out,
                           std::vector<Component>& components,
                           WorkloadSummary& summary) {
  for (std::size_t e = 0; e < ctx.params().steam_flood_events; ++e) {
    const auto* attacker = pick_attacker(ctx, rng);
    if (!attacker) continue;
    const net::Ipv4Addr victim = pick_victim(ctx, rng);
    const Asn member_out = ctx.exit_member_for(victim, rng);
    const std::uint32_t start = ctx.uniform_ts(rng);
    const std::uint32_t duration = rng.uniform_u32(600, 4 * 3600);
    const auto flows = static_cast<std::size_t>(
        std::min(static_cast<double>(ctx.params().steam_flows_cap),
                 rng.pareto(250.0, 1.4)));
    for (std::size_t i = 0; i < flows; ++i) {
      const net::Ipv4Addr src(rng.next_u32());
      if (!ctx.egress_allows(*attacker, src)) continue;
      const std::uint32_t ts = std::min(ctx.params().window_seconds - 1,
                                        start + rng.uniform_u32(0, duration));
      out.push_back(make_flow(ts, src, victim, net::Proto::kUdp, ephemeral(rng),
                              net::ports::kSteam, 1, 40 + rng.uniform_u32(0, 25),
                              attacker->asn, member_out));
      components.push_back(Component::kSteamFlood);
      ++summary.steam_flood;
    }
  }
}

}  // namespace spoofscope::traffic
