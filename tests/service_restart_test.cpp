// Rolling-restart differential (ISSUE satellite): kill one shard of a
// three-shard service mid-stream with an injected crash during a
// checkpoint write, stand up a replacement over the same delta chain,
// re-feed the shard's flow sequence, and prove the merged service
// output — alerts and health — equals the uninterrupted run bit for
// bit, under every crash kind the snapshot writer can suffer.
//
// Only the victim shard is given a checkpoint base: the injector counts
// site occurrences globally, so confining "snapshot.write" hits to one
// worker thread keeps (site, nth) a deterministic address for the
// crash. The survivor shards neither checkpoint nor crash, exactly the
// rolling-restart regime the service is built for.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bgp/routing_table.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/streaming.hpp"
#include "net/flow_batch.hpp"
#include "net/prefix.hpp"
#include "service/merge.hpp"
#include "service/router.hpp"
#include "service/shard.hpp"
#include "state/delta_chain.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace spoofscope::service {
namespace {

namespace fs = std::filesystem;
using classify::Classifier;
using classify::DetectorHealth;
using classify::FlatClassifier;
using classify::SpoofingAlert;
using classify::StreamingDetector;
using classify::StreamingParams;
using net::Asn;
using net::Ipv4Addr;
using net::pfx;

constexpr std::size_t kMembers = 10;
constexpr std::size_t kShards = 3;

struct Fixture {
  Fixture() {
    bgp::RoutingTableBuilder b;
    std::unordered_map<Asn, trie::IntervalSet> spaces;
    for (std::uint32_t m = 1; m <= kMembers; ++m) {
      const net::Prefix p = pfx(("10." + std::to_string(m) + ".0.0/16").c_str());
      b.ingest_route(p, bgp::AsPath{m});
      if (m <= 8) {
        trie::IntervalSet s;
        s.add(p);
        spaces.emplace(m, std::move(s));
      }
    }
    table = b.build();
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }
  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

StreamingParams detect_params() {
  StreamingParams p;
  p.window_seconds = 300;
  p.min_spoofed_packets = 20;
  p.min_share = 0.1;
  p.cooldown_seconds = 120;
  return p;
}

std::vector<net::FlowRecord> make_stream(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<net::FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::FlowRecord f;
    const std::uint8_t member = static_cast<std::uint8_t>(1 + rng.index(kMembers));
    const std::uint8_t other =
        static_cast<std::uint8_t>(1 + (member % kMembers));
    const std::uint8_t host = static_cast<std::uint8_t>(1 + rng.index(250));
    f.src = rng.chance(0.5) ? Ipv4Addr::from_octets(10, member, 0, host)
                            : Ipv4Addr::from_octets(99, 0, 0, host);
    f.dst = Ipv4Addr::from_octets(10, other, 0, 1);
    f.ts = static_cast<std::uint32_t>(i / 4);
    f.packets = 1 + rng.uniform_u32(0, 3);
    f.bytes = 40ull * f.packets;
    f.member_in = member;
    f.member_out = other;
    flows.push_back(f);
  }
  return flows;
}

/// The victim's flow sequence as routed batches (trace order preserved).
std::vector<net::FlowBatch> lane_batches(std::span<const net::FlowRecord> flows,
                                         std::size_t shard, std::size_t chunk) {
  std::vector<net::FlowBatch> batches;
  net::FlowBatch cur;
  for (const auto& f : flows) {
    if (shard_of(f.member_in, kShards) != shard) continue;
    cur.push_back(f);
    if (cur.size() >= chunk) {
      batches.push_back(std::move(cur));
      cur = net::FlowBatch();
    }
  }
  if (cur.size() > 0) batches.push_back(std::move(cur));
  return batches;
}

class ScratchDir {
 public:
  explicit ScratchDir(const char* name)
      : path_(fs::temp_directory_path() /
              (std::string(name) + "." + std::to_string(::getpid()))),
        str_(path_.string()) {
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& str() const { return str_; }

 private:
  fs::path path_;
  std::string str_;
};

struct RunResult {
  std::vector<SpoofingAlert> alerts;
  DetectorHealth health;
};

/// One-shot whole-trace oracle (what `detect` prints for this stream).
RunResult whole_oracle(const FlatClassifier& flat,
                       std::span<const net::FlowRecord> flows) {
  RunResult r;
  StreamingDetector d(flat, 0, detect_params());
  r.alerts = d.run(flows);
  r.health = d.health();
  sort_alerts(r.alerts);
  return r;
}

/// Per-lane oracle: the victim shard's ideal uninterrupted output.
RunResult lane_oracle(const FlatClassifier& flat,
                      const std::vector<net::FlowBatch>& batches) {
  RunResult r;
  StreamingDetector d(flat, 0, detect_params());
  const auto sink = [&r](const SpoofingAlert& a) { r.alerts.push_back(a); };
  for (const auto& b : batches) d.ingest_batch(b, sink);
  d.flush(sink);
  r.health = d.health();
  return r;
}

ShardConfig shard_config(std::size_t index, const std::string& ckpt_dir) {
  ShardConfig cfg;
  cfg.index = index;
  cfg.shard_count = kShards;
  cfg.params = detect_params();
  if (!ckpt_dir.empty()) {
    cfg.checkpoint_base = state::shard_checkpoint_base(ckpt_dir, index, kShards);
    cfg.checkpoint_every = 150;
    cfg.max_chain = 4;  // force delta links AND full-checkpoint rollovers
    cfg.policy = util::ErrorPolicy::kSkip;  // recovery truncates damage
  }
  return cfg;
}

/// Feeds `batches` to a shard, flushes and waits. Returns false if the
/// worker died en route (the stored error is swallowed here; the caller
/// asserts on it via dead()).
bool feed(Shard& shard, const std::vector<net::FlowBatch>& batches) {
  try {
    for (const auto& b : batches) shard.submit(net::FlowBatch(b));
    shard.flush_async();
    shard.wait_idle();
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

TEST(ServiceRestart, ShardCrashResumesBitIdenticallyUnderEveryCrashKind) {
  Fixture fx;
  const FlatClassifier flat = FlatClassifier::compile(*fx.classifier);
  const auto plane =
      std::make_shared<FlatClassifier>(FlatClassifier::compile(*fx.classifier));
  const auto flows = make_stream(9, 4500);
  const RunResult whole = whole_oracle(flat, flows);
  ASSERT_FALSE(whole.alerts.empty());

  std::vector<std::vector<net::FlowBatch>> lanes;
  for (std::size_t s = 0; s < kShards; ++s) {
    lanes.push_back(lane_batches(flows, s, 256));
    ASSERT_FALSE(lanes.back().empty()) << "shard " << s << " starved";
  }
  // Victim: the shard with the most batches (most checkpoint cuts).
  std::size_t victim = 0;
  for (std::size_t s = 1; s < kShards; ++s) {
    if (lanes[s].size() > lanes[victim].size()) victim = s;
  }
  const RunResult victim_ideal = lane_oracle(flat, lanes[victim]);
  ASSERT_FALSE(victim_ideal.alerts.empty());

  // Every damage mode the atomic snapshot writer can suffer, at early
  // and later checkpoint cuts. The write site expresses torn/failed
  // writes; the crash-around-rename kinds live at the rename site (both
  // sites are consulted on every save, so `nth` addresses the same cut
  // either way).
  const struct {
    const char* site;
    util::FaultKind kind;
    std::uint64_t nth;  ///< which checkpoint save crashes
  } scenarios[] = {
      {"snapshot.write", util::FaultKind::kShortWrite, 1},
      {"snapshot.write", util::FaultKind::kShortWrite, 3},
      {"snapshot.write", util::FaultKind::kEnospc, 2},
      {"snapshot.rename", util::FaultKind::kCrashBeforeRename, 2},
      {"snapshot.rename", util::FaultKind::kCrashAfterRename, 2},
  };
  for (const auto& sc : scenarios) {
    const std::string tag = std::string(util::fault_kind_name(sc.kind)) +
                            "@" + std::to_string(sc.nth);
    ScratchDir dir("spoofscope_serve_restart");

    // Survivors run fault-free to completion first (one worker at a
    // time also keeps this suite deterministic under the sanitizers).
    std::vector<std::unique_ptr<Shard>> fleet;
    for (std::size_t s = 0; s < kShards; ++s) {
      fleet.push_back(std::make_unique<Shard>(
          plane, shard_config(s, s == victim ? dir.str() : "")));
    }
    for (std::size_t s = 0; s < kShards; ++s) {
      if (s == victim) continue;
      fleet[s]->start();
      ASSERT_TRUE(feed(*fleet[s], lanes[s])) << tag;
    }

    // The victim crashes inside checkpoint nth's write.
    std::vector<SpoofingAlert> pre_crash;
    {
      util::FaultInjector injector;
      injector.arm(sc.site, sc.nth, sc.kind);
      util::FaultInjector::Scope scope(injector);
      fleet[victim]->start();
      ASSERT_FALSE(feed(*fleet[victim], lanes[victim])) << tag
          << ": stream finished without tripping the armed fault";
      ASSERT_TRUE(fleet[victim]->dead()) << tag;
      EXPECT_EQ(injector.injected(), 1u) << tag;
      pre_crash = fleet[victim]->alerts();
    }

    // Pre-crash alerts must be a prefix of the victim's ideal sequence
    // (the shard emitted them in released order before dying).
    ASSERT_LE(pre_crash.size(), victim_ideal.alerts.size()) << tag;
    EXPECT_TRUE(std::equal(pre_crash.begin(), pre_crash.end(),
                           victim_ideal.alerts.begin()))
        << tag;

    // Rolling restart: a fresh Shard over the same chain. resume()
    // restores the newest consistent cut; re-feeding the full lane
    // fast-forwards through the already-processed prefix.
    Shard replacement(plane, shard_config(victim, dir.str()));
    const std::uint64_t restored = replacement.resume();
    replacement.start();
    ASSERT_TRUE(feed(replacement, lanes[victim])) << tag;

    // Bit-identical continuation: final health and stream cursor match
    // the uninterrupted per-lane run exactly, and the replacement's
    // alerts are precisely the ideal sequence minus the pre-restore
    // prefix — no alert lost, none duplicated.
    EXPECT_EQ(replacement.health(), victim_ideal.health) << tag;
    std::uint64_t lane_flows = 0;
    for (const auto& b : lanes[victim]) lane_flows += b.size();
    EXPECT_EQ(replacement.processed(), lane_flows) << tag;
    EXPECT_LE(restored, lane_flows) << tag;
    const auto& resumed = replacement.alerts();
    ASSERT_LE(resumed.size(), victim_ideal.alerts.size()) << tag;
    const std::size_t overlap_start =
        victim_ideal.alerts.size() - resumed.size();
    EXPECT_TRUE(std::equal(resumed.begin(), resumed.end(),
                           victim_ideal.alerts.begin() +
                               static_cast<std::ptrdiff_t>(overlap_start)))
        << tag;
    // The restored cut precedes the crash, so prefix + suffix cover the
    // ideal sequence with no gap.
    EXPECT_GE(pre_crash.size() + resumed.size(), victim_ideal.alerts.size())
        << tag;

    // Merged service view after the rolling restart == uninterrupted
    // whole-trace run. The victim's full alert set is the union the
    // prefix/suffix equalities above pin down, i.e. its ideal sequence.
    std::vector<SpoofingAlert> merged_alerts = victim_ideal.alerts;
    std::vector<DetectorHealth> healths = {replacement.health()};
    for (std::size_t s = 0; s < kShards; ++s) {
      if (s == victim) continue;
      merged_alerts.insert(merged_alerts.end(), fleet[s]->alerts().begin(),
                           fleet[s]->alerts().end());
      healths.push_back(fleet[s]->health());
    }
    sort_alerts(merged_alerts);
    EXPECT_EQ(merged_alerts, whole.alerts) << tag;
    EXPECT_EQ(merge_health(healths), whole.health) << tag;
  }
}

TEST(ServiceRestart, ChangedShardCountStartsFreshInsteadOfResuming) {
  // The chain name embeds the shard count; a restart with a different
  // --shards must not adopt a mispartitioned cut.
  Fixture fx;
  const auto plane =
      std::make_shared<FlatClassifier>(FlatClassifier::compile(*fx.classifier));
  const auto flows = make_stream(9, 1200);
  ScratchDir dir("spoofscope_serve_rescale");

  ShardConfig cfg = shard_config(0, dir.str());
  {
    Shard shard(plane, cfg);
    shard.start();
    ASSERT_TRUE(feed(shard, lane_batches(flows, 0, 256)));
    EXPECT_TRUE(fs::exists(cfg.checkpoint_base));
  }
  ShardConfig rescaled = cfg;
  rescaled.shard_count = kShards + 1;
  rescaled.checkpoint_base =
      state::shard_checkpoint_base(dir.str(), 0, kShards + 1);
  Shard shard(plane, rescaled);
  EXPECT_EQ(shard.resume(), 0u) << "adopted a chain from a different partition";
}

}  // namespace
}  // namespace spoofscope::service
