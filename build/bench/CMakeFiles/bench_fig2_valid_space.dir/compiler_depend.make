# Empty compiler generated dependencies file for bench_fig2_valid_space.
# This may be replaced when dependencies are built.
