# Empty dependencies file for bench_fig5_venn.
# This may be replaced when dependencies are built.
