// Transport protocol numbers and the well-known ports the paper's
// application-mix analysis keys on (Fig 9).
#pragma once

#include <cstdint>
#include <string>

namespace spoofscope::net {

/// IANA protocol numbers for the protocols that appear at the vantage point.
enum class Proto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Short protocol name ("TCP"/"UDP"/"ICMP"/"P<number>").
std::string proto_name(Proto p);

/// Well-known ports called out in the paper's Fig 9 breakdown.
namespace ports {
inline constexpr std::uint16_t kHttp = 80;
inline constexpr std::uint16_t kHttps = 443;
inline constexpr std::uint16_t kNtp = 123;
inline constexpr std::uint16_t kSteam = 27015;    // online gaming, Fig 9
inline constexpr std::uint16_t kItalkGame = 10100; // appears in Fig 9 mix
inline constexpr std::uint16_t kCod = 28960;       // Call of Duty, Fig 9 mix
inline constexpr std::uint16_t kDns = 53;
}  // namespace ports

/// Service name for the Fig 9 port buckets; returns "other" for anything
/// not individually tracked.
std::string port_service_name(std::uint16_t port);

/// True if the port is one of the six individually tracked Fig 9 ports.
bool is_tracked_port(std::uint16_t port);

}  // namespace spoofscope::net
