#include "data/whois.hpp"

#include "util/rng.hpp"

namespace spoofscope::data {

WhoisRegistry::WhoisRegistry(
    std::vector<ProviderAssignedRange> pa,
    std::vector<std::pair<net::Asn, net::Asn>> documented_links)
    : pa_(std::move(pa)), links_(std::move(documented_links)) {
  for (std::size_t i = 0; i < pa_.size(); ++i) {
    pa_index_[pa_[i].customer].push_back(i);
  }
  for (const auto& [a, b] : links_) {
    partner_index_[a].push_back(b);
    partner_index_[b].push_back(a);
  }
}

std::vector<net::Prefix> WhoisRegistry::provider_assigned_of(net::Asn member) const {
  std::vector<net::Prefix> out;
  const auto it = pa_index_.find(member);
  if (it == pa_index_.end()) return out;
  for (const std::size_t i : it->second) out.push_back(pa_[i].range);
  return out;
}

std::vector<net::Asn> WhoisRegistry::documented_partners(net::Asn member) const {
  const auto it = partner_index_.find(member);
  return it == partner_index_.end() ? std::vector<net::Asn>{} : it->second;
}

std::vector<net::Prefix> WhoisRegistry::recoverable_ranges(
    const topo::Topology& topo, net::Asn member) const {
  std::vector<net::Prefix> out = provider_assigned_of(member);
  for (const net::Asn partner : documented_partners(member)) {
    if (const auto* info = topo.find(partner)) {
      out.insert(out.end(), info->prefixes.begin(), info->prefixes.end());
    }
  }
  return out;
}

WhoisRegistry build_whois(const topo::Topology& topo, const WhoisParams& params,
                          std::uint64_t seed) {
  util::Rng rng(seed);

  std::vector<ProviderAssignedRange> pa;
  for (const auto& as : topo.ases()) {
    if (as.type == topo::BusinessType::kNsp) continue;
    const auto providers = topo.providers_of(as.asn);
    if (providers.size() < 2) continue;
    if (!rng.chance(params.provider_assigned_prob)) continue;

    const net::Asn provider = providers[rng.index(providers.size())];
    const auto* pinfo = topo.find(provider);
    const std::size_t announced = topo::announced_prefix_count(*pinfo);
    if (announced == 0) continue;
    const net::Prefix& base = pinfo->prefixes[rng.index(announced)];
    net::Prefix range = base;
    if (base.length() < 24) {
      const std::uint32_t slots = std::uint32_t(1) << (24 - base.length());
      range = net::Prefix(
          net::Ipv4Addr(base.first() + (rng.uniform_u32(0, slots - 1) << 8)), 24);
    }
    pa.push_back({as.asn, provider, range});
  }

  std::vector<std::pair<net::Asn, net::Asn>> documented;
  for (const auto& l : topo.links()) {
    if (l.visible_in_bgp) continue;
    if (rng.chance(params.reveal_invisible_link_prob)) {
      documented.emplace_back(l.from, l.to);
    }
  }
  return WhoisRegistry(std::move(pa), std::move(documented));
}

}  // namespace spoofscope::data
