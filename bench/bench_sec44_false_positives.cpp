// Sec 4.4: hunting false positives — investigate the members with the
// highest Invalid shares via WHOIS/looking-glass records, whitelist the
// recovered ranges, re-classify.
#include "bench/common.hpp"

#include "classify/fp_hunter.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_FalsePositiveHunt(benchmark::State& state) {
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  for (auto _ : state) {
    state.PauseTiming();
    auto params = bench::bench_params();
    auto fresh = scenario::build_scenario(params);
    auto labels = fresh->labels();
    state.ResumeTiming();
    auto report = classify::hunt_false_positives(
        fresh->classifier(), idx, fresh->trace().flows, labels, fresh->whois(),
        fresh->topology());
    benchmark::DoNotOptimize(report);
  }
  (void)w;
}
BENCHMARK(BM_FalsePositiveHunt)->Unit(benchmark::kMillisecond)->Iterations(1);

void print_reproduction() {
  bench::print_header(
      "Sec 4.4 (hunting false positives)",
      "top-40 members investigated; 15 missing links from WHOIS, 1 from "
      "looking glasses; provider-assigned space and tunnels; whitelisting "
      "shrinks Invalid by 59.9% of bytes / 40% of packets");
  auto params = bench::bench_params();
  auto fresh = scenario::build_scenario(params);
  auto labels = fresh->labels();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  const auto report = classify::hunt_false_positives(
      fresh->classifier(), idx, fresh->trace().flows, labels, fresh->whois(),
      fresh->topology());

  std::cout << "members investigated: " << report.members_investigated
            << " (paper: top 40)\n"
            << "members with recoverable WHOIS records: "
            << report.members_with_recovered_ranges << "\n"
            << "address ranges whitelisted: " << report.ranges_whitelisted
            << "\n"
            << "documented-but-invisible links in the registry: "
            << fresh->whois().documented_link_count() << " (paper found 15+1)\n"
            << "Invalid bytes: " << util::human_bytes(report.invalid_bytes_before)
            << " -> " << util::human_bytes(report.invalid_bytes_after)
            << " (reduced " << util::percent(report.bytes_reduction())
            << "; paper 59.9%)\n"
            << "Invalid packets: "
            << util::human_count(report.invalid_packets_before) << " -> "
            << util::human_count(report.invalid_packets_after) << " (reduced "
            << util::percent(report.packets_reduction()) << "; paper 40%)\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
