# Empty dependencies file for spoofscope_ixp.
# This may be replaced when dependencies are built.
