#include "traffic/workload.hpp"

#include <algorithm>
#include <numeric>

#include "traffic/attacks.hpp"
#include "traffic/context.hpp"
#include "traffic/regular.hpp"
#include "traffic/stray.hpp"
#include "util/log.hpp"

namespace spoofscope::traffic {

bool is_intentionally_spoofed(Component c) {
  switch (c) {
    case Component::kRandomSpoof:
    case Component::kNtpTrigger:
    case Component::kSteamFlood:
    case Component::kReflectionOnRouter:
    case Component::kBackgroundNoise:
      return true;
    default:
      return false;
  }
}

bool is_stray(Component c) {
  return c == Component::kNatLeak || c == Component::kRouterStray;
}

std::string component_name(Component c) {
  switch (c) {
    case Component::kRegular: return "regular";
    case Component::kNatLeak: return "nat-leak";
    case Component::kBackgroundNoise: return "background-noise";
    case Component::kRandomSpoof: return "random-spoof";
    case Component::kNtpTrigger: return "ntp-trigger";
    case Component::kNtpResponse: return "ntp-response";
    case Component::kSteamFlood: return "steam-flood";
    case Component::kRouterStray: return "router-stray";
    case Component::kReflectionOnRouter: return "reflection-on-router";
    case Component::kUncommonSetup: return "uncommon-setup";
  }
  return "?";
}

Workload generate_workload(const topo::Topology& topo, const ixp::Ixp& ixp,
                           const data::WhoisRegistry& whois,
                           const WorkloadParams& params, std::uint64_t seed) {
  TrafficContext ctx(topo, ixp, params, seed);
  util::Rng rng(seed);

  Workload w;
  w.trace.meta.sampling_rate = ixp.sampling_rate();
  w.trace.meta.window_seconds = params.window_seconds;
  w.trace.meta.seed = seed;

  auto& flows = w.trace.flows;
  auto& comps = w.components;
  flows.reserve(params.regular_flows + params.nat_leak_flows +
                params.background_noise_flows + params.router_stray_flows +
                params.random_spoof_events * params.flood_flows_mean);
  comps.reserve(flows.capacity());

  util::Rng r_regular = rng.fork(1);
  generate_regular(ctx, r_regular, flows, comps, w.summary);
  util::Rng r_nat = rng.fork(2);
  generate_nat_leaks(ctx, r_nat, flows, comps, w.summary);
  util::Rng r_noise = rng.fork(3);
  generate_background_noise(ctx, r_noise, flows, comps, w.summary);
  util::Rng r_flood = rng.fork(4);
  generate_random_spoof_floods(ctx, r_flood, flows, comps, w.summary);
  util::Rng r_ntp = rng.fork(5);
  generate_ntp_amplification(ctx, r_ntp, flows, comps, w.summary);
  util::Rng r_steam = rng.fork(6);
  generate_steam_floods(ctx, r_steam, flows, comps, w.summary);
  util::Rng r_router = rng.fork(7);
  generate_router_strays(ctx, r_router, flows, comps, w.summary);
  util::Rng r_uncommon = rng.fork(8);
  generate_uncommon_setups(ctx, whois, r_uncommon, flows, comps, w.summary);

  // Co-sort flows and their ground-truth components by timestamp.
  std::vector<std::uint32_t> order(flows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&flows](std::uint32_t a, std::uint32_t b) {
                     return flows[a].ts < flows[b].ts;
                   });
  std::vector<net::FlowRecord> sorted_flows;
  std::vector<Component> sorted_comps;
  sorted_flows.reserve(flows.size());
  sorted_comps.reserve(flows.size());
  for (const std::uint32_t i : order) {
    sorted_flows.push_back(flows[i]);
    sorted_comps.push_back(comps[i]);
  }
  flows = std::move(sorted_flows);
  comps = std::move(sorted_comps);

  util::log_info() << "workload: " << flows.size() << " sampled flows ("
                   << w.summary.regular << " regular, "
                   << w.summary.ntp_trigger << " ntp triggers, "
                   << w.summary.random_spoof << " flood)";
  return w;
}

}  // namespace spoofscope::traffic
