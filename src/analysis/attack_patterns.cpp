#include "analysis/attack_patterns.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "net/protocols.hpp"
#include "util/stats.hpp"

namespace spoofscope::analysis {

SrcRatioHistogram src_per_dst_ratio(std::span<const net::FlowRecord> flows,
                                    std::span<const Label> labels,
                                    std::size_t space_idx,
                                    std::uint32_t min_sampled_packets,
                                    std::size_t bins) {
  struct DstInfo {
    std::uint64_t packets = 0;
    std::unordered_set<std::uint32_t> sources;
  };
  std::array<std::unordered_map<std::uint32_t, DstInfo>, kNumClasses> by_dst;

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto c = static_cast<int>(classify::Classifier::unpack(labels[i], space_idx));
    if (c == static_cast<int>(TrafficClass::kValid)) continue;
    auto& info = by_dst[c][flows[i].dst.value()];
    info.packets += flows[i].packets;
    info.sources.insert(flows[i].src.value());
  }

  SrcRatioHistogram out;
  out.bins = bins;
  for (int c = 0; c < kNumClasses; ++c) {
    out.fractions[c].assign(bins, 0.0);
    std::size_t qualifying = 0;
    for (const auto& [dst, info] : by_dst[c]) {
      if (info.packets < min_sampled_packets) continue;
      ++qualifying;
      const double ratio = static_cast<double>(info.sources.size()) /
                           static_cast<double>(info.packets);
      const std::size_t bin = std::min(
          bins - 1, static_cast<std::size_t>(ratio * static_cast<double>(bins)));
      out.fractions[c][bin] += 1.0;
    }
    out.destinations[c] = qualifying;
    if (qualifying > 0) {
      for (auto& f : out.fractions[c]) f /= static_cast<double>(qualifying);
    }
  }
  return out;
}

NtpAnalysis analyze_ntp(std::span<const net::FlowRecord> flows,
                        std::span<const Label> labels, std::size_t space_idx,
                        std::size_t top_victims) {
  NtpAnalysis out;

  struct VictimAgg {
    std::uint64_t packets = 0;
    std::map<std::uint32_t, std::uint64_t> per_amplifier;
  };
  std::unordered_map<std::uint32_t, VictimAgg> victims;
  std::map<Asn, std::uint64_t> member_packets;
  std::set<std::uint32_t> amplifiers;
  double invalid_udp = 0, invalid_udp_ntp = 0;

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    if (classify::Classifier::unpack(labels[i], space_idx) !=
        TrafficClass::kInvalid) {
      continue;
    }
    if (f.proto != net::Proto::kUdp) continue;
    invalid_udp += f.packets;
    if (f.dport != net::ports::kNtp) continue;
    invalid_udp_ntp += f.packets;

    out.trigger_packets += f.packets;
    auto& v = victims[f.src.value()];
    v.packets += f.packets;
    v.per_amplifier[f.dst.value()] += f.packets;
    member_packets[f.member_in] += f.packets;
    amplifiers.insert(f.dst.value());
  }

  out.distinct_victims = victims.size();
  out.contributing_members = member_packets.size();
  out.amplifiers_contacted = amplifiers.size();
  out.invalid_udp_ntp_share = invalid_udp > 0 ? invalid_udp_ntp / invalid_udp : 0.0;

  if (out.trigger_packets > 0 && !member_packets.empty()) {
    std::vector<std::uint64_t> per_member;
    per_member.reserve(member_packets.size());
    for (const auto& [asn, pkts] : member_packets) per_member.push_back(pkts);
    std::sort(per_member.rbegin(), per_member.rend());
    out.top_member_share =
        static_cast<double>(per_member[0]) / out.trigger_packets;
    std::uint64_t top5 = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(5, per_member.size()); ++i) {
      top5 += per_member[i];
    }
    out.top5_member_share = static_cast<double>(top5) / out.trigger_packets;
  }

  std::vector<std::pair<std::uint64_t, std::uint32_t>> ranked;
  for (const auto& [addr, agg] : victims) ranked.emplace_back(agg.packets, addr);
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < std::min(top_victims, ranked.size()); ++i) {
    const auto& agg = victims.at(ranked[i].second);
    NtpVictim v;
    v.victim = net::Ipv4Addr(ranked[i].second);
    v.trigger_packets = agg.packets;
    v.amplifiers = agg.per_amplifier.size();
    for (const auto& [amp, pkts] : agg.per_amplifier) {
      v.packets_per_amplifier.push_back(pkts);
    }
    std::sort(v.packets_per_amplifier.rbegin(), v.packets_per_amplifier.rend());
    std::vector<double> d(v.packets_per_amplifier.begin(),
                          v.packets_per_amplifier.end());
    v.concentration = util::gini(d);
    out.top_victims.push_back(std::move(v));
  }
  return out;
}

double AmplificationTimeseries::amplification_factor() const {
  double to = 0, from = 0;
  for (const double b : bytes_to_amplifier) to += b;
  for (const double b : bytes_from_amplifier) from += b;
  return to > 0 ? from / to : 0.0;
}

double AmplificationTimeseries::packet_ratio() const {
  double to = 0, from = 0;
  for (const double p : packets_to_amplifier) to += p;
  for (const double p : packets_from_amplifier) from += p;
  return to > 0 ? from / to : 0.0;
}

AmplificationTimeseries amplification_effect(
    std::span<const net::FlowRecord> flows, std::span<const Label> labels,
    std::size_t space_idx, std::uint32_t window_seconds,
    std::uint32_t bin_seconds) {
  AmplificationTimeseries out;
  out.bin_seconds = bin_seconds;
  const std::size_t bins = (window_seconds + bin_seconds - 1) / bin_seconds;
  out.packets_to_amplifier.assign(bins, 0.0);
  out.packets_from_amplifier.assign(bins, 0.0);
  out.bytes_to_amplifier.assign(bins, 0.0);
  out.bytes_from_amplifier.assign(bins, 0.0);

  // Pass 1: identify (victim, amplifier) pairs for which *both* the
  // Invalid NTP trigger and the amplifier's response cross the fabric —
  // the paper isolates exactly these pairs to measure the effect.
  std::unordered_set<std::uint64_t> trigger_pairs;
  std::unordered_set<std::uint64_t> response_pairs;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    if (f.proto != net::Proto::kUdp) continue;
    if (f.dport == net::ports::kNtp &&
        classify::Classifier::unpack(labels[i], space_idx) ==
            TrafficClass::kInvalid) {
      trigger_pairs.insert((std::uint64_t(f.src.value()) << 32) | f.dst.value());
    } else if (f.sport == net::ports::kNtp) {
      response_pairs.insert((std::uint64_t(f.dst.value()) << 32) | f.src.value());
    }
  }
  std::unordered_set<std::uint64_t> pairs;
  for (const std::uint64_t p : trigger_pairs) {
    if (response_pairs.count(p)) pairs.insert(p);
  }

  // Pass 2: accumulate both directions for pairs seen as triggers.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    if (f.proto != net::Proto::kUdp) continue;
    const std::size_t bin = std::min<std::size_t>(f.ts / bin_seconds, bins - 1);
    if (f.dport == net::ports::kNtp &&
        pairs.count((std::uint64_t(f.src.value()) << 32) | f.dst.value())) {
      out.packets_to_amplifier[bin] += f.packets;
      out.bytes_to_amplifier[bin] += static_cast<double>(f.bytes);
    } else if (f.sport == net::ports::kNtp &&
               pairs.count((std::uint64_t(f.dst.value()) << 32) |
                           f.src.value())) {
      out.packets_from_amplifier[bin] += f.packets;
      out.bytes_from_amplifier[bin] += static_cast<double>(f.bytes);
    }
  }
  return out;
}

std::size_t amplifier_scan_overlap(std::span<const net::Ipv4Addr> contacted,
                                   std::span<const net::Ipv4Addr> scan) {
  std::unordered_set<std::uint32_t> scanned;
  scanned.reserve(scan.size());
  for (const auto a : scan) scanned.insert(a.value());
  std::size_t overlap = 0;
  for (const auto a : contacted) overlap += scanned.count(a.value());
  return overlap;
}

}  // namespace spoofscope::analysis
