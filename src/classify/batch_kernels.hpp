// Batch-kernel selection for the flat classification plane.
//
// The DIR-24-8 base table is gather-friendly: classifying a batch is one
// 32-bit gather per src address plus one 16-bit record gather per routed
// row, so the hot path vectorizes cleanly. Three kernels implement the
// same contract behind FlatClassifier::classify_batch:
//
//   kScalar — the portable prefetched loop (always compiled in),
//   kAvx2   — 8-wide AVX2 gathers (x86-64, runtime-detected),
//   kNeon   — 4-wide NEON lanes (aarch64).
//
// Every kernel is bit-identical to the scalar oracle by construction: the
// vector lanes only resolve the pure-table fast path (base entry + full
// membership bits), and any row touching the overflow or interval-set
// fallback lanes is compacted into a pending list and re-run through the
// exact scalar slow lane. classify_batch_oracle_test and
// classify_simd_kernel_test enforce this differentially.
//
// Compile-time availability is controlled by feature macros so the tree
// builds on targets with neither AVX2 nor NEON (and with
// -DSPOOFSCOPE_DISABLE_SIMD=ON, which forces the portable build on any
// host — tools/check.sh uses this as the non-x86 compile guard).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#if !defined(SPOOFSCOPE_DISABLE_SIMD)
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SPOOFSCOPE_KERNEL_AVX2 1
#endif
#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define SPOOFSCOPE_KERNEL_NEON 1
#endif
#endif
#if !defined(SPOOFSCOPE_KERNEL_AVX2)
#define SPOOFSCOPE_KERNEL_AVX2 0
#endif
#if !defined(SPOOFSCOPE_KERNEL_NEON)
#define SPOOFSCOPE_KERNEL_NEON 0
#endif

namespace spoofscope::classify {

/// Which batch kernel classify_batch runs. kAuto resolves at runtime to
/// the best kernel this build + CPU supports (the SPOOFSCOPE_SIMD
/// environment variable, when set, overrides what kAuto picks — the
/// sanitizer sweeps in tools/check.sh use it to pin kernels without
/// plumbing flags through every test binary).
enum class SimdKernel : std::uint8_t {
  kAuto = 0,
  kScalar = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// "auto" | "scalar" | "avx2" | "neon".
const char* simd_kernel_name(SimdKernel kernel);

/// Inverse of simd_kernel_name; nullopt on unknown spellings.
std::optional<SimdKernel> parse_simd_kernel(std::string_view name);

/// True when the kernel's code is present in this build (feature macros).
bool simd_kernel_compiled(SimdKernel kernel);

/// True when the kernel can run here: compiled in AND the CPU supports
/// it (AVX2 is runtime-detected; scalar and kAuto are always usable).
bool simd_kernel_usable(SimdKernel kernel);

/// The concrete kernels usable on this host, scalar first — what the
/// differential suites and per-kernel benches iterate over. Never empty.
std::vector<SimdKernel> usable_simd_kernels();

/// Maps a requested kernel to the concrete one to run. kAuto picks the
/// best usable kernel (honouring SPOOFSCOPE_SIMD); an explicit request
/// for an unusable kernel (or an unparseable SPOOFSCOPE_SIMD value)
/// throws std::runtime_error — silently falling back would defeat the
/// differential suites that pin kernels.
SimdKernel resolve_simd_kernel(SimdKernel requested);

}  // namespace spoofscope::classify
