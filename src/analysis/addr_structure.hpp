// Fig 10: spatial structure of source and destination addresses — sampled
// packets per /8 block, per class.
#pragma once

#include <array>
#include <span>
#include <string>

#include "analysis/member_stats.hpp"

namespace spoofscope::analysis {

/// Packets binned by the high-order /8 of the address.
struct AddressStructure {
  /// src[class][slash8] and dst[class][slash8], sampled packets.
  std::array<std::array<double, 256>, kNumClasses> src{};
  std::array<std::array<double, 256>, kNumClasses> dst{};

  /// Fraction of the class's packets in a given source /8.
  double src_fraction(TrafficClass cls, int slash8) const;

  /// Herfindahl-style concentration of the class's source /8 mass
  /// (1/256 = perfectly uniform, -> 1 = single /8).
  double src_concentration(TrafficClass cls) const;

  double dst_concentration(TrafficClass cls) const;
};

AddressStructure address_structure(std::span<const net::FlowRecord> flows,
                                   std::span<const Label> labels,
                                   std::size_t space_idx);

/// Compact rendering: the top /8 peaks per class.
std::string format_address_structure(const AddressStructure& a, int top_n = 4);

}  // namespace spoofscope::analysis
