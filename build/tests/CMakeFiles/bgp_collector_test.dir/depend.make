# Empty dependencies file for bgp_collector_test.
# This may be replaced when dependencies are built.
