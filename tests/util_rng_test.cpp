#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace spoofscope::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto x0 = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), x0);
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64SingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(Rng, UniformU64FullRangeDoesNotHang) {
  Rng rng(3);
  (void)rng.uniform_u64(0, ~0ULL);
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, ParetoLowerBound) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(5);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(13), 13u);
}

TEST(Zipf, SingleElementAlwaysZero) {
  Rng rng(41);
  ZipfDistribution z(1, 1.0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(z(rng), 0u);
}

TEST(Zipf, RankOrderingOfFrequencies) {
  Rng rng(43);
  ZipfDistribution z(10, 1.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z(rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Zipf, ZeroExponentIsUniform) {
  Rng rng(47);
  ZipfDistribution z(5, 0.0);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z(rng)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z(100, 1.2);
  double sum = 0;
  for (std::size_t i = 0; i < z.size(); ++i) sum += z.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RejectsEmpty) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(Discrete, MatchesWeights) {
  Rng rng(53);
  const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  DiscreteDistribution d(w);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[d(rng)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.01);
}

TEST(Discrete, RejectsAllZero) {
  const std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(DiscreteDistribution{w}, std::invalid_argument);
}

TEST(Discrete, RejectsNegative) {
  const std::vector<double> w{1.0, -0.5};
  EXPECT_THROW(DiscreteDistribution{w}, std::invalid_argument);
}

}  // namespace
}  // namespace spoofscope::util
