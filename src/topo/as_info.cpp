#include "topo/as_info.hpp"

namespace spoofscope::topo {

std::string business_name(BusinessType t) {
  switch (t) {
    case BusinessType::kNsp: return "NSP";
    case BusinessType::kIsp: return "ISP";
    case BusinessType::kHosting: return "Hosting";
    case BusinessType::kContent: return "Content";
    case BusinessType::kOther: return "Other";
  }
  return "?";
}

std::size_t announced_prefix_count(const AsInfo& info) {
  if (info.prefixes.empty()) return 0;
  const double f = info.announce_fraction < 0.0   ? 0.0
                   : info.announce_fraction > 1.0 ? 1.0
                                                  : info.announce_fraction;
  const auto n = static_cast<std::size_t>(
      f * static_cast<double>(info.prefixes.size()) + 0.999999);
  return n > info.prefixes.size() ? info.prefixes.size() : n;
}

std::string rel_name(RelType t) {
  switch (t) {
    case RelType::kCustomerToProvider: return "c2p";
    case RelType::kPeerToPeer: return "p2p";
    case RelType::kSibling: return "sibling";
  }
  return "?";
}

}  // namespace spoofscope::topo
