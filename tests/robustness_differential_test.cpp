// Differential robustness suite: corrupt an artifact with a seeded
// injector, ingest it under ErrorPolicy::kSkip, and prove the result is
// exactly the clean-run result restricted to the surviving records —
// labels, aggregates and streaming alerts, on both classification
// engines, across thread counts. Strict-mode reads of the same corrupted
// bytes must still throw.
//
// The reference side of each comparison is derived independently of the
// skip-mode code path: binary-trace survivors are matched as a
// subsequence of the clean flows by record equality, and text-format
// survivors are re-derived with the strict single-record parsers.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/mrt_lite.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/pipeline.hpp"
#include "classify/streaming.hpp"
#include "corruption.hpp"
#include "data/rpsl.hpp"
#include "net/trace.hpp"
#include "scenario/scenario.hpp"
#include "util/error_policy.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope {
namespace {

// Trace format v2 framing (see net/trace.cpp): 32-byte header body +
// 4-byte checksum, then 36-byte record payloads + 4-byte checksums.
constexpr std::size_t kHeaderSize = 36;
constexpr std::size_t kRecordSize = 40;

constexpr std::uint64_t kSeeds[] = {11, 22, 33};

enum class Kind { kTruncate, kBitFlip, kRecordDrop, kSplice };
constexpr Kind kKinds[] = {Kind::kTruncate, Kind::kBitFlip, Kind::kRecordDrop,
                           Kind::kSplice};

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kTruncate:
      return "truncate";
    case Kind::kBitFlip:
      return "bit-flip";
    case Kind::kRecordDrop:
      return "record-drop";
    case Kind::kSplice:
      return "garbage-splice";
  }
  return "?";
}

/// Damage is confined to the record region (offset >= kHeaderSize): the
/// strict-throw guarantee is about record integrity, and a damaged header
/// legitimately yields zero survivors (covered separately).
std::string corrupt(const std::string& bytes, Kind k, util::Rng& rng) {
  switch (k) {
    case Kind::kTruncate:
      return testing::truncate_bytes(bytes, rng, kHeaderSize);
    case Kind::kBitFlip:
      return testing::flip_bits(bytes, rng, 3, kHeaderSize);
    case Kind::kRecordDrop:
      return testing::drop_fixed_record(bytes, rng, kHeaderSize, kRecordSize);
    case Kind::kSplice:
      return testing::splice_garbage(bytes, rng, kHeaderSize, 64);
  }
  return bytes;
}

/// Greedy left-to-right match of `survivors` as a subsequence of `clean`;
/// returns the matched clean indices, or nullopt if any survivor cannot
/// be matched in order (i.e. skip mode invented or reordered a record).
std::optional<std::vector<std::size_t>> match_subsequence(
    const std::vector<net::FlowRecord>& clean,
    const std::vector<net::FlowRecord>& survivors) {
  std::vector<std::size_t> idx;
  idx.reserve(survivors.size());
  std::size_t j = 0;
  for (const auto& s : survivors) {
    while (j < clean.size() && !(clean[j] == s)) ++j;
    if (j == clean.size()) return std::nullopt;
    idx.push_back(j++);
  }
  return idx;
}

void expect_aggregate_eq(const classify::Aggregate& a,
                         const classify::Aggregate& b) {
  EXPECT_EQ(a.total_flows, b.total_flows);
  EXPECT_EQ(a.total_packets, b.total_packets);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  ASSERT_EQ(a.totals.size(), b.totals.size());
  for (std::size_t s = 0; s < a.totals.size(); ++s) {
    for (int c = 0; c < classify::kNumClasses; ++c) {
      EXPECT_EQ(a.totals[s][c].flows, b.totals[s][c].flows) << s << "/" << c;
      EXPECT_EQ(a.totals[s][c].packets, b.totals[s][c].packets);
      EXPECT_EQ(a.totals[s][c].bytes, b.totals[s][c].bytes);
      EXPECT_EQ(a.totals[s][c].members, b.totals[s][c].members);
    }
  }
}

/// One small scenario shared by every case: the build dominates suite
/// runtime. The trace is capped so per-case classification stays cheap.
struct SharedWorld {
  SharedWorld() {
    auto params = scenario::ScenarioParams::small();
    params.seed = 7;
    world = scenario::build_scenario(params);
    trace.meta = world->trace().meta;
    const auto& flows = world->trace().flows;
    trace.flows.assign(flows.begin(),
                       flows.begin() +
                           std::min<std::size_t>(flows.size(), 8000));
    std::ostringstream os;
    net::write_trace(os, trace);
    bytes = os.str();
    flat = std::make_unique<classify::FlatClassifier>(
        classify::FlatClassifier::compile(world->classifier()));
    clean_labels = classify::classify_trace(world->classifier(), trace.flows);
  }

  std::unique_ptr<scenario::Scenario> world;
  net::Trace trace;
  std::string bytes;
  std::unique_ptr<classify::FlatClassifier> flat;
  std::vector<classify::Label> clean_labels;
};

SharedWorld& shared() {
  static SharedWorld* w = new SharedWorld();
  return *w;
}

TEST(RobustnessDifferential, TraceBytesRoundTripCleanly) {
  auto& w = shared();
  ASSERT_EQ(w.bytes.size(), kHeaderSize + kRecordSize * w.trace.flows.size());
  std::istringstream in(w.bytes);
  util::IngestStats stats;
  const auto got = net::read_trace(in, util::ErrorPolicy::kSkip, &stats);
  EXPECT_EQ(got.flows, w.trace.flows);
  EXPECT_TRUE(stats.clean()) << stats.summary();
}

TEST(RobustnessDifferential, StrictModeThrowsOnEveryCorruptionKind) {
  auto& w = shared();
  for (const std::uint64_t seed : kSeeds) {
    for (const Kind kind : kKinds) {
      SCOPED_TRACE(std::string(kind_name(kind)) + " seed " +
                   std::to_string(seed));
      util::Rng rng(seed);
      const std::string bad = corrupt(w.bytes, kind, rng);
      std::istringstream in(bad);
      EXPECT_THROW(net::read_trace(in), std::runtime_error);
    }
  }
}

TEST(RobustnessDifferential, SkipModeLabelsMatchCleanRestriction) {
  auto& w = shared();
  util::ThreadPool pool(0);  // hardware lanes: exercises the parallel path
  const std::size_t spaces = w.world->classifier().space_count();
  for (const std::uint64_t seed : kSeeds) {
    for (const Kind kind : kKinds) {
      SCOPED_TRACE(std::string(kind_name(kind)) + " seed " +
                   std::to_string(seed));
      util::Rng rng(seed);
      const std::string bad = corrupt(w.bytes, kind, rng);

      util::IngestStats stats;
      std::istringstream in(bad);
      const auto got = net::read_trace(in, util::ErrorPolicy::kSkip, &stats);
      EXPECT_EQ(stats.records_ok, got.flows.size());
      EXPECT_FALSE(stats.clean());
      EXPECT_LT(got.flows.size(), w.trace.flows.size() + 1);

      // Survivors must be an exact in-order subset of the clean records:
      // checksums guarantee skip mode never invents or mangles a flow.
      const auto idx = match_subsequence(w.trace.flows, got.flows);
      ASSERT_TRUE(idx.has_value());

      std::vector<classify::Label> expected;
      expected.reserve(idx->size());
      for (const std::size_t i : *idx) expected.push_back(w.clean_labels[i]);

      // Fresh classification of the survivors on both engines, sequential
      // and parallel, must equal the clean labels restricted to them.
      const auto trie_seq =
          classify::classify_trace(w.world->classifier(), got.flows);
      const auto trie_par =
          classify::classify_trace(w.world->classifier(), got.flows, pool);
      const auto flat_seq = classify::classify_trace(*w.flat, got.flows);
      const auto flat_par = classify::classify_trace(*w.flat, got.flows, pool);
      EXPECT_EQ(trie_seq, expected);
      EXPECT_EQ(trie_par, expected);
      EXPECT_EQ(flat_seq, expected);
      EXPECT_EQ(flat_par, expected);

      // Aggregates over the survivors equal the aggregate of the
      // restricted clean run, sequential vs parallel included.
      std::vector<net::FlowRecord> restricted;
      restricted.reserve(idx->size());
      for (const std::size_t i : *idx) restricted.push_back(w.trace.flows[i]);
      const auto agg_survivors =
          classify::aggregate_classes(spaces, got.flows, trie_seq, {}, pool);
      const auto agg_clean =
          classify::aggregate_classes(spaces, restricted, expected);
      expect_aggregate_eq(agg_survivors, agg_clean);
    }
  }
}

TEST(RobustnessDifferential, SkipModeAlertsMatchCleanRestriction) {
  auto& w = shared();
  const std::size_t space =
      scenario::Scenario::space_index(inference::Method::kFullConeOrg);
  classify::StreamingParams sp;
  sp.min_spoofed_packets = 30;
  sp.min_share = 0.02;
  for (const std::uint64_t seed : kSeeds) {
    for (const Kind kind : kKinds) {
      SCOPED_TRACE(std::string(kind_name(kind)) + " seed " +
                   std::to_string(seed));
      util::Rng rng(seed);
      const std::string bad = corrupt(w.bytes, kind, rng);
      util::IngestStats stats;
      std::istringstream in(bad);
      const auto got = net::read_trace(in, util::ErrorPolicy::kSkip, &stats);
      const auto idx = match_subsequence(w.trace.flows, got.flows);
      ASSERT_TRUE(idx.has_value());
      std::vector<net::FlowRecord> restricted;
      for (const std::size_t i : *idx) restricted.push_back(w.trace.flows[i]);
      ASSERT_EQ(restricted, got.flows);

      // Clean restriction through the trie engine vs survivors through
      // the flat engine: identical alert streams.
      classify::StreamingDetector trie(w.world->classifier(), space, sp);
      classify::StreamingDetector flat(*w.flat, space, sp);
      EXPECT_EQ(trie.run(restricted), flat.run(got.flows));
    }
  }
}

TEST(RobustnessDifferential, DuplicatedRecordSurvivesBothCopiesInSkipMode) {
  // Record duplication is deliberately outside the subsequence
  // differential: both copies carry valid checksums, so skip mode keeps
  // both (flagging the count mismatch), and strict mode — which trusts
  // the declared count and ignores trailing bytes — returns the first
  // `declared` records without throwing.
  auto& w = shared();
  const std::size_t n = w.trace.flows.size();
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    util::Rng rng(seed);
    const std::string bad =
        testing::duplicate_fixed_record(w.bytes, rng, kHeaderSize, kRecordSize);
    util::Rng replay(seed);
    const std::size_t dup = replay.index(n);

    std::vector<net::FlowRecord> expected = w.trace.flows;
    expected.insert(expected.begin() + static_cast<std::ptrdiff_t>(dup),
                    w.trace.flows[dup]);

    util::IngestStats stats;
    std::istringstream in(bad);
    const auto got = net::read_trace(in, util::ErrorPolicy::kSkip, &stats);
    EXPECT_EQ(got.flows, expected);
    EXPECT_EQ(stats.records_ok, n + 1);
    EXPECT_EQ(stats.errors[static_cast<int>(util::ErrorKind::kCountMismatch)],
              1u);

    std::istringstream in2(bad);
    const auto strict = net::read_trace(in2);
    EXPECT_EQ(strict.flows.size(), n);
    EXPECT_EQ(strict.flows,
              std::vector<net::FlowRecord>(expected.begin(),
                                           expected.end() - 1));
  }
}

// ---------------------------------------------------------------- MRT

/// Deterministic MRT-lite text with interleaved comments and blanks.
std::string make_mrt_text(util::Rng& rng, std::size_t n) {
  std::ostringstream os;
  os << "# synthetic MRT-lite dump\n";
  for (std::size_t i = 0; i < n; ++i) {
    const net::Asn peer = 64500 + static_cast<net::Asn>(rng.index(200));
    const net::Asn origin = 64500 + static_cast<net::Asn>(rng.index(200));
    const net::Prefix prefix(
        net::Ipv4Addr::from_octets(
            static_cast<std::uint8_t>(10 + rng.index(200)),
            static_cast<std::uint8_t>(rng.index(256)), 0, 0),
        static_cast<std::uint8_t>(16 + rng.index(9)));
    const bgp::AsPath path{peer, 64500 + static_cast<net::Asn>(rng.index(200)),
                           origin};
    const auto ts = rng.uniform_u32(0, 1000000);
    if (rng.index(4) == 0) {
      bgp::UpdateMessage u;
      u.kind = rng.chance(0.5) ? bgp::UpdateMessage::Kind::kAnnounce
                               : bgp::UpdateMessage::Kind::kWithdraw;
      u.timestamp = ts;
      u.peer = peer;
      u.prefix = prefix;
      if (u.kind == bgp::UpdateMessage::Kind::kAnnounce) u.path = path;
      os << bgp::to_mrt_line(u) << '\n';
    } else {
      bgp::RibEntry e;
      e.timestamp = ts;
      e.peer = peer;
      e.prefix = prefix;
      e.path = path;
      os << bgp::to_mrt_line(e) << '\n';
    }
    if (rng.chance(0.05)) os << "\n";
    if (rng.chance(0.05)) os << "# comment " << i << "\n";
  }
  return os.str();
}

/// Independent reference for skip-mode MRT ingest: the grammar is
/// line-local, so the surviving records are exactly the lines the strict
/// single-line parser accepts.
std::vector<bgp::MrtRecord> mrt_reference(const std::string& text) {
  std::vector<bgp::MrtRecord> out;
  for (const auto& line : testing::split_lines(text)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    try {
      out.push_back(bgp::parse_mrt_line(trimmed));
    } catch (const std::runtime_error&) {
    }
  }
  return out;
}

TEST(RobustnessDifferential, MrtSkipModeMatchesPerLineStrictFilter) {
  using Corruptor = std::string (*)(const std::string&, util::Rng&);
  const std::pair<const char*, Corruptor> corruptors[] = {
      {"drop-line",
       [](const std::string& t, util::Rng& r) { return testing::drop_line(t, r); }},
      {"duplicate-line",
       [](const std::string& t, util::Rng& r) {
         return testing::duplicate_line(t, r);
       }},
      {"mutate-line",
       [](const std::string& t, util::Rng& r) {
         return testing::mutate_line(t, r, 4);
       }},
      {"truncate",
       [](const std::string& t, util::Rng& r) {
         return testing::truncate_text(t, r);
       }},
      {"splice-line",
       [](const std::string& t, util::Rng& r) {
         return testing::splice_garbage_line(t, r);
       }},
  };
  for (const std::uint64_t seed : kSeeds) {
    util::Rng gen(seed * 977);
    const std::string text = make_mrt_text(gen, 300);
    for (const auto& [name, fn] : corruptors) {
      SCOPED_TRACE(std::string(name) + " seed " + std::to_string(seed));
      util::Rng rng(seed);
      // A few independent rounds per corruptor compound the damage.
      std::string bad = text;
      for (int round = 0; round < 3; ++round) bad = fn(bad, rng);

      util::IngestStats stats;
      std::istringstream in(bad);
      const auto got = bgp::read_mrt(in, util::ErrorPolicy::kSkip, &stats);
      EXPECT_EQ(stats.records_ok, got.size());
      EXPECT_EQ(got, mrt_reference(bad));
    }
  }
}

// ---------------------------------------------------------------- RPSL

TEST(RobustnessDifferential, RpslObjectGranularCorruptions) {
  // Object-granular structural damage to the registry dump: survivors
  // are computable exactly from the clean database without replaying the
  // skip logic. (Line-level mutation semantics are covered by the
  // targeted cases below.)
  auto& w = shared();
  const std::string text = data::registry_to_rpsl(w.world->whois());
  std::istringstream clean_in(text);
  const auto clean = data::parse_rpsl(clean_in);
  const std::size_t clean_count = clean.routes.size() + clean.aut_nums.size();
  ASSERT_GT(clean_count, 10u);

  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    util::Rng rng(seed);

    // Garbage spliced between objects: the damaged region quarantines
    // itself and every real object survives.
    {
      std::string bad = text;
      for (int i = 0; i < 3; ++i) {
        // Insert a fake "object" of garbage lines followed by a blank.
        auto lines = testing::split_lines(bad);
        const std::size_t at = rng.index(lines.size() + 1);
        std::string garbage;
        for (std::size_t c = 0; c < 12; ++c) {
          garbage.push_back(
              static_cast<char>(rng.uniform_u32('a', 'z')));
        }
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                     {"import: not-an-as", garbage});
        bad = testing::join_lines(lines);
      }
      util::IngestStats stats;
      std::istringstream in(bad);
      const auto got = data::parse_rpsl(in, util::ErrorPolicy::kSkip, &stats);
      EXPECT_EQ(stats.records_ok, got.routes.size() + got.aut_nums.size());
      // Splices may land inside an object and poison it, but never more
      // than one object each; all other records are untouched.
      EXPECT_GE(got.routes.size() + got.aut_nums.size(), clean_count - 3);
      for (const auto& r : got.routes) {
        EXPECT_NE(std::find(clean.routes.begin(), clean.routes.end(), r),
                  clean.routes.end());
      }
      for (const auto& a : got.aut_nums) {
        EXPECT_NE(std::find(clean.aut_nums.begin(), clean.aut_nums.end(), a),
                  clean.aut_nums.end());
      }
    }

    // Truncation: every object that ends before the cut survives
    // unchanged; the cut object parses to whatever its surviving prefix
    // means under the strict parser (an independent single-object check).
    {
      const std::string bad = testing::truncate_text(text, rng);
      util::IngestStats stats;
      std::istringstream in(bad);
      const auto got = data::parse_rpsl(in, util::ErrorPolicy::kSkip, &stats);
      EXPECT_EQ(stats.records_ok, got.routes.size() + got.aut_nums.size());

      // Reference: strict-parse the truncated text, retrying with the
      // last (possibly damaged) object removed if it fails.
      auto lines = testing::split_lines(bad);
      for (;;) {
        std::istringstream ref_in(testing::join_lines(lines));
        try {
          const auto ref = data::parse_rpsl(ref_in);
          EXPECT_EQ(got.routes, ref.routes);
          EXPECT_EQ(got.aut_nums, ref.aut_nums);
          break;
        } catch (const std::runtime_error&) {
          // Drop trailing lines back to the previous blank separator and
          // strict-parse again: skip mode must have dropped exactly that
          // tail object too.
          while (!lines.empty() && !util::trim(lines.back()).empty()) {
            lines.pop_back();
          }
          if (!lines.empty()) lines.pop_back();
          ASSERT_FALSE(lines.empty() && !got.routes.empty());
        }
      }
    }
  }
}

TEST(RobustnessDifferential, RpslTargetedLineDamageSemantics) {
  const std::string text =
      "route:      20.0.50.0/24\n"
      "origin:     AS64500\n"
      "mnt-by:     AS64499-MNT\n"
      "\n"
      "aut-num:    AS64501\n"
      "import:     from AS64502 accept ANY\n"
      "export:     to AS64502 announce ANY\n"
      "\n"
      "route:      20.0.60.0/24\n"
      "origin:     AS64510\n"
      "\n";
  std::istringstream clean_in(text);
  const auto clean = data::parse_rpsl(clean_in);
  ASSERT_EQ(clean.routes.size(), 2u);
  ASSERT_EQ(clean.aut_nums.size(), 1u);

  const auto damage = [&](const std::string& from, const std::string& to) {
    std::string bad = text;
    const auto at = bad.find(from);
    EXPECT_NE(at, std::string::npos);
    bad.replace(at, from.size(), to);
    return bad;
  };

  {
    // Bad origin drops only its own route object.
    const std::string bad = damage("origin:     AS64500", "origin:     ASxx");
    std::istringstream strict_in(bad);
    EXPECT_THROW(data::parse_rpsl(strict_in), std::runtime_error);
    util::IngestStats stats;
    std::istringstream in(bad);
    const auto got = data::parse_rpsl(in, util::ErrorPolicy::kSkip, &stats);
    ASSERT_EQ(got.routes.size(), 1u);
    EXPECT_EQ(got.routes[0], clean.routes[1]);
    EXPECT_EQ(got.aut_nums, clean.aut_nums);
    EXPECT_EQ(stats.records_skipped, 1u);
  }
  {
    // Orphan import (aut-num header destroyed) poisons that object only.
    const std::string bad = damage("aut-num:    AS64501", "aut-nvm:    AS64501");
    std::istringstream strict_in(bad);
    EXPECT_THROW(data::parse_rpsl(strict_in), std::runtime_error);
    util::IngestStats stats;
    std::istringstream in(bad);
    const auto got = data::parse_rpsl(in, util::ErrorPolicy::kSkip, &stats);
    EXPECT_EQ(got.routes, clean.routes);
    EXPECT_TRUE(got.aut_nums.empty());
    EXPECT_EQ(stats.records_skipped, 1u);
  }
  {
    // A duplicated route: header flushes an origin-less fragment (one
    // skip) and the re-stated object still survives.
    const std::string bad =
        damage("route:      20.0.50.0/24\n",
               "route:      20.0.50.0/24\nroute:      20.0.50.0/24\n");
    util::IngestStats stats;
    std::istringstream in(bad);
    const auto got = data::parse_rpsl(in, util::ErrorPolicy::kSkip, &stats);
    EXPECT_EQ(got.routes, clean.routes);
    EXPECT_EQ(got.aut_nums, clean.aut_nums);
    EXPECT_EQ(stats.records_skipped, 1u);
  }
}

}  // namespace
}  // namespace spoofscope
