#include <gtest/gtest.h>

#include "analysis/addr_structure.hpp"
#include "analysis/attack_patterns.hpp"
#include "analysis/business.hpp"
#include "analysis/member_stats.hpp"
#include "analysis/portmix.hpp"
#include "analysis/spoofer_crosscheck.hpp"
#include "analysis/table1.hpp"
#include "analysis/traffic_char.hpp"
#include "analysis/venn.hpp"
#include "net/protocols.hpp"

namespace spoofscope::analysis {
namespace {

using net::Ipv4Addr;

/// Builds a label directly (class in the low space slot).
Label label_of(TrafficClass c) { return static_cast<Label>(c); }

net::FlowRecord flow(Ipv4Addr src, Ipv4Addr dst, net::Asn member,
                     std::uint32_t pkts, std::uint64_t bytes,
                     net::Proto proto = net::Proto::kTcp,
                     std::uint16_t sport = 40000, std::uint16_t dport = 80,
                     std::uint32_t ts = 0) {
  net::FlowRecord f;
  f.src = src;
  f.dst = dst;
  f.member_in = member;
  f.packets = pkts;
  f.bytes = bytes;
  f.proto = proto;
  f.sport = sport;
  f.dport = dport;
  f.ts = ts;
  return f;
}

ixp::Ixp empty_ixp() {
  // Build an Ixp with no members via an empty selection: cheat by using a
  // 1-AS topology and asking for 0 members.
  topo::AsInfo a;
  a.asn = 1;
  a.org = 1;
  static const topo::Topology topo({a}, {});
  ixp::IxpParams p;
  p.member_count = 0;
  return ixp::Ixp::build(topo, p, 1);
}

TEST(MemberStats, AggregatesPerMemberAndClass) {
  std::vector<net::FlowRecord> flows{
      flow(Ipv4Addr(1), Ipv4Addr(2), 100, 10, 1000),
      flow(Ipv4Addr(3), Ipv4Addr(4), 100, 2, 100),
      flow(Ipv4Addr(5), Ipv4Addr(6), 200, 8, 800),
  };
  std::vector<Label> labels{label_of(TrafficClass::kValid),
                            label_of(TrafficClass::kBogon),
                            label_of(TrafficClass::kInvalid)};
  const auto ixp = empty_ixp();
  const auto counts = per_member_counts(flows, labels, 0, ixp);
  ASSERT_EQ(counts.size(), 2u);
  const auto& m100 = counts[0].member == 100 ? counts[0] : counts[1];
  EXPECT_DOUBLE_EQ(m100.total_packets(), 12.0);
  EXPECT_DOUBLE_EQ(m100.packet_share(TrafficClass::kBogon), 2.0 / 12.0);
  EXPECT_TRUE(m100.contributes(TrafficClass::kBogon));
  EXPECT_FALSE(m100.contributes(TrafficClass::kUnrouted));
}

TEST(MemberStats, CcdfIsMonotoneNonIncreasing) {
  std::vector<net::FlowRecord> flows;
  std::vector<Label> labels;
  for (int m = 0; m < 20; ++m) {
    flows.push_back(flow(Ipv4Addr(1), Ipv4Addr(2), 100 + m, 10, 100));
    labels.push_back(label_of(m % 3 == 0 ? TrafficClass::kBogon
                                         : TrafficClass::kValid));
  }
  const auto ixp = empty_ixp();
  const auto counts = per_member_counts(flows, labels, 0, ixp);
  const auto ccdf = class_share_ccdf(counts, TrafficClass::kBogon);
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LE(ccdf[i].y, ccdf[i - 1].y);
    EXPECT_GT(ccdf[i].x, ccdf[i - 1].x);
  }
}

TEST(Venn, RegionsSumToOne) {
  std::vector<MemberClassCounts> counts(4);
  counts[0].packets[static_cast<int>(TrafficClass::kValid)] = 10;  // clean
  counts[1].packets[static_cast<int>(TrafficClass::kBogon)] = 1;   // bogon only
  counts[2].packets[static_cast<int>(TrafficClass::kBogon)] = 1;   // all three
  counts[2].packets[static_cast<int>(TrafficClass::kUnrouted)] = 1;
  counts[2].packets[static_cast<int>(TrafficClass::kInvalid)] = 1;
  counts[3].packets[static_cast<int>(TrafficClass::kUnrouted)] = 1;  // U+I
  counts[3].packets[static_cast<int>(TrafficClass::kInvalid)] = 1;
  const auto v = venn_membership(counts);
  EXPECT_EQ(v.member_count, 4u);
  EXPECT_DOUBLE_EQ(v.clean + v.only_bogon + v.only_unrouted + v.only_invalid +
                       v.bogon_unrouted + v.bogon_invalid + v.unrouted_invalid +
                       v.all_three,
                   1.0);
  EXPECT_DOUBLE_EQ(v.clean, 0.25);
  EXPECT_DOUBLE_EQ(v.only_bogon, 0.25);
  EXPECT_DOUBLE_EQ(v.all_three, 0.25);
  EXPECT_DOUBLE_EQ(v.unrouted_invalid, 0.25);
  EXPECT_DOUBLE_EQ(v.unrouted_also_other, 1.0);
}

TEST(Venn, EmptyInput) {
  const auto v = venn_membership({});
  EXPECT_EQ(v.member_count, 0u);
  EXPECT_DOUBLE_EQ(v.clean, 0.0);
}

TEST(Business, ScatterAndSummary) {
  std::vector<MemberClassCounts> counts(2);
  counts[0].member = 1;
  counts[0].type = topo::BusinessType::kHosting;
  counts[0].packets[static_cast<int>(TrafficClass::kValid)] = 90;
  counts[0].packets[static_cast<int>(TrafficClass::kInvalid)] = 10;
  counts[1].member = 2;
  counts[1].type = topo::BusinessType::kContent;
  counts[1].packets[static_cast<int>(TrafficClass::kValid)] = 100;

  const auto points = business_scatter(counts);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].share_invalid, 0.1);
  EXPECT_DOUBLE_EQ(points[1].share_invalid, 0.0);

  const auto rows = business_summary(points);
  const auto& hosting = rows[static_cast<int>(topo::BusinessType::kHosting)];
  const auto& content = rows[static_cast<int>(topo::BusinessType::kContent)];
  EXPECT_EQ(hosting.members, 1u);
  EXPECT_DOUBLE_EQ(hosting.significant_invalid, 1.0);
  EXPECT_DOUBLE_EQ(content.significant_invalid, 0.0);
}

TEST(TrafficChar, PacketSizeCdfSeparatesClasses) {
  std::vector<net::FlowRecord> flows{
      flow(Ipv4Addr(1), Ipv4Addr(2), 100, 4, 4 * 1400),  // valid, big pkts
      flow(Ipv4Addr(3), Ipv4Addr(4), 100, 4, 4 * 45),    // bogon, small pkts
  };
  std::vector<Label> labels{label_of(TrafficClass::kValid),
                            label_of(TrafficClass::kBogon)};
  const auto cdfs = packet_size_cdfs(flows, labels, 0);
  const auto& valid = cdfs[static_cast<int>(TrafficClass::kValid)];
  const auto& bogon = cdfs[static_cast<int>(TrafficClass::kBogon)];
  ASSERT_FALSE(valid.empty());
  ASSERT_FALSE(bogon.empty());
  EXPECT_GT(valid.front().x, 1000.0);
  EXPECT_LT(bogon.front().x, 60.0);
}

TEST(TrafficChar, SmallPacketFraction) {
  std::vector<net::FlowRecord> flows{
      flow(Ipv4Addr(1), Ipv4Addr(2), 100, 8, 8 * 45),
      flow(Ipv4Addr(3), Ipv4Addr(4), 100, 2, 2 * 1000),
  };
  std::vector<Label> labels{label_of(TrafficClass::kUnrouted),
                            label_of(TrafficClass::kUnrouted)};
  EXPECT_DOUBLE_EQ(
      small_packet_fraction(flows, labels, 0, TrafficClass::kUnrouted), 0.8);
}

TEST(TrafficChar, TimeSeriesBinning) {
  std::vector<net::FlowRecord> flows{
      flow(Ipv4Addr(1), Ipv4Addr(2), 1, 5, 100, net::Proto::kTcp, 1, 2, 0),
      flow(Ipv4Addr(1), Ipv4Addr(2), 1, 3, 100, net::Proto::kTcp, 1, 2, 3599),
      flow(Ipv4Addr(1), Ipv4Addr(2), 1, 7, 100, net::Proto::kTcp, 1, 2, 3600),
  };
  std::vector<Label> labels(3, label_of(TrafficClass::kValid));
  const auto ts = class_time_series(flows, labels, 0, 7200, 3600);
  const auto& s = ts.series[static_cast<int>(TrafficClass::kValid)];
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 8.0);
  EXPECT_DOUBLE_EQ(s[1], 7.0);
}

TEST(TrafficChar, BurstinessOrdering) {
  const std::vector<double> steady{10, 11, 10, 9, 10, 11};
  const std::vector<double> bursty{0, 0, 100, 0, 0, 2};
  EXPECT_LT(burstiness(steady), burstiness(bursty));
}

TEST(PortMix, FractionsPerClassAndDirection) {
  std::vector<net::FlowRecord> flows{
      flow(Ipv4Addr(1), Ipv4Addr(2), 1, 10, 100, net::Proto::kTcp, 50000, 80),
      flow(Ipv4Addr(1), Ipv4Addr(2), 1, 10, 100, net::Proto::kTcp, 443, 51000),
      flow(Ipv4Addr(1), Ipv4Addr(2), 1, 10, 100, net::Proto::kUdp, 50000, 123),
      flow(Ipv4Addr(1), Ipv4Addr(2), 1, 10, 100, net::Proto::kIcmp, 0, 0),
  };
  std::vector<Label> labels(4, label_of(TrafficClass::kInvalid));
  const auto mix = port_mix(flows, labels, 0);
  EXPECT_DOUBLE_EQ(mix.fraction_of(TrafficClass::kInvalid, Transport::kTcp,
                                   Direction::kDst, 80),
                   0.5);
  EXPECT_DOUBLE_EQ(mix.fraction_of(TrafficClass::kInvalid, Transport::kTcp,
                                   Direction::kSrc, 443),
                   0.5);
  EXPECT_DOUBLE_EQ(mix.fraction_of(TrafficClass::kInvalid, Transport::kUdp,
                                   Direction::kDst, 123),
                   1.0);
  // ICMP flows are outside Fig 9 and must not appear anywhere.
  EXPECT_DOUBLE_EQ(mix.fraction_of(TrafficClass::kInvalid, Transport::kTcp,
                                   Direction::kDst, 0),
                   0.5);  // the 443-src flow's DST port is untracked
}

TEST(AddrStructure, BinsBySlash8) {
  std::vector<net::FlowRecord> flows{
      flow(Ipv4Addr::from_octets(10, 1, 1, 1), Ipv4Addr::from_octets(80, 0, 0, 1),
           1, 5, 100),
      flow(Ipv4Addr::from_octets(10, 9, 9, 9), Ipv4Addr::from_octets(80, 1, 1, 1),
           1, 3, 100),
      flow(Ipv4Addr::from_octets(192, 168, 0, 1),
           Ipv4Addr::from_octets(81, 0, 0, 1), 1, 2, 100),
  };
  std::vector<Label> labels(3, label_of(TrafficClass::kBogon));
  const auto a = address_structure(flows, labels, 0);
  EXPECT_DOUBLE_EQ(a.src[static_cast<int>(TrafficClass::kBogon)][10], 8.0);
  EXPECT_DOUBLE_EQ(a.src[static_cast<int>(TrafficClass::kBogon)][192], 2.0);
  EXPECT_DOUBLE_EQ(a.dst[static_cast<int>(TrafficClass::kBogon)][80], 8.0);
  EXPECT_DOUBLE_EQ(a.src_fraction(TrafficClass::kBogon, 10), 0.8);
}

TEST(AddrStructure, ConcentrationExtremes) {
  AddressStructure a{};
  // Uniform: equal mass in all 256 bins.
  for (int i = 0; i < 256; ++i) a.src[0][i] = 1.0;
  EXPECT_NEAR(a.src_concentration(TrafficClass::kBogon), 1.0 / 256, 1e-9);
  // Single bin: concentration 1.
  AddressStructure b{};
  b.src[0][42] = 99.0;
  EXPECT_DOUBLE_EQ(b.src_concentration(TrafficClass::kBogon), 1.0);
}

TEST(AttackPatterns, SrcRatioSeparatesRandomFromSelective) {
  std::vector<net::FlowRecord> flows;
  std::vector<Label> labels;
  // Random spoofing victim: 100 packets, 100 distinct sources.
  for (int i = 0; i < 100; ++i) {
    flows.push_back(flow(Ipv4Addr(1000 + i), Ipv4Addr(1), 1, 1, 40));
    labels.push_back(label_of(TrafficClass::kUnrouted));
  }
  // Amplification victim: 100 packets from one source.
  for (int i = 0; i < 100; ++i) {
    flows.push_back(flow(Ipv4Addr(7), Ipv4Addr(2), 1, 1, 40));
    labels.push_back(label_of(TrafficClass::kInvalid));
  }
  const auto hist = src_per_dst_ratio(flows, labels, 0, 50, 10);
  EXPECT_EQ(hist.destinations[static_cast<int>(TrafficClass::kUnrouted)], 1u);
  EXPECT_EQ(hist.destinations[static_cast<int>(TrafficClass::kInvalid)], 1u);
  // Random spoofing lands in the rightmost bin, selective in the leftmost.
  EXPECT_DOUBLE_EQ(
      hist.fractions[static_cast<int>(TrafficClass::kUnrouted)].back(), 1.0);
  EXPECT_DOUBLE_EQ(
      hist.fractions[static_cast<int>(TrafficClass::kInvalid)].front(), 1.0);
}

TEST(AttackPatterns, SrcRatioIgnoresSmallDestinations) {
  std::vector<net::FlowRecord> flows{flow(Ipv4Addr(5), Ipv4Addr(6), 1, 3, 40)};
  std::vector<Label> labels{label_of(TrafficClass::kUnrouted)};
  const auto hist = src_per_dst_ratio(flows, labels, 0, 50, 10);
  EXPECT_EQ(hist.destinations[static_cast<int>(TrafficClass::kUnrouted)], 0u);
}

TEST(AttackPatterns, NtpAnalysisBasics) {
  std::vector<net::FlowRecord> flows;
  std::vector<Label> labels;
  // Victim A: selective spoofing towards 3 amplifiers via member 100.
  for (int amp = 0; amp < 3; ++amp) {
    for (int i = 0; i < 10; ++i) {
      flows.push_back(flow(Ipv4Addr(1), Ipv4Addr(500 + amp), 100, 1, 40,
                           net::Proto::kUdp, 55555, 123));
      labels.push_back(label_of(TrafficClass::kInvalid));
    }
  }
  // Some invalid UDP noise on other ports via member 200.
  flows.push_back(flow(Ipv4Addr(2), Ipv4Addr(9), 200, 3, 40, net::Proto::kUdp,
                       55555, 9999));
  labels.push_back(label_of(TrafficClass::kInvalid));

  const auto ntp = analyze_ntp(flows, labels, 0, 5);
  EXPECT_EQ(ntp.trigger_packets, 30u);
  EXPECT_EQ(ntp.distinct_victims, 1u);
  EXPECT_EQ(ntp.amplifiers_contacted, 3u);
  EXPECT_EQ(ntp.contributing_members, 1u);
  EXPECT_DOUBLE_EQ(ntp.top_member_share, 1.0);
  EXPECT_NEAR(ntp.invalid_udp_ntp_share, 30.0 / 33.0, 1e-9);
  ASSERT_EQ(ntp.top_victims.size(), 1u);
  EXPECT_EQ(ntp.top_victims[0].amplifiers, 3u);
  EXPECT_NEAR(ntp.top_victims[0].concentration, 0.0, 1e-9);  // uniform
}

TEST(AttackPatterns, AmplificationEffectPairsBothDirections) {
  std::vector<net::FlowRecord> flows;
  std::vector<Label> labels;
  // Trigger: victim 1 -> amplifier 2 (Invalid), 10 pkts, 400 bytes.
  flows.push_back(flow(Ipv4Addr(1), Ipv4Addr(2), 100, 10, 400,
                       net::Proto::kUdp, 50000, 123, 100));
  labels.push_back(label_of(TrafficClass::kInvalid));
  // Response: amplifier 2 -> victim 1, 10 pkts, 4000 bytes.
  flows.push_back(flow(Ipv4Addr(2), Ipv4Addr(1), 300, 10, 4000,
                       net::Proto::kUdp, 123, 50000, 101));
  labels.push_back(label_of(TrafficClass::kValid));
  // A trigger without any response: pair must be excluded.
  flows.push_back(flow(Ipv4Addr(5), Ipv4Addr(6), 100, 99, 9900,
                       net::Proto::kUdp, 50000, 123, 100));
  labels.push_back(label_of(TrafficClass::kInvalid));

  const auto ts = amplification_effect(flows, labels, 0, 7200, 3600);
  EXPECT_DOUBLE_EQ(ts.packets_to_amplifier[0], 10.0);
  EXPECT_DOUBLE_EQ(ts.packets_from_amplifier[0], 10.0);
  EXPECT_DOUBLE_EQ(ts.amplification_factor(), 10.0);
  EXPECT_DOUBLE_EQ(ts.packet_ratio(), 1.0);
}

TEST(AttackPatterns, ScanOverlap) {
  const std::vector<Ipv4Addr> contacted{Ipv4Addr(1), Ipv4Addr(2), Ipv4Addr(3)};
  const std::vector<Ipv4Addr> scan{Ipv4Addr(2), Ipv4Addr(3), Ipv4Addr(4)};
  EXPECT_EQ(amplifier_scan_overlap(contacted, scan), 2u);
  EXPECT_EQ(amplifier_scan_overlap(contacted, {}), 0u);
}

TEST(SpooferCrossCheck, ContingencyNumbers) {
  std::vector<MemberClassCounts> counts(3);
  counts[0].member = 1;  // we detect (invalid)
  counts[0].packets[static_cast<int>(TrafficClass::kInvalid)] = 5;
  counts[1].member = 2;  // we detect (unrouted)
  counts[1].packets[static_cast<int>(TrafficClass::kUnrouted)] = 5;
  counts[2].member = 3;  // clean
  counts[2].packets[static_cast<int>(TrafficClass::kValid)] = 5;

  std::vector<data::SpooferRecord> recs{
      {1, true}, {2, false}, {3, false}, {99, true} /* not a member */};
  const auto c = cross_check_spoofer(counts, recs);
  EXPECT_EQ(c.overlapping_ases, 3u);
  EXPECT_NEAR(c.passive_detection_rate, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(c.spoofer_positive_rate, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(c.spoofer_agrees_with_passive, 0.5, 1e-9);
  EXPECT_NEAR(c.passive_detects_spoofer_positives, 1.0, 1e-9);
}

TEST(Table1, ColumnsAndFormatting) {
  classify::Aggregate agg;
  agg.totals.resize(inference::kNumMethods);
  agg.total_packets = 1000;
  agg.total_bytes = 1e6;
  auto& bogon = agg.totals[static_cast<int>(inference::Method::kFullConeOrg)]
                          [static_cast<int>(TrafficClass::kBogon)];
  bogon.members = 5;
  bogon.packets = 10;
  bogon.bytes = 400;
  const auto cols = table1_columns(agg, 10000.0, 50);
  ASSERT_EQ(cols.size(), 5u);
  EXPECT_EQ(cols[0].name, "Bogon");
  EXPECT_EQ(cols[0].members, 5u);
  EXPECT_DOUBLE_EQ(cols[0].member_fraction, 0.1);
  EXPECT_DOUBLE_EQ(cols[0].packets, 100000.0);
  EXPECT_DOUBLE_EQ(cols[0].packets_fraction, 0.01);

  const auto text = format_table1(cols);
  EXPECT_NE(text.find("Bogon"), std::string::npos);
  EXPECT_NE(text.find("Invalid NAIVE"), std::string::npos);
  EXPECT_NE(text.find("members"), std::string::npos);
}

}  // namespace
}  // namespace spoofscope::analysis
