// Differential harness for the batched classification plane: for the
// differential seeds, the SoA batch kernels must reproduce the
// per-record path bit-identically — labels on both engines across
// thread counts, aggregates built lane-wise, streaming alerts through
// ingest_batch, and the whole file-to-aggregate pipeline through
// MappedTrace (clean and corrupted). Also pins the striped parallel
// flat-plane compile to the sequential compile via plane_digest().
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "classify/flat_classifier.hpp"
#include "classify/pipeline.hpp"
#include "classify/streaming.hpp"
#include "corruption.hpp"
#include "net/flow_batch.hpp"
#include "net/mapped_trace.hpp"
#include "net/trace.hpp"
#include "net/trace_format.hpp"
#include "scenario/scenario.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::classify {
namespace {

/// Thread counts under test; 0 resolves to the hardware concurrency.
constexpr std::size_t kThreadCounts[] = {1, 2, 0};

net::FlowBatch to_batch(std::span<const net::FlowRecord> flows) {
  net::FlowBatch batch;
  batch.reserve(flows.size());
  for (const auto& f : flows) batch.push_back(f);
  return batch;
}

void expect_same_aggregate(const Aggregate& a, const Aggregate& b,
                           const char* what) {
  EXPECT_EQ(a.total_flows, b.total_flows) << what;
  EXPECT_EQ(a.total_packets, b.total_packets) << what;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << what;
  ASSERT_EQ(a.totals.size(), b.totals.size()) << what;
  for (std::size_t s = 0; s < a.totals.size(); ++s) {
    for (int c = 0; c < kNumClasses; ++c) {
      EXPECT_EQ(a.totals[s][c].flows, b.totals[s][c].flows)
          << what << " space=" << s << " class=" << c;
      EXPECT_EQ(a.totals[s][c].packets, b.totals[s][c].packets)
          << what << " space=" << s << " class=" << c;
      EXPECT_EQ(a.totals[s][c].bytes, b.totals[s][c].bytes)
          << what << " space=" << s << " class=" << c;
      EXPECT_EQ(a.totals[s][c].members, b.totals[s][c].members)
          << what << " space=" << s << " class=" << c;
    }
  }
}

class BatchOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchOracleTest, BatchLabelsIdenticalToPerRecordOnBothEngines) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;
  const auto batch = to_batch(flows);

  const auto oracle = classify_trace(w->classifier(), flows);
  const auto flat = FlatClassifier::compile(w->classifier());

  EXPECT_EQ(w->classifier().classify_batch(batch), oracle);
  EXPECT_EQ(flat.classify_batch(batch), oracle);

  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    std::vector<Label> out(batch.size());
    w->classifier().classify_batch(batch, out, pool);
    ASSERT_EQ(out, oracle) << "trie threads=" << threads;
    std::fill(out.begin(), out.end(), Label{0});
    flat.classify_batch(batch, out, pool);
    ASSERT_EQ(out, oracle) << "flat threads=" << threads;
  }
}

TEST_P(BatchOracleTest, EveryUsableKernelMatchesForcedScalarOracle) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;
  const auto full = to_batch(flows);
  const auto flat = FlatClassifier::compile(w->classifier());

  // The oracle: the portable scalar kernel, forced explicitly (so this
  // stays a kernel-vs-kernel differential even when SPOOFSCOPE_SIMD pins
  // what kAuto resolves to). It must itself equal the trie engine.
  std::vector<Label> oracle(full.size());
  flat.classify_batch(full, oracle, SimdKernel::kScalar);
  ASSERT_EQ(oracle, w->classifier().classify_batch(full));

  // Batch sizes below/at/above the vector widths: ragged tails (1, 7,
  // 31), a mid-size chunk (4095) and the whole trace in one batch.
  const std::size_t sizes[] = {1, 7, 31, 4095, flows.size()};
  for (const SimdKernel kernel : usable_simd_kernels()) {
    for (const std::size_t chunk : sizes) {
      std::vector<Label> got;
      got.reserve(flows.size());
      net::FlowBatch batch;
      std::vector<Label> out;
      for (std::size_t i = 0; i < flows.size(); i += chunk) {
        const std::size_t n = std::min(chunk, flows.size() - i);
        batch.clear();
        for (std::size_t k = 0; k < n; ++k) batch.push_back(flows[i + k]);
        out.resize(n);
        flat.classify_batch(batch, out, kernel);
        got.insert(got.end(), out.begin(), out.end());
      }
      ASSERT_EQ(got, oracle)
          << simd_kernel_name(kernel) << " chunk=" << chunk;
    }
    for (const std::size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      std::vector<Label> out(full.size());
      flat.classify_batch(full, out, pool, kernel);
      ASSERT_EQ(out, oracle)
          << simd_kernel_name(kernel) << " threads=" << threads;
    }
  }
}

TEST_P(BatchOracleTest, StreamingAlertsAndHealthIdenticalAcrossKernels) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;
  const auto flat = FlatClassifier::compile(w->classifier());

  StreamingParams sp;
  sp.window_seconds = 1800;
  sp.min_spoofed_packets = 20;
  sp.min_share = 0.01;
  sp.reorder_skew_seconds = 60;  // skew > 0: pending heap carries classes

  const auto run_with = [&](SimdKernel kernel) {
    StreamingParams p = sp;
    p.simd = kernel;
    StreamingDetector det(flat, 0, p);
    std::vector<SpoofingAlert> alerts;
    const auto sink = [&alerts](const SpoofingAlert& a) {
      alerts.push_back(a);
    };
    // Uneven batch sizes so alert boundaries land mid-batch.
    net::FlowBatch batch;
    std::size_t i = 0;
    util::Rng rng(GetParam() ^ 0x513d);
    while (i < flows.size()) {
      const std::size_t n =
          std::min(flows.size() - i, std::size_t{1} + rng.index(997));
      batch.clear();
      for (std::size_t k = 0; k < n; ++k) batch.push_back(flows[i + k]);
      det.ingest_batch(batch, sink);
      i += n;
    }
    det.flush(sink);
    return std::tuple(std::move(alerts), det.processed(), det.health());
  };

  const auto expected = run_with(SimdKernel::kScalar);
  EXPECT_FALSE(std::get<0>(expected).empty());  // thresholds actually fire
  for (const SimdKernel kernel : usable_simd_kernels()) {
    EXPECT_EQ(run_with(kernel), expected) << simd_kernel_name(kernel);
  }
}

TEST_P(BatchOracleTest, MemberMemoizationHandlesUnknownAndRepeatedAsns) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam() ^ 0xba7c4u;
  const auto w = scenario::build_scenario(params);
  const auto flat = FlatClassifier::compile(w->classifier());
  const auto members = w->ixp().member_asns();

  // Synthetic batch with adversarial member patterns: long runs of one
  // ASN (exercises the last-member fast path), interleavings, and
  // non-member ASNs (null member view).
  util::Rng rng(GetParam());
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 5000; ++i) {
    net::FlowRecord f;
    f.src = net::Ipv4Addr(rng.next_u32());
    f.member_in = (i % 11 == 0) ? net::Asn{0xdeadbeef}
                  : (i % 3 == 0) ? members[0]
                                 : members[rng.index(members.size())];
    f.packets = 1;
    f.bytes = 40;
    flows.push_back(f);
  }
  const auto batch = to_batch(flows);

  std::vector<Label> expected;
  expected.reserve(flows.size());
  for (const auto& f : flows) {
    expected.push_back(w->classifier().classify_all(f.src, f.member_in));
  }
  EXPECT_EQ(w->classifier().classify_batch(batch), expected);
  EXPECT_EQ(flat.classify_batch(batch), expected);
}

TEST_P(BatchOracleTest, AggregateFromBatchIdenticalToAoS) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;
  const auto batch = to_batch(flows);
  const auto labels = classify_trace(w->classifier(), flows);

  {
    AggregateBuilder aos(w->classifier().space_count());
    AggregateBuilder soa(w->classifier().space_count());
    aos.add(flows, labels);
    soa.add(batch, labels);
    expect_same_aggregate(soa.build(), aos.build(), "no exclusions");
  }
  {
    // Exclusions must drop the same flows from both layouts.
    const std::unordered_set<Asn> exclude = {flows[0].member_in,
                                             flows[flows.size() / 2].member_in};
    AggregateBuilder aos(w->classifier().space_count());
    AggregateBuilder soa(w->classifier().space_count());
    aos.add(flows, labels, exclude);
    soa.add(batch, labels, exclude);
    expect_same_aggregate(soa.build(), aos.build(), "with exclusions");
  }
}

TEST_P(BatchOracleTest, IngestBatchAlertsAndHealthIdenticalToRun) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;
  const auto flat = FlatClassifier::compile(w->classifier());

  StreamingParams sp;
  sp.window_seconds = 1800;
  sp.min_spoofed_packets = 20;
  sp.min_share = 0.01;
  sp.reorder_skew_seconds = 60;

  struct Engine {
    const char* name;
    StreamingDetector per_record;
    StreamingDetector batched;
  };
  Engine engines[] = {
      {"trie", StreamingDetector(w->classifier(), 0, sp),
       StreamingDetector(w->classifier(), 0, sp)},
      {"flat", StreamingDetector(flat, 0, sp), StreamingDetector(flat, 0, sp)},
  };
  for (auto& e : engines) {
    const auto expected = e.per_record.run(flows);
    EXPECT_FALSE(expected.empty()) << e.name;  // thresholds actually fire

    std::vector<SpoofingAlert> got;
    const auto sink = [&got](const SpoofingAlert& a) { got.push_back(a); };
    // Uneven batch sizes so alert boundaries land mid-batch.
    net::FlowBatch batch;
    std::size_t i = 0;
    util::Rng rng(GetParam() ^ 0xa1e7);
    while (i < flows.size()) {
      const std::size_t n =
          std::min(flows.size() - i, std::size_t{1} + rng.index(997));
      batch.clear();
      for (std::size_t k = 0; k < n; ++k) batch.push_back(flows[i + k]);
      e.batched.ingest_batch(batch, sink);
      i += n;
    }
    e.batched.flush(sink);

    EXPECT_EQ(got, expected) << e.name;
    EXPECT_EQ(e.batched.processed(), e.per_record.processed()) << e.name;
    EXPECT_EQ(e.batched.health(), e.per_record.health()) << e.name;
  }
}

TEST_P(BatchOracleTest, FileToAggregatePipelineMatchesPerRecordPath) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);
  const auto flat = FlatClassifier::compile(w->classifier());

  std::stringstream ss;
  net::write_trace(ss, w->trace());
  std::string clean = ss.str();
  util::Rng rng(GetParam() ^ 0xc0ff);
  const std::string corrupted =
      testing::flip_bits(clean, rng, 3, net::format::kHeaderSizeV2);

  struct Case {
    const char* name;
    const std::string* bytes;
    util::ErrorPolicy policy;
  };
  const Case cases[] = {
      {"clean/strict", &clean, util::ErrorPolicy::kStrict},
      {"clean/skip", &clean, util::ErrorPolicy::kSkip},
      {"corrupted/skip", &corrupted, util::ErrorPolicy::kSkip},
  };
  for (const auto& c : cases) {
    // Reference: per-record istream decode, per-record classify, AoS add.
    std::istringstream in(*c.bytes, std::ios::binary);
    util::IngestStats ref_stats;
    net::TraceReader reader(in, c.policy, &ref_stats);
    std::vector<net::FlowRecord> ref_flows;
    while (const auto f = reader.next()) ref_flows.push_back(*f);
    const auto ref_labels = classify_trace(flat, ref_flows);
    AggregateBuilder ref_builder(w->classifier().space_count());
    ref_builder.add(ref_flows, ref_labels);

    // Batch path: mmap-style source, batched decode, batched classify on
    // a pool, lane-wise aggregation.
    const net::MappedTrace trace = net::MappedTrace::from_buffer(
        std::vector<std::uint8_t>(c.bytes->begin(), c.bytes->end()));
    util::IngestStats batch_stats;
    net::MappedTraceReader mapped(trace, c.policy, &batch_stats);
    util::ThreadPool pool(2);
    AggregateBuilder builder(w->classifier().space_count());
    net::FlowBatch batch;
    std::vector<Label> labels;
    std::size_t total = 0;
    while (mapped.next_batch(batch, 4096) > 0) {
      labels.resize(batch.size());
      flat.classify_batch(batch, labels, pool);
      builder.add(batch, labels);
      total += batch.size();
    }

    EXPECT_EQ(total, ref_flows.size()) << c.name;
    EXPECT_EQ(batch_stats, ref_stats) << c.name;
    expect_same_aggregate(builder.build(), ref_builder.build(), c.name);
  }
}

TEST_P(BatchOracleTest, StripedParallelCompileIsBitIdenticalToSequential) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);

  const auto sequential = FlatClassifier::compile(w->classifier());
  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    const auto parallel = FlatClassifier::compile(w->classifier(), pool);
    EXPECT_EQ(parallel.plane_digest(), sequential.plane_digest())
        << "threads=" << threads;
    EXPECT_EQ(parallel.stats().overflow_slots, sequential.stats().overflow_slots)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchOracleTest,
                         ::testing::Values(1, 7, 20170205));

}  // namespace
}  // namespace spoofscope::classify
