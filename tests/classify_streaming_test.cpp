#include "classify/streaming.hpp"

#include <gtest/gtest.h>

#include "net/prefix.hpp"
#include "scenario/scenario.hpp"

namespace spoofscope::classify {
namespace {

using net::Ipv4Addr;
using net::pfx;

/// Routing view with 50.0/16 valid for member 1.
struct Fixture {
  Fixture() {
    bgp::RoutingTableBuilder b;
    b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
    b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{2});
    table = b.build();
    trie::IntervalSet s;
    s.add(pfx("50.0.0.0/16"));
    std::unordered_map<Asn, trie::IntervalSet> spaces;
    spaces.emplace(1, std::move(s));
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }
  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

net::FlowRecord flow(Ipv4Addr src, std::uint32_t ts, std::uint32_t pkts = 1) {
  net::FlowRecord f;
  f.src = src;
  f.dst = Ipv4Addr::from_octets(60, 0, 0, 1);
  f.ts = ts;
  f.packets = pkts;
  f.bytes = 40ull * pkts;
  f.member_in = 1;
  return f;
}

TEST(Streaming, NoAlertOnCleanTraffic) {
  Fixture fx;
  StreamingDetector detector(*fx.classifier, 0);
  std::vector<SpoofingAlert> alerts;
  for (int i = 0; i < 1000; ++i) {
    detector.ingest(flow(Ipv4Addr::from_octets(50, 0, 1, 1), i * 10, 10),
                    [&](const SpoofingAlert& a) { alerts.push_back(a); });
  }
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(detector.processed(), 1000u);
}

TEST(Streaming, AlertsOnSpoofedBurst) {
  Fixture fx;
  StreamingParams params;
  params.min_spoofed_packets = 20;
  params.min_share = 0.1;
  StreamingDetector detector(*fx.classifier, 0, params);

  std::vector<net::FlowRecord> flows;
  // Background valid traffic...
  for (int i = 0; i < 100; ++i) {
    flows.push_back(flow(Ipv4Addr::from_octets(50, 0, 1, 1), i * 30, 1));
  }
  // ...then an unrouted-source burst within one hour.
  for (int i = 0; i < 50; ++i) {
    flows.push_back(flow(Ipv4Addr::from_octets(99, 0, 0, 1), 3000 + i, 1));
  }
  std::sort(flows.begin(), flows.end(),
            [](const auto& a, const auto& b) { return a.ts < b.ts; });
  const auto alerts = detector.run(flows);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].member, 1u);
  EXPECT_EQ(alerts[0].dominant_class, TrafficClass::kUnrouted);
  EXPECT_GE(alerts[0].spoofed_packets_in_window, 20.0);
  EXPECT_GE(alerts[0].window_share, 0.1);
}

TEST(Streaming, CooldownSuppressesRepeatAlerts) {
  Fixture fx;
  StreamingParams params;
  params.min_spoofed_packets = 5;
  params.min_share = 0.01;
  params.cooldown_seconds = 100000;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 500; ++i) {
    flows.push_back(flow(Ipv4Addr::from_octets(99, 0, 0, 1), i * 10, 1));
  }
  const auto alerts = detector.run(flows);
  EXPECT_EQ(alerts.size(), 1u);
}

TEST(Streaming, WindowEvictionForgetsOldSpoofing) {
  Fixture fx;
  StreamingParams params;
  params.window_seconds = 100;
  params.min_spoofed_packets = 30;
  params.min_share = 0.5;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<net::FlowRecord> flows;
  // 20 spoofed packets early, 20 late — never 30 within one window.
  for (int i = 0; i < 20; ++i) {
    flows.push_back(flow(Ipv4Addr::from_octets(99, 0, 0, 1), i, 1));
  }
  for (int i = 0; i < 20; ++i) {
    flows.push_back(flow(Ipv4Addr::from_octets(99, 0, 0, 1), 10000 + i, 1));
  }
  EXPECT_TRUE(detector.run(flows).empty());
}

TEST(Streaming, SampleExactlyAtWindowBoundaryStillCounts) {
  // Eviction drops samples with ts < (now - window): a sample exactly
  // window seconds old is still inside the (inclusive) window.
  Fixture fx;
  StreamingParams params;
  params.window_seconds = 100;
  params.min_spoofed_packets = 30;
  params.min_share = 0.01;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<SpoofingAlert> alerts;
  const auto sink = [&](const SpoofingAlert& a) { alerts.push_back(a); };
  // 20 spoofed packets at ts=0: below threshold on their own.
  detector.ingest(flow(Ipv4Addr::from_octets(99, 0, 0, 1), 0, 20), sink);
  EXPECT_TRUE(alerts.empty());
  // 10 more exactly at the window boundary: the ts=0 sample has not been
  // evicted, 30 packets are in the window -> alert.
  detector.ingest(flow(Ipv4Addr::from_octets(99, 0, 0, 1), 100, 10), sink);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].ts, 100u);
  EXPECT_EQ(alerts[0].spoofed_packets_in_window, 30.0);
}

TEST(Streaming, SampleOneSecondPastWindowIsEvicted) {
  // Same traffic shifted by one second: the early burst falls out.
  Fixture fx;
  StreamingParams params;
  params.window_seconds = 100;
  params.min_spoofed_packets = 30;
  params.min_share = 0.01;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<SpoofingAlert> alerts;
  const auto sink = [&](const SpoofingAlert& a) { alerts.push_back(a); };
  detector.ingest(flow(Ipv4Addr::from_octets(99, 0, 0, 1), 0, 20), sink);
  detector.ingest(flow(Ipv4Addr::from_octets(99, 0, 0, 1), 101, 10), sink);
  EXPECT_TRUE(alerts.empty());
}

TEST(Streaming, ReAlertsAfterCooldownExpires) {
  Fixture fx;
  StreamingParams params;
  params.window_seconds = 3600;
  params.min_spoofed_packets = 5;
  params.min_share = 0.01;
  params.cooldown_seconds = 1000;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<net::FlowRecord> flows;
  for (std::uint32_t ts = 0; ts < 2100; ts += 10) {
    flows.push_back(flow(Ipv4Addr::from_octets(99, 0, 0, 1), ts, 1));
  }
  const auto alerts = detector.run(flows);
  // Threshold crossed at ts=40 (5th packet); the steady spoofed stream
  // re-alerts the moment each cooldown expires.
  ASSERT_EQ(alerts.size(), 3u);
  EXPECT_EQ(alerts[0].ts, 40u);
  EXPECT_EQ(alerts[1].ts, 1040u);
  EXPECT_EQ(alerts[2].ts, 2040u);
  for (std::size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_GE(alerts[i].ts - alerts[i - 1].ts, params.cooldown_seconds);
  }
}

TEST(Streaming, FullySpoofedMemberAlertsAtThreshold) {
  // A member whose traffic is 100% spoofed from its very first flow:
  // the alert fires as soon as the packet threshold is met, at share 1.
  Fixture fx;
  StreamingParams params;
  params.min_spoofed_packets = 5;
  params.min_share = 0.05;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<net::FlowRecord> flows;
  for (std::uint32_t ts = 0; ts < 10; ++ts) {
    flows.push_back(flow(Ipv4Addr::from_octets(99, 0, 0, 1), ts, 1));
  }
  const auto alerts = detector.run(flows);
  ASSERT_EQ(alerts.size(), 1u);  // default cooldown suppresses repeats
  EXPECT_EQ(alerts[0].ts, 4u);
  EXPECT_EQ(alerts[0].spoofed_packets_in_window, 5.0);
  EXPECT_EQ(alerts[0].window_share, 1.0);
  EXPECT_EQ(alerts[0].dominant_class, TrafficClass::kUnrouted);
}

TEST(Streaming, DetectsAttacksInScenario) {
  auto params = scenario::ScenarioParams::small();
  params.seed = 4711;
  const auto world = scenario::build_scenario(params);
  StreamingParams sp;
  sp.min_spoofed_packets = 30;
  sp.min_share = 0.02;
  StreamingDetector detector(
      world->classifier(),
      scenario::Scenario::space_index(inference::Method::kFullConeOrg), sp);
  const auto alerts = detector.run(world->trace().flows);
  // The workload contains flood/amplification bursts; some members must
  // trip the detector, but not the majority (it is not a false-alarm
  // machine).
  EXPECT_GT(alerts.size(), 0u);
  EXPECT_LT(alerts.size(), world->ixp().member_count());
  for (const auto& a : alerts) {
    EXPECT_TRUE(world->ixp().is_member(a.member));
    EXPECT_GE(a.window_share, sp.min_share);
  }
}

}  // namespace
}  // namespace spoofscope::classify
