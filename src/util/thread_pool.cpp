#include "util/thread_pool.hpp"

#include <exception>
#include <utility>

namespace spoofscope::util {

std::size_t ThreadPool::resolve(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<IndexRange> ThreadPool::partition(std::size_t begin,
                                              std::size_t end,
                                              std::size_t parts) {
  std::vector<IndexRange> ranges;
  if (begin >= end || parts == 0) return ranges;
  const std::size_t n = end - begin;
  const std::size_t chunks = parts < n ? parts : n;
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  ranges.reserve(chunks);
  std::size_t at = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    ranges.push_back({at, at + len});
    at += len;
  }
  return ranges;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve(threads);
  if (n <= 1) return;  // inline mode: no workers, no queue traffic
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain queued work even when stopping: destruction waits for
      // everything already enqueued.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (workers_.empty() || end - begin == 1) {
    body(begin, end);  // exceptions propagate directly
    return;
  }

  const auto ranges = partition(begin, end, thread_count());

  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
  } join;
  join.remaining = ranges.size();
  join.errors.resize(ranges.size());

  for (std::size_t c = 0; c < ranges.size(); ++c) {
    enqueue([&join, &body, r = ranges[c], c] {
      try {
        body(r.begin, r.end);
      } catch (...) {
        join.errors[c] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(join.mutex);
      if (--join.remaining == 0) join.done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(join.mutex);
  join.done.wait(lock, [&join] { return join.remaining == 0; });
  for (const auto& e : join.errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace spoofscope::util
