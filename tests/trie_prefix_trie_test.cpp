#include "trie/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/prefix.hpp"

namespace spoofscope::trie {
namespace {

using net::Ipv4Addr;
using net::pfx;

TEST(PrefixTrie, EmptyTrieMatchesNothing) {
  PrefixTrie<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.match_longest(Ipv4Addr::from_octets(1, 2, 3, 4)), nullptr);
  EXPECT_FALSE(t.covers(Ipv4Addr::from_octets(1, 2, 3, 4)));
}

TEST(PrefixTrie, InsertAndExactFind) {
  PrefixTrie<std::string> t;
  t.insert(pfx("10.0.0.0/8"), "ten");
  ASSERT_NE(t.find_exact(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*t.find_exact(pfx("10.0.0.0/8")), "ten");
  EXPECT_EQ(t.find_exact(pfx("10.0.0.0/9")), nullptr);
  EXPECT_EQ(t.find_exact(pfx("11.0.0.0/8")), nullptr);
}

TEST(PrefixTrie, InsertReplacesExisting) {
  PrefixTrie<int> t;
  t.insert(pfx("10.0.0.0/8"), 1);
  t.insert(pfx("10.0.0.0/8"), 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find_exact(pfx("10.0.0.0/8")), 2);
}

TEST(PrefixTrie, LongestPrefixMatchPicksMostSpecific) {
  PrefixTrie<int> t;
  t.insert(pfx("10.0.0.0/8"), 8);
  t.insert(pfx("10.1.0.0/16"), 16);
  t.insert(pfx("10.1.2.0/24"), 24);

  const auto* m = t.match_longest(Ipv4Addr::from_octets(10, 1, 2, 3));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->second, 24);

  const auto* m2 = t.match_longest(Ipv4Addr::from_octets(10, 1, 9, 9));
  ASSERT_NE(m2, nullptr);
  EXPECT_EQ(m2->second, 16);

  const auto* m3 = t.match_longest(Ipv4Addr::from_octets(10, 9, 9, 9));
  ASSERT_NE(m3, nullptr);
  EXPECT_EQ(m3->second, 8);

  EXPECT_EQ(t.match_longest(Ipv4Addr::from_octets(11, 0, 0, 1)), nullptr);
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> t;
  t.insert(pfx("0.0.0.0/0"), 0);
  const auto* m = t.match_longest(Ipv4Addr::from_octets(200, 1, 2, 3));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->first, pfx("0.0.0.0/0"));
}

TEST(PrefixTrie, HostRouteMatch) {
  PrefixTrie<int> t;
  t.insert(pfx("192.0.2.1/32"), 1);
  EXPECT_TRUE(t.covers(Ipv4Addr::from_octets(192, 0, 2, 1)));
  EXPECT_FALSE(t.covers(Ipv4Addr::from_octets(192, 0, 2, 2)));
}

TEST(PrefixTrie, SiblingPrefixesDontInterfere) {
  PrefixTrie<int> t;
  t.insert(pfx("10.0.0.0/9"), 0);
  t.insert(pfx("10.128.0.0/9"), 1);
  EXPECT_EQ(t.match_longest(Ipv4Addr::from_octets(10, 0, 0, 1))->second, 0);
  EXPECT_EQ(t.match_longest(Ipv4Addr::from_octets(10, 200, 0, 1))->second, 1);
}

TEST(PrefixTrie, VisitSeesAllEntries) {
  PrefixTrie<int> t;
  t.insert(pfx("10.0.0.0/8"), 1);
  t.insert(pfx("192.168.0.0/16"), 2);
  int sum = 0;
  std::size_t n = 0;
  t.visit([&](const net::Prefix&, int v) {
    sum += v;
    ++n;
  });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(sum, 3);
}

TEST(PrefixTrie, SizeTracksDistinctPrefixes) {
  PrefixTrie<int> t;
  t.insert(pfx("10.0.0.0/8"), 1);
  t.insert(pfx("10.0.0.0/16"), 2);
  t.insert(pfx("10.0.0.0/8"), 3);
  EXPECT_EQ(t.size(), 2u);
}

TEST(PrefixTrie, MatchAtBoundaries) {
  PrefixTrie<int> t;
  t.insert(pfx("128.0.0.0/1"), 1);
  EXPECT_TRUE(t.covers(Ipv4Addr(0x80000000u)));
  EXPECT_TRUE(t.covers(Ipv4Addr(~0u)));
  EXPECT_FALSE(t.covers(Ipv4Addr(0x7FFFFFFFu)));
}

TEST(PrefixTrie, NodeCountGrowsReasonably) {
  PrefixTrie<int> t;
  EXPECT_EQ(t.node_count(), 1u);  // root
  t.insert(pfx("10.0.0.0/8"), 1);
  EXPECT_EQ(t.node_count(), 9u);  // root + 8 levels
}

}  // namespace
}  // namespace spoofscope::trie
